//! Log-structured segment store over raw NAND, with garbage collection.
//!
//! Because NAND precludes in-place writes, everything the device persists
//! — hidden columns, Subtree Key Tables, climbing-index postings, sort
//! runs, temp spills — is written as an append-only **segment**: a
//! sequence of pages programmed exactly once.
//!
//! # Logical pages and migration
//!
//! Segments do not record physical page addresses. Every allocated page
//! gets a stable **logical page number** that the volume's translation
//! table maps to its current physical location; [`SegmentReader`],
//! [`Volume::read_at`], and everything built on them resolve through the
//! table on each page fault. That indirection is what lets the garbage
//! collector *move* pages under live segments: the executor's temp
//! spills, the hidden column store, and the indexes all keep working
//! while their pages migrate.
//!
//! # Garbage collection and wear
//!
//! Freeing a segment marks its pages dead. A block whose pages are all
//! dead is erased and recycled immediately, but a block mixing one
//! long-lived page with dead temp pages would otherwise be pinned
//! forever — the fragmentation that kills log-structured stores under
//! churn. The [`Volume::gc`] pass picks victims by **greedy
//! cost-benefit** (dead ratio weighted by wear headroom), migrates their
//! live pages to a separate cold-write frontier, and erases them. A
//! configurable free-block low-watermark
//! ([`FlashConfig::gc_low_watermark_blocks`]) triggers the same pass from
//! the allocator, so writers never see "volume full" while reclaimable
//! space exists. Free blocks are handed out least-worn-first (replacing
//! the seed's FIFO), keeping [`Nand::wear_spread`] bounded.
//!
//! Writers and readers buffer exactly **one flash page** in device RAM,
//! charged against the query's [`RamScope`]; the GC's copy buffer is
//! charged the same way — the tiny-RAM discipline applies even to
//! reclamation.
//!
//! # Page cache
//!
//! Page faults consult a shared, fixed-capacity **page-cache mirror**
//! of recently faulted NAND pages (clock/second-chance, keyed by
//! physical page, sized by
//! [`FlashConfig::page_cache_pages`](ghostdb_types::FlashConfig::page_cache_pages)).
//! A hit skips the NAND transfer, the ECC re-check, and their simulated
//! device time entirely. The mirror's bytes are charged to the device
//! [`RamBudget`] via [`Volume::configure_page_cache`], so the 64 KB
//! invariant binds; volumes start with the cache disabled until the
//! engine configures it. Entries are invalidated under the state lock
//! at the only two points where a physical page's bytes can change —
//! block erase and page program — and every mirror copy is re-checked
//! against the translation table exactly like a NAND transfer, so
//! snapshot readers sharing the mirror stay coherent across GC
//! migration, scrub rewrites, and bad-block evacuation.
//!
//! # Sealed images (durability)
//!
//! The durability layer (`ghostdb-persist`) periodically **seals** the
//! volume: it records the translation table ([`Volume::l2p_snapshot`])
//! and every live segment's LPN list in an on-flash image. Until the
//! next seal supersedes that image, the volume guarantees the recorded
//! mappings stay physically valid:
//!
//! * sealed pages are never **migrated** — blocks holding one are
//!   exempt from GC victim selection (the image stores *physical*
//!   addresses; moving a page would strand them);
//! * sealed pages are never **erased** — a [`Volume::free`] against one
//!   is deferred, and only [`Volume::commit_seal`] (called once the
//!   superseding image is durable) releases it.
//!
//! That pair of rules is what makes a power cut anywhere inside a delta
//! flush recoverable: the old image's pages are all still exactly where
//! it says they are.
//!
//! [`FlashConfig::gc_low_watermark_blocks`]: ghostdb_types::FlashConfig::gc_low_watermark_blocks

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ghostdb_obs::{Counter, Histogram, Registry, TIME_BUCKETS_NS};
use ghostdb_ram::{RamBudget, RamGuard, RamScope, ScopedGuard};
use ghostdb_types::{GhostError, Result, Wire};

use crate::ecc;
use crate::nand::{BlockId, Nand, PageAddr, PageState};

/// Stable logical page number; the translation table maps it to the
/// page's current physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lpn(u32);

/// Sentinel for "no mapping" in both directions of the translation table.
const UNMAPPED: u32 = u32::MAX;

/// An immutable sequence of bytes stored on flash.
///
/// Cloning is cheap (the page list is shared); segments are freed
/// explicitly through [`Volume::free`]. The page list holds *logical*
/// page numbers, so the bytes stay readable even after the garbage
/// collector migrates them to different physical blocks.
#[derive(Debug, Clone)]
pub struct Segment {
    pages: Arc<Vec<Lpn>>,
    len_bytes: u64,
}

impl Segment {
    /// The segment's durable description (LPN list + length), for the
    /// durability layer's metadata segments. LPNs stay valid across GC
    /// migrations (the translation table tracks the moves), which is
    /// exactly what makes them the right currency for a sealed on-flash
    /// image.
    pub fn manifest(&self) -> SegmentManifest {
        SegmentManifest {
            lpns: self.pages.iter().map(|l| l.0).collect(),
            len: self.len_bytes,
        }
    }

    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len_bytes
    }

    /// True if the segment holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    /// Number of flash pages backing the segment.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Durable description of one segment: its logical page numbers plus its
/// byte length. This is what the sealed device image stores per segment;
/// [`Volume::restore_manifest`] turns it back into a live [`Segment`]
/// against the mounted translation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentManifest {
    /// Logical page numbers, in segment order.
    pub lpns: Vec<u32>,
    /// Logical length in bytes.
    pub len: u64,
}

impl Wire for SegmentManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lpns.encode(out);
        self.len.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(SegmentManifest {
            lpns: Vec::<u32>::decode(buf)?,
            len: u64::decode(buf)?,
        })
    }
}

/// Cumulative garbage-collection counters (also the per-pass report of
/// [`Volume::gc`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// GC passes that found at least one victim.
    pub passes: u64,
    /// Victim blocks erased and returned to the free list.
    pub blocks_reclaimed: u64,
    /// Live pages copied out of victims.
    pub pages_migrated: u64,
    /// Dead pages recovered by erasing victims.
    pub pages_reclaimed: u64,
}

#[derive(Debug)]
struct AllocState {
    /// Unordered pool of erased blocks; allocation takes the least-worn.
    free_blocks: Vec<BlockId>,
    /// Block the user-write frontier is filling, and the next in-block
    /// page index.
    current: Option<(BlockId, usize)>,
    /// Separate frontier for GC-migrated (cold) pages, so long-lived data
    /// compacts together instead of re-mixing with hot temp writes.
    gc_current: Option<(BlockId, usize)>,
    /// Per-block count of live (allocated and not freed) pages.
    live: Vec<u32>,
    /// Per-block count of pages handed out since the last erase.
    allocated: Vec<u32>,
    /// Logical→physical page table (`UNMAPPED` = free slot).
    l2p: Vec<u32>,
    /// Recycled logical page numbers.
    free_lpns: Vec<u32>,
    /// Physical→logical reverse map (`UNMAPPED` = dead or unwritten).
    p2l: Vec<u32>,
    /// Cumulative GC counters.
    gc: GcStats,
    /// Per-LPN "referenced by the sealed on-flash image" flag (parallel
    /// to `l2p`, short tails read as unsealed). Sealed pages may be
    /// neither migrated (the image records their physical l2p mapping)
    /// nor freed (the image still reads them) until the next seal.
    sealed: Vec<bool>,
    /// Per-block count of sealed live pages — blocks holding any are
    /// exempt from GC victim selection.
    sealed_in_block: Vec<u32>,
    /// Sealed LPNs whose `free` was deferred; physically released (and
    /// their blocks made reclaimable) by [`Volume::commit_seal`] once
    /// the superseding image is durable.
    deferred_free: HashSet<u32>,
    /// Per-LPN snapshot pin counts: every open read snapshot pins the
    /// pages its base segments can read. A pinned page may still
    /// *migrate* (the translation table keeps snapshot reads valid) but
    /// is never physically released — a `free` against it parks in
    /// `pin_deferred` until the last pin drops. This is the same
    /// deferred-free discipline the sealed image uses, keyed by
    /// refcount instead of seal generation.
    pins: HashMap<u32, u32>,
    /// Snapshot-pinned LPNs whose `free` was deferred; physically
    /// released by [`Volume::unpin_pages`] when their pin count
    /// reaches zero.
    pin_deferred: HashSet<u32>,
    /// Per-block grown-bad retirement flags — the volume's bad-block
    /// table. Retired blocks are never allocated, never erased, never
    /// GC victims; their still-readable pages stay mapped until freed.
    bad: Vec<bool>,
    /// Per-physical-page count of corrected reads since the page was
    /// programmed — the scrub pass's trigger input.
    corrected_reads: Vec<u32>,
    /// Reads whose single-bit error the codeword repaired (cumulative).
    corrected_total: u64,
    /// Reads that failed past the correction budget (cumulative).
    uncorrectable_total: u64,
    /// Pages the scrub pass rewrote (cumulative).
    scrubbed_pages: u64,
}

impl AllocState {
    fn is_frontier(&self, block: BlockId, ppb: usize) -> bool {
        let pins =
            |slot: Option<(BlockId, usize)>| matches!(slot, Some((b, n)) if b == block && n < ppb);
        pins(self.current) || pins(self.gc_current)
    }

    fn is_sealed(&self, lpn: u32) -> bool {
        self.sealed.get(lpn as usize).copied().unwrap_or(false)
    }

    /// A block the GC may reclaim: fully allocated (it will never be
    /// written again), holding at least one dead page, not pinned by a
    /// write frontier, free of sealed pages (migrating those would
    /// invalidate the physical mappings the sealed image recorded), and
    /// not retired to the bad-block table (it cannot be erased). Shared
    /// by the pre-check and victim selection so the two cannot drift.
    fn victim_eligible(&self, b: usize, ppb: usize) -> bool {
        self.allocated[b] as usize == ppb
            && self.allocated[b] > self.live[b]
            && self.sealed_in_block[b] == 0
            && !self.bad[b]
            && !self.is_frontier(BlockId(b as u32), ppb)
    }

    fn retired_blocks(&self) -> usize {
        self.bad.iter().filter(|&&b| b).count()
    }
}

/// Reliability counters surfaced by [`Volume::reliability`] (and the
/// engine's `device_report()`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Page reads whose single-bit error the codeword repaired.
    pub corrected: u64,
    /// Page reads that failed past the correction budget.
    pub uncorrectable: u64,
    /// Blocks retired to the bad-block table.
    pub retired_blocks: usize,
    /// Retirement budget ([`FlashConfig::spare_blocks`]).
    ///
    /// [`FlashConfig::spare_blocks`]: ghostdb_types::FlashConfig::spare_blocks
    pub spare_blocks: usize,
    /// Pages the scrub pass has rewritten.
    pub scrubbed_pages: u64,
}

/// What one scrub pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Pages rewritten to fresh locations (corrected-read count at or
    /// past the threshold).
    pub pages_rewritten: u64,
    /// Pages at the threshold that could not move because the sealed
    /// image pins their physical address; the next seal unpins them.
    pub pages_skipped_sealed: u64,
}

/// Pin accounting surfaced by [`Volume::pin_stats`] (and the engine's
/// `device_report()` sessions section).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinStats {
    /// Distinct logical pages pinned by open snapshots.
    pub snapshot_pinned: usize,
    /// Snapshot-pinned pages whose free is deferred until the last
    /// pin drops.
    pub snapshot_deferred: usize,
    /// Logical pages referenced by the sealed on-flash image.
    pub sealed_pinned: usize,
    /// Sealed pages whose free is deferred until the next
    /// [`Volume::commit_seal`].
    pub sealed_deferred: usize,
}

/// Snapshot of space usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeUsage {
    /// Total erase blocks.
    pub total_blocks: usize,
    /// Blocks on the free list.
    pub free_blocks: usize,
    /// Live (reachable) pages.
    pub live_pages: u64,
    /// Dead pages awaiting reclamation (allocated, freed, not yet
    /// erased) — the GC's feedstock.
    pub dead_pages: u64,
}

/// Registry-backed flash instrumentation, attached by the engine:
/// GC and scrub pause histograms (simulated ns), migration and ECC
/// counters, page faults, and page-cache traffic. All counts and
/// durations — nothing here can carry a stored value.
#[derive(Debug)]
pub struct VolumeMetrics {
    gc_pause: Histogram,
    scrub_pause: Histogram,
    gc_migrations: Counter,
    ecc_corrected: Counter,
    ecc_uncorrectable: Counter,
    page_faults: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
}

impl VolumeMetrics {
    /// Register the volume's metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        VolumeMetrics {
            gc_pause: registry.histogram("ghostdb_gc_pause_ns", TIME_BUCKETS_NS),
            scrub_pause: registry.histogram("ghostdb_scrub_pause_ns", TIME_BUCKETS_NS),
            gc_migrations: registry.counter("ghostdb_gc_migrations_total"),
            ecc_corrected: registry.counter("ghostdb_ecc_corrected_total"),
            ecc_uncorrectable: registry.counter("ghostdb_ecc_uncorrectable_total"),
            page_faults: registry.counter("ghostdb_flash_page_faults_total"),
            cache_hits: registry.counter("ghostdb_page_cache_hits_total"),
            cache_misses: registry.counter("ghostdb_page_cache_misses_total"),
            cache_evictions: registry.counter("ghostdb_page_cache_evictions_total"),
        }
    }
}

/// Page-cache accounting surfaced by [`Volume::page_cache_stats`] (and
/// the engine's `device_report()`). Counts and sizes only — the mirror
/// itself never leaves the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Mirror capacity in raw pages (`0` = cache disabled).
    pub capacity_pages: usize,
    /// Raw pages currently resident in the mirror.
    pub resident_pages: usize,
    /// Bytes charged to the device RAM budget for the mirror.
    pub charged_bytes: usize,
    /// Page faults served from the mirror: no NAND transfer, no ECC
    /// re-check, no simulated device time.
    pub hits: u64,
    /// Page faults that paid the full NAND transfer.
    pub misses: u64,
    /// Resident pages displaced by second-chance eviction.
    pub evictions: u64,
}

/// One clock-ring slot of the page-cache mirror.
#[derive(Debug)]
struct CacheSlot {
    /// Physical page mirrored here (`UNMAPPED` = slot empty).
    phys: u32,
    /// Second-chance bit: set on every hit, cleared as the clock hand
    /// sweeps past; only an unreferenced slot is evicted.
    referenced: bool,
    /// The raw page image (payload + codeword), exactly as verified.
    data: Vec<u8>,
}

#[derive(Debug, Default)]
struct PageCacheInner {
    /// Clock ring of mirrored pages (grows lazily up to capacity).
    slots: Vec<CacheSlot>,
    /// Physical page → slot index.
    map: HashMap<u32, usize>,
    /// Slot indexes emptied by invalidation, reused before eviction.
    free: Vec<usize>,
    /// Clock hand for second-chance eviction.
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// The mirror's bytes, held against the device RAM budget.
    charge: Option<RamGuard>,
}

/// Shared device-RAM mirror of recently faulted NAND pages.
///
/// Keyed by **physical** page: the mirror holds the exact raw image a
/// verified fault produced, and stays valid as long as that physical
/// page's bytes cannot change — which the volume guarantees while the
/// page is mapped (reprogramming requires an erase, an erase requires
/// the whole block unmapped). The two events that break that guarantee,
/// [`Nand::erase`] and [`Nand::program`], run only under the state
/// lock, where the affected entries are invalidated; a faulting reader
/// re-checks the logical→physical mapping after copying from the
/// mirror, exactly like the NAND path re-checks after a transfer.
///
/// Only **clean** codewords are mirrored: a page whose read needed a
/// single-bit correction must keep re-correcting on every fault so its
/// per-page counter can reach the scrub threshold.
#[derive(Debug)]
struct PageCache {
    /// Capacity in pages; `0` = disabled. Read lock-free so the
    /// disabled fast path costs one atomic load.
    cap: AtomicUsize,
    inner: Mutex<PageCacheInner>,
}

impl PageCache {
    fn disabled() -> Self {
        PageCache {
            cap: AtomicUsize::new(0),
            inner: Mutex::new(PageCacheInner::default()),
        }
    }

    fn enabled(&self) -> bool {
        self.cap.load(Ordering::Relaxed) > 0
    }

    /// Swap in a new capacity and RAM charge, dropping the old mirror
    /// contents (traffic counters persist across reconfiguration).
    fn configure(&self, pages: usize, charge: Option<RamGuard>) {
        let mut inner = self.inner.lock().expect("page cache poisoned");
        self.cap.store(pages, Ordering::Relaxed);
        inner.slots.clear();
        inner.map.clear();
        inner.free.clear();
        inner.hand = 0;
        inner.charge = charge;
    }

    /// Copy the mirrored image of `phys` into `dst` (raw-page sized).
    /// Returns `false` on a miss; the caller must then fault from NAND.
    fn copy_page(&self, phys: u32, dst: &mut [u8]) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut inner = self.inner.lock().expect("page cache poisoned");
        let Some(&slot) = inner.map.get(&phys) else {
            return false;
        };
        let s = &mut inner.slots[slot];
        s.referenced = true;
        dst.copy_from_slice(&s.data);
        true
    }

    /// Count one confirmed mirror hit (mapping re-checked by the caller).
    fn note_hit(&self) {
        if self.enabled() {
            self.inner.lock().expect("page cache poisoned").hits += 1;
        }
    }

    /// Count one fault that paid the NAND transfer.
    fn note_miss(&self) {
        if self.enabled() {
            self.inner.lock().expect("page cache poisoned").misses += 1;
        }
    }

    /// Mirror a verified raw page, reusing an empty slot, growing up to
    /// capacity, or second-chance evicting. Returns evictions (0 or 1).
    fn insert(&self, phys: u32, raw: &[u8]) -> u64 {
        let cap = self.cap.load(Ordering::Relaxed);
        if cap == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("page cache poisoned");
        if let Some(&slot) = inner.map.get(&phys) {
            // Already resident (two readers raced the same miss).
            let s = &mut inner.slots[slot];
            s.data.copy_from_slice(raw);
            s.referenced = true;
            return 0;
        }
        if let Some(slot) = inner.free.pop() {
            let s = &mut inner.slots[slot];
            s.phys = phys;
            s.referenced = true;
            s.data.copy_from_slice(raw);
            inner.map.insert(phys, slot);
            return 0;
        }
        if inner.slots.len() < cap {
            inner.slots.push(CacheSlot {
                phys,
                referenced: true,
                data: raw.to_vec(),
            });
            let slot = inner.slots.len() - 1;
            inner.map.insert(phys, slot);
            return 0;
        }
        // Clock sweep: every slot is occupied here (empties would be on
        // the free list), so the sweep terminates within two laps.
        loop {
            let hand = inner.hand;
            inner.hand = (hand + 1) % inner.slots.len();
            if inner.slots[hand].referenced {
                inner.slots[hand].referenced = false;
                continue;
            }
            let old = inner.slots[hand].phys;
            inner.map.remove(&old);
            let s = &mut inner.slots[hand];
            s.phys = phys;
            s.referenced = true;
            s.data.copy_from_slice(raw);
            inner.map.insert(phys, hand);
            inner.evictions += 1;
            return 1;
        }
    }

    /// Drop the mirror entry for one physical page (about to be
    /// reprogrammed). Caller holds the volume state lock; the state →
    /// cache lock order is the only nesting the volume ever uses.
    fn invalidate(&self, phys: u32) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("page cache poisoned");
        if let Some(slot) = inner.map.remove(&phys) {
            inner.slots[slot].phys = UNMAPPED;
            inner.slots[slot].referenced = false;
            inner.free.push(slot);
        }
    }

    /// Drop the mirror entries for a physical page range (the block
    /// about to be erased). Caller holds the volume state lock.
    fn invalidate_range(&self, first: usize, count: usize) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("page cache poisoned");
        for phys in first..first + count {
            if let Some(slot) = inner.map.remove(&(phys as u32)) {
                inner.slots[slot].phys = UNMAPPED;
                inner.slots[slot].referenced = false;
                inner.free.push(slot);
            }
        }
    }

    fn stats(&self) -> PageCacheStats {
        let inner = self.inner.lock().expect("page cache poisoned");
        PageCacheStats {
            capacity_pages: self.cap.load(Ordering::Relaxed),
            resident_pages: inner.map.len(),
            charged_bytes: inner.charge.as_ref().map_or(0, |g| g.bytes()),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

/// The device's segment store. Cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct Volume {
    nand: Nand,
    state: Arc<Mutex<AllocState>>,
    metrics: Arc<OnceLock<VolumeMetrics>>,
    cache: Arc<PageCache>,
}

impl Volume {
    /// Take ownership of a blank NAND part.
    pub fn new(nand: Nand) -> Self {
        Self::with_reserved(nand, 0)
    }

    /// Take ownership of a blank NAND part whose first `reserved` erase
    /// blocks belong to someone else (the durability layer's metadata
    /// slots and WAL region): the volume never allocates, erases, or
    /// garbage-collects them.
    pub fn with_reserved(nand: Nand, reserved: usize) -> Self {
        let blocks = nand.block_count();
        let pages = nand.page_count();
        assert!(
            reserved < blocks,
            "reserved region ({reserved} blocks) swallows the whole part ({blocks} blocks)"
        );
        Volume {
            state: Arc::new(Mutex::new(AllocState {
                free_blocks: (reserved as u32..blocks as u32).map(BlockId).collect(),
                current: None,
                gc_current: None,
                live: vec![0; blocks],
                allocated: vec![0; blocks],
                l2p: Vec::new(),
                free_lpns: Vec::new(),
                p2l: vec![UNMAPPED; pages],
                gc: GcStats::default(),
                sealed: Vec::new(),
                sealed_in_block: vec![0; blocks],
                deferred_free: HashSet::new(),
                pins: HashMap::new(),
                pin_deferred: HashSet::new(),
                bad: vec![false; blocks],
                corrected_reads: vec![0; pages],
                corrected_total: 0,
                uncorrectable_total: 0,
                scrubbed_pages: 0,
            })),
            nand,
            metrics: Arc::new(OnceLock::new()),
            cache: Arc::new(PageCache::disabled()),
        }
    }

    /// Reconstruct a volume from a **sealed translation table** on a
    /// part that already holds data — the mount path. `l2p[lpn]` is the
    /// physical page recorded by the sealed image (`u32::MAX` =
    /// unmapped). Per-block accounting is rebuilt conservatively:
    ///
    /// * a block with mapped pages is treated as fully allocated (its
    ///   erased tail pages — the interrupted frontier — are never
    ///   reused; the GC reclaims them with the block);
    /// * a block with no mapped page returns to the free list if fully
    ///   erased, otherwise it is all-dead feedstock for the GC (stale
    ///   data from writes the crash outran);
    /// * every mapped page is immediately **sealed** (the image that
    ///   described it is the one we just mounted).
    ///
    /// `bad_blocks` is the persisted bad-block table: those blocks are
    /// retired on arrival (never allocated, erased, or GC'd), though
    /// any still-readable sealed pages they hold stay mapped. Blocks
    /// that grew bad after the last seal simply re-fail on first use
    /// and re-retire — the table is a cache of discoveries, not the
    /// source of truth.
    pub fn mount(nand: Nand, reserved: usize, l2p: Vec<u32>, bad_blocks: &[u32]) -> Result<Self> {
        let blocks = nand.block_count();
        let pages = nand.page_count();
        let ppb = nand.config().pages_per_block;
        let mut bad = vec![false; blocks];
        for &b in bad_blocks {
            if b as usize >= blocks {
                return Err(GhostError::corrupt(format!(
                    "persisted bad-block table entry {b} out of range ({blocks} blocks)"
                )));
            }
            // Entries inside the reserved region belong to the
            // durability layer's own remapping; the volume tracks only
            // its half of the part.
            if b as usize >= reserved {
                bad[b as usize] = true;
            }
        }
        let mut p2l = vec![UNMAPPED; pages];
        let mut live = vec![0u32; blocks];
        let mut sealed_in_block = vec![0u32; blocks];
        let mut free_lpns = Vec::new();
        for (lpn, &phys) in l2p.iter().enumerate() {
            if phys == UNMAPPED {
                free_lpns.push(lpn as u32);
                continue;
            }
            let p = PageAddr(phys);
            if p.index() >= pages || p.index() / ppb < reserved {
                return Err(GhostError::corrupt(format!(
                    "mounted l2p entry {lpn} points at invalid page {phys}"
                )));
            }
            if p2l[p.index()] != UNMAPPED {
                return Err(GhostError::corrupt(format!(
                    "mounted l2p maps page {phys} twice"
                )));
            }
            if nand.page_state(p)? != PageState::Programmed {
                return Err(GhostError::corrupt(format!(
                    "mounted l2p entry {lpn} points at erased page {phys}"
                )));
            }
            p2l[p.index()] = lpn as u32;
            let b = p.index() / ppb;
            live[b] += 1;
            sealed_in_block[b] += 1;
        }
        let mut free_blocks = Vec::new();
        let mut allocated = vec![0u32; blocks];
        for b in reserved..blocks {
            if bad[b] {
                // Retired: never allocatable, never erased; treated as
                // fully allocated so accounting stays consistent.
                allocated[b] = ppb as u32;
                continue;
            }
            if live[b] > 0 {
                allocated[b] = ppb as u32;
                continue;
            }
            let first = b * ppb;
            let fully_erased = (first..first + ppb)
                .all(|p| matches!(nand.page_state(PageAddr(p as u32)), Ok(PageState::Erased)));
            if fully_erased {
                free_blocks.push(BlockId(b as u32));
            } else {
                // Stale programmed pages with no owner: all-dead, fully
                // allocated, so the GC erases the block when picked.
                allocated[b] = ppb as u32;
            }
        }
        let sealed = l2p.iter().map(|&p| p != UNMAPPED).collect();
        Ok(Volume {
            state: Arc::new(Mutex::new(AllocState {
                free_blocks,
                current: None,
                gc_current: None,
                live,
                allocated,
                l2p,
                free_lpns,
                p2l,
                gc: GcStats::default(),
                sealed,
                sealed_in_block,
                deferred_free: HashSet::new(),
                pins: HashMap::new(),
                pin_deferred: HashSet::new(),
                bad,
                corrected_reads: vec![0; pages],
                corrected_total: 0,
                uncorrectable_total: 0,
                scrubbed_pages: 0,
            })),
            nand,
            metrics: Arc::new(OnceLock::new()),
            cache: Arc::new(PageCache::disabled()),
        })
    }

    /// Attach registry-backed instrumentation. A no-op if metrics are
    /// already attached; clones of this volume share the attachment.
    pub fn attach_metrics(&self, metrics: VolumeMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// Size the shared page-cache mirror to `pages` raw pages, charging
    /// the mirror's bytes to `budget` — the device RAM budget, so the
    /// secure chip's 64 KB invariant still binds. `pages = 0` disables
    /// the cache and releases any previous charge. Reconfiguring drops
    /// the mirrored contents (traffic counters persist). Returns the
    /// bytes charged.
    ///
    /// Volumes start with the cache disabled; the engine calls this
    /// once per open, with [`FlashConfig::page_cache_pages`]. Clones of
    /// this volume (including snapshot readers) share the one mirror.
    ///
    /// [`FlashConfig::page_cache_pages`]: ghostdb_types::FlashConfig::page_cache_pages
    pub fn configure_page_cache(&self, pages: usize, budget: &RamBudget) -> Result<usize> {
        // Release the previous charge before taking the new one, so a
        // reconfigure against the same budget never double-counts.
        self.cache.configure(0, None);
        if pages == 0 {
            return Ok(0);
        }
        let bytes = pages * self.raw_page_size();
        let guard = budget.alloc(bytes)?;
        self.cache.configure(pages, Some(guard));
        Ok(bytes)
    }

    /// Page-cache accounting: capacity, residency, the RAM charge, and
    /// hit/miss/eviction counters.
    pub fn page_cache_stats(&self) -> PageCacheStats {
        self.cache.stats()
    }

    /// The translation table as the durability layer seals it:
    /// `out[lpn]` = current physical page, with deferred-freed pages
    /// already masked out (the image being written no longer references
    /// them, even though they stay physically intact until
    /// [`commit_seal`](Self::commit_seal) runs).
    pub fn l2p_snapshot(&self) -> Vec<u32> {
        let st = self.state.lock().expect("volume poisoned");
        let mut out = st.l2p.clone();
        for &lpn in &st.deferred_free {
            out[lpn as usize] = UNMAPPED;
        }
        // Pin-deferred pages are equally dead to the image being
        // sealed: only open snapshots may still read them.
        for &lpn in &st.pin_deferred {
            out[lpn as usize] = UNMAPPED;
        }
        out
    }

    /// Rebuild a [`Segment`] handle from its durable [`SegmentManifest`].
    pub fn restore_manifest(&self, m: &SegmentManifest) -> Result<Segment> {
        self.restore_segment(&m.lpns, m.len)
    }

    /// Rebuild a [`Segment`] handle from a sealed manifest (LPN list +
    /// byte length). Every LPN must be live in the translation table.
    pub fn restore_segment(&self, lpns: &[u32], len_bytes: u64) -> Result<Segment> {
        let ps = self.page_size() as u64;
        if len_bytes > lpns.len() as u64 * ps || (lpns.len() as u64) > len_bytes.div_ceil(ps) {
            return Err(GhostError::corrupt(format!(
                "segment manifest length {len_bytes} does not fit {} pages",
                lpns.len()
            )));
        }
        let st = self.state.lock().expect("volume poisoned");
        for &lpn in lpns {
            match st.l2p.get(lpn as usize) {
                Some(&p) if p != UNMAPPED => {}
                _ => {
                    return Err(GhostError::corrupt(format!(
                        "segment manifest references unmapped logical page {lpn}"
                    )))
                }
            }
        }
        Ok(Segment {
            pages: Arc::new(lpns.iter().map(|&l| Lpn(l)).collect()),
            len_bytes,
        })
    }

    /// Finish a seal: physically release every deferred free (the old
    /// image's pages — the new image is durable, so they may finally
    /// die), then pin the entire live set as the new sealed generation.
    pub fn commit_seal(&self) -> Result<()> {
        let deferred: Vec<u32> = {
            let mut st = self.state.lock().expect("volume poisoned");
            let d: Vec<u32> = st.deferred_free.drain().collect();
            // Unseal first so free_now treats them as ordinary pages.
            for &lpn in &d {
                if st.is_sealed(lpn) {
                    let phys = st.l2p[lpn as usize];
                    let b = (phys as usize) / self.nand.config().pages_per_block;
                    st.sealed[lpn as usize] = false;
                    st.sealed_in_block[b] -= 1;
                }
            }
            // A page freed under both disciplines (sealed *and*
            // snapshot-pinned) outlives the seal: hand it to the pin
            // ledger, to die when the last snapshot drops.
            let (still_pinned, free): (Vec<u32>, Vec<u32>) =
                d.into_iter().partition(|lpn| st.pins.contains_key(lpn));
            st.pin_deferred.extend(still_pinned);
            free
        };
        for lpn in deferred {
            self.free_now(Lpn(lpn))?;
        }
        let mut st = self.state.lock().expect("volume poisoned");
        let ppb = self.nand.config().pages_per_block;
        // The new sealed generation is the live translation table minus
        // the pin-deferred pages: those are logically dead (the image
        // being committed no longer references them), merely kept
        // readable for open snapshots.
        let pin_deferred = std::mem::take(&mut st.pin_deferred);
        st.sealed = st
            .l2p
            .iter()
            .enumerate()
            .map(|(lpn, &p)| p != UNMAPPED && !pin_deferred.contains(&(lpn as u32)))
            .collect();
        let mut per_block = vec![0u32; self.nand.block_count()];
        for (lpn, &phys) in st.l2p.iter().enumerate() {
            if phys != UNMAPPED && !pin_deferred.contains(&(lpn as u32)) {
                per_block[(phys as usize) / ppb] += 1;
            }
        }
        st.sealed_in_block = per_block;
        st.pin_deferred = pin_deferred;
        Ok(())
    }

    /// Live pages whose release is deferred until the next
    /// [`commit_seal`](Self::commit_seal) (observability).
    pub fn deferred_free_pages(&self) -> usize {
        self.state
            .lock()
            .expect("volume poisoned")
            .deferred_free
            .len()
    }

    /// Pin a set of logical pages on behalf of an open read snapshot:
    /// until [`unpin_pages`](Self::unpin_pages) drops the last pin,
    /// freeing any of them defers the physical release instead of
    /// erasing data the snapshot can still read. Pins nest (two
    /// snapshots over the same base pin each page twice) and do **not**
    /// block GC migration — the translation table keeps pinned reads
    /// valid across moves; only the final erase is held back.
    ///
    /// Every page must currently be mapped and not already
    /// logically freed.
    pub fn pin_pages(&self, lpns: &[u32]) -> Result<()> {
        let mut st = self.state.lock().expect("volume poisoned");
        for &lpn in lpns {
            let mapped = matches!(st.l2p.get(lpn as usize), Some(&p) if p != UNMAPPED);
            if !mapped || st.pin_deferred.contains(&lpn) {
                return Err(GhostError::flash(format!(
                    "snapshot pin of dead logical page {lpn}"
                )));
            }
        }
        for &lpn in lpns {
            *st.pins.entry(lpn).or_insert(0) += 1;
        }
        Ok(())
    }

    /// Drop one pin from each of `lpns` (the snapshot's drop path).
    /// Pages whose last pin drops *and* whose free was deferred while
    /// pinned are physically released here — the moment "no snapshot
    /// can read this" becomes true.
    pub fn unpin_pages(&self, lpns: &[u32]) -> Result<()> {
        let mut release = Vec::new();
        {
            let mut st = self.state.lock().expect("volume poisoned");
            for &lpn in lpns {
                let Some(count) = st.pins.get_mut(&lpn) else {
                    return Err(GhostError::flash(format!(
                        "unpin of logical page {lpn} that holds no pin"
                    )));
                };
                *count -= 1;
                if *count == 0 {
                    st.pins.remove(&lpn);
                    if st.pin_deferred.remove(&lpn) {
                        release.push(lpn);
                    }
                }
            }
        }
        for lpn in release {
            self.free_now(Lpn(lpn))?;
        }
        Ok(())
    }

    /// Pin accounting for `device_report()`: distinct snapshot-pinned
    /// pages, pinned pages whose free is deferred on the pins, and
    /// pages pinned by the sealed on-flash image.
    pub fn pin_stats(&self) -> PinStats {
        let st = self.state.lock().expect("volume poisoned");
        PinStats {
            snapshot_pinned: st.pins.len(),
            snapshot_deferred: st.pin_deferred.len(),
            sealed_pinned: st.sealed.iter().filter(|&&s| s).count(),
            sealed_deferred: st.deferred_free.len(),
        }
    }

    /// The underlying NAND part (for stats and config).
    pub fn nand(&self) -> &Nand {
        &self.nand
    }

    /// **Usable** page payload: the raw page minus the out-of-band
    /// codeword when ECC is enabled. Everything layered on the volume
    /// (segment sizing, manifests, readers) works in this unit.
    pub fn page_size(&self) -> usize {
        let raw = self.nand.config().page_size;
        if self.nand.config().ecc_enabled {
            raw - ecc::TAIL_BYTES
        } else {
            raw
        }
    }

    /// Raw (physical) page size — the unit programs and page faults
    /// actually move.
    fn raw_page_size(&self) -> usize {
        self.nand.config().page_size
    }

    /// Retired blocks, ascending — what the durability layer persists.
    pub fn bad_blocks_snapshot(&self) -> Vec<u32> {
        let st = self.state.lock().expect("volume poisoned");
        st.bad
            .iter()
            .enumerate()
            .filter_map(|(b, &bad)| bad.then_some(b as u32))
            .collect()
    }

    /// Reliability counters: ECC corrections, uncorrectable failures,
    /// retired blocks against the spare budget, scrubbed pages.
    pub fn reliability(&self) -> ReliabilityStats {
        let st = self.state.lock().expect("volume poisoned");
        ReliabilityStats {
            corrected: st.corrected_total,
            uncorrectable: st.uncorrectable_total,
            retired_blocks: st.retired_blocks(),
            spare_blocks: self.nand.config().spare_blocks,
            scrubbed_pages: st.scrubbed_pages,
        }
    }

    /// ECC bookkeeping for a raw page already read into `raw`: verify,
    /// repair a single-bit error in place, update counters. The caller
    /// holds the state lock.
    fn verify_raw(&self, st: &mut AllocState, phys: PageAddr, raw: &mut [u8]) -> Result<()> {
        if !self.nand.config().ecc_enabled {
            return Ok(());
        }
        self.nand
            .clock()
            .advance(self.nand.config().ecc_cost_ns(raw.len()));
        match ecc::verify_page(raw) {
            ecc::Verdict::Clean => Ok(()),
            ecc::Verdict::Corrected => {
                st.corrected_total += 1;
                st.corrected_reads[phys.index()] += 1;
                if let Some(m) = self.metrics.get() {
                    m.ecc_corrected.inc();
                }
                Ok(())
            }
            ecc::Verdict::Uncorrectable => {
                st.uncorrectable_total += 1;
                if let Some(m) = self.metrics.get() {
                    m.ecc_uncorrectable.inc();
                }
                Err(GhostError::corrupt(format!(
                    "uncorrectable bit errors in flash page {} (past the single-bit ECC budget)",
                    phys.0
                )))
            }
        }
    }

    /// Fault one full raw page of a logical page through the codeword
    /// check, consulting the shared page-cache mirror first. `raw` must
    /// be raw-page sized; the caller must **not** hold the state lock.
    ///
    /// Concurrency: readers fault pages while the writer thread may be
    /// garbage-collecting, scrubbing, or flushing. The resolve → copy
    /// window is protected optimistically — after the transfer (from
    /// the mirror or from NAND) the mapping is re-checked, and the
    /// fault retried if the page migrated (or its block was erased and
    /// reprogrammed) in between. A physical page's bytes cannot change
    /// while its mapping holds: reprogramming requires an erase, and an
    /// erase requires every page of the block to be unmapped first —
    /// and both of those events invalidate the mirror under the same
    /// state lock, so a re-checked mirror copy is as good as a
    /// re-checked NAND transfer.
    fn fault_lpn(&self, lpn: Lpn, raw: &mut [u8]) -> Result<()> {
        if let Some(m) = self.metrics.get() {
            m.page_faults.inc();
        }
        loop {
            let phys = self.phys_of(lpn)?;
            if self.cache.copy_page(phys.0, raw) {
                let mapped = {
                    let st = self.state.lock().expect("volume poisoned");
                    st.l2p.get(lpn.0 as usize).copied() == Some(phys.0)
                };
                if !mapped {
                    continue; // migrated mid-copy: retry at the new address
                }
                // Served from the mirror: no NAND transfer, no ECC
                // re-check (the image was verified clean on fill), no
                // simulated device time.
                self.cache.note_hit();
                if let Some(m) = self.metrics.get() {
                    m.cache_hits.inc();
                }
                return Ok(());
            }
            self.nand.read_into(phys, 0, raw)?;
            {
                let st = self.state.lock().expect("volume poisoned");
                if st.l2p.get(lpn.0 as usize).copied() != Some(phys.0) {
                    continue; // migrated mid-transfer: retry at the new address
                }
            }
            let clean = self.verify_faulted(phys, raw)?;
            if clean {
                // Mirror the verified image — under the state lock and
                // only while the mapping still holds, so the insert
                // cannot race an erase/program of the same physical
                // page (those invalidate under the same lock).
                let st = self.state.lock().expect("volume poisoned");
                if st.l2p.get(lpn.0 as usize).copied() == Some(phys.0) {
                    let evicted = self.cache.insert(phys.0, raw);
                    if evicted > 0 {
                        if let Some(m) = self.metrics.get() {
                            m.cache_evictions.add(evicted);
                        }
                    }
                }
            }
            self.cache.note_miss();
            if self.cache.enabled() {
                if let Some(m) = self.metrics.get() {
                    m.cache_misses.inc();
                }
            }
            return Ok(());
        }
    }

    /// ECC bookkeeping for a raw page faulted *outside* the state
    /// lock: the codeword check (the CPU-heavy part of a read) runs
    /// unlocked so concurrent readers never serialize on it; only the
    /// counter updates take the lock. Returns `true` when the codeword
    /// was clean (or ECC is off) — the condition for mirroring the
    /// page; a corrected page must keep re-correcting on every fault
    /// so its per-page counter can reach the scrub threshold.
    fn verify_faulted(&self, phys: PageAddr, raw: &mut [u8]) -> Result<bool> {
        if !self.nand.config().ecc_enabled {
            return Ok(true);
        }
        self.nand
            .clock()
            .advance(self.nand.config().ecc_cost_ns(raw.len()));
        match ecc::verify_page(raw) {
            ecc::Verdict::Clean => Ok(true),
            ecc::Verdict::Corrected => {
                let mut st = self.state.lock().expect("volume poisoned");
                st.corrected_total += 1;
                // The page may have migrated since the transfer; the
                // per-page scrub counter only tracks still-mapped cells.
                if st.p2l[phys.index()] != UNMAPPED {
                    st.corrected_reads[phys.index()] += 1;
                }
                if let Some(m) = self.metrics.get() {
                    m.ecc_corrected.inc();
                }
                Ok(false)
            }
            ecc::Verdict::Uncorrectable => {
                let mut st = self.state.lock().expect("volume poisoned");
                st.uncorrectable_total += 1;
                if let Some(m) = self.metrics.get() {
                    m.ecc_uncorrectable.inc();
                }
                Err(GhostError::corrupt(format!(
                    "uncorrectable bit errors in flash page {} (past the single-bit ECC budget)",
                    phys.0
                )))
            }
        }
    }

    /// Pull the least-worn block off the free list (wear-aware
    /// destination selection; the seed used FIFO order here, which let
    /// erase counts skew under churn).
    fn open_block(&self, st: &mut AllocState) -> Result<BlockId> {
        let idx = self
            .nand
            .least_worn(&st.free_blocks)
            .ok_or_else(|| GhostError::flash("flash volume full: no free blocks"))?;
        Ok(st.free_blocks.swap_remove(idx))
    }

    /// Allocate one physical page on the requested write frontier.
    fn alloc_phys(&self, st: &mut AllocState, gc_frontier: bool) -> Result<PageAddr> {
        let ppb = self.nand.config().pages_per_block;
        let slot = if gc_frontier {
            st.gc_current
        } else {
            st.current
        };
        let (block, next) = match slot {
            Some((b, n)) if n < ppb => (b, n),
            _ => (self.open_block(st)?, 0),
        };
        let advanced = Some((block, next + 1));
        if gc_frontier {
            st.gc_current = advanced;
        } else {
            st.current = advanced;
        }
        st.allocated[block.index()] += 1;
        st.live[block.index()] += 1;
        Ok(PageAddr(block.0 * ppb as u32 + next as u32))
    }

    /// Bind a fresh logical page number to `phys`.
    fn map_lpn(&self, st: &mut AllocState, phys: PageAddr) -> Lpn {
        let lpn = match st.free_lpns.pop() {
            Some(n) => {
                st.l2p[n as usize] = phys.0;
                n
            }
            None => {
                st.l2p.push(phys.0);
                (st.l2p.len() - 1) as u32
            }
        };
        st.p2l[phys.index()] = lpn;
        Lpn(lpn)
    }

    /// Build the raw page image for a payload of at most the usable
    /// page size: the payload, erased-pattern padding, and the sealed
    /// codeword when ECC is enabled (charging the encode cost).
    fn seal_raw(&self, data: &[u8]) -> Vec<u8> {
        if !self.nand.config().ecc_enabled {
            return data.to_vec();
        }
        debug_assert!(data.len() <= self.page_size());
        let mut raw = Vec::with_capacity(self.raw_page_size());
        raw.extend_from_slice(data);
        raw.resize(self.page_size(), 0xFF);
        raw.resize(self.raw_page_size(), 0);
        ecc::seal_page(&mut raw);
        self.nand
            .clock()
            .advance(self.nand.config().ecc_cost_ns(raw.len()));
        raw
    }

    /// Allocate a frontier page and program the sealed `raw` image into
    /// it, retiring grown-bad blocks as they are discovered: a program
    /// failure marks the in-flight page dead, retires the block
    /// (re-targeting via the l2p table and evacuating its other live
    /// pages), and retries on a fresh block. Caller holds the state
    /// lock.
    fn program_raw(&self, st: &mut AllocState, gc_frontier: bool, raw: &[u8]) -> Result<PageAddr> {
        loop {
            let phys = self.alloc_phys(st, gc_frontier)?;
            match self.nand.program(phys, raw) {
                Ok(()) => {
                    st.corrected_reads[phys.index()] = 0;
                    // A freshly programmed cell must never be served
                    // from a previous life's mirror entry.
                    self.cache.invalidate(phys.0);
                    return Ok(phys);
                }
                Err(e) => {
                    let block = self.nand.block_of(phys);
                    // The allocated page is lost either way: it counts
                    // dead (it was never mapped).
                    st.live[block.index()] -= 1;
                    if !self.nand.is_grown_bad(block) {
                        return Err(e); // power cut / protocol violation
                    }
                    self.retire_block(st, block)?;
                }
            }
        }
    }

    /// Move `block` to the bad-block table: off the free list, out of
    /// both frontiers, never erased or allocated again. Its unsealed
    /// live pages are evacuated to the cold frontier — the defect is in
    /// programming/erasing, the stored copies are still readable.
    /// Sealed pages stay put (the sealed image pins their physical
    /// address) and stay readable; the next seal records their
    /// successors. Fails with the "worn out" diagnostic once
    /// retirements exceed the spare budget.
    fn retire_block(&self, st: &mut AllocState, block: BlockId) -> Result<()> {
        if st.bad[block.index()] {
            return Ok(());
        }
        st.bad[block.index()] = true;
        if let Some(i) = st.free_blocks.iter().position(|&b| b == block) {
            st.free_blocks.swap_remove(i);
        }
        if matches!(st.current, Some((b, _)) if b == block) {
            st.current = None;
        }
        if matches!(st.gc_current, Some((b, _)) if b == block) {
            st.gc_current = None;
        }
        st.allocated[block.index()] = self.nand.config().pages_per_block as u32;
        let retired = st.retired_blocks();
        let budget = self.nand.config().spare_blocks;
        if retired > budget {
            return Err(GhostError::flash(format!(
                "flash part worn out: {retired} blocks retired, spare budget is {budget}"
            )));
        }
        self.evacuate_block(st, block)
    }

    /// Copy every unsealed live page off a just-retired block — GC
    /// migration without the erase. The copy transits the part's page
    /// register (copy-back), so no query RAM scope is charged.
    fn evacuate_block(&self, st: &mut AllocState, block: BlockId) -> Result<()> {
        let ppb = self.nand.config().pages_per_block;
        let first = block.index() * ppb;
        let mut buf = vec![0u8; self.raw_page_size()];
        for slot in 0..ppb {
            let lpn = st.p2l[first + slot];
            if lpn == UNMAPPED || st.is_sealed(lpn) {
                continue;
            }
            let src = PageAddr((first + slot) as u32);
            self.nand.read_into(src, 0, &mut buf)?;
            self.verify_raw(st, src, &mut buf)?;
            self.reseal_raw(&mut buf);
            let dest = self.program_raw(st, true, &buf)?;
            st.l2p[lpn as usize] = dest.0;
            st.p2l[dest.index()] = lpn;
            st.p2l[first + slot] = UNMAPPED;
            st.live[block.index()] -= 1;
        }
        Ok(())
    }

    /// Erase a fully-dead block and publish it to the free list. An
    /// erase failure grows the block bad: it is retired (swallowing the
    /// error — the data was dead anyway) instead of recycled.
    fn recycle_block(&self, st: &mut AllocState, block: BlockId) -> Result<()> {
        // Erase before publishing to the free list, so a block is
        // never allocatable while still holding stale data.
        match self.nand.erase(block) {
            Ok(()) => {
                st.allocated[block.index()] = 0;
                let first = block.index() * self.nand.config().pages_per_block;
                let ppb = self.nand.config().pages_per_block;
                st.corrected_reads[first..first + ppb].fill(0);
                self.cache.invalidate_range(first, ppb);
                st.free_blocks.push(block);
                Ok(())
            }
            Err(e) if self.nand.is_grown_bad(block) => {
                let _ = e;
                self.retire_block(st, block)
            }
            Err(e) => Err(e),
        }
    }

    /// Regenerate the codeword of a raw page about to be re-programmed
    /// (migration, evacuation, scrub), so a rotted-but-tolerated tail is
    /// not propagated to the new copy.
    fn reseal_raw(&self, buf: &mut [u8]) {
        if !self.nand.config().ecc_enabled {
            return;
        }
        ecc::seal_page(buf);
        self.nand
            .clock()
            .advance(self.nand.config().ecc_cost_ns(buf.len()));
    }

    /// Allocate one page on the user frontier and program `data` into it
    /// (one critical section: the mapping is never visible while the
    /// page's contents are still unwritten), running a GC pass first when
    /// the free list is at or below the configured low-watermark.
    fn program_page(&self, scope: &RamScope, data: &[u8]) -> Result<Lpn> {
        let watermark = self.nand.config().gc_low_watermark_blocks;
        let ppb = self.nand.config().pages_per_block;
        let needs_gc = {
            let st = self.state.lock().expect("volume poisoned");
            let needs_block = !matches!(st.current, Some((_, n)) if n < ppb);
            watermark > 0 && needs_block && st.free_blocks.len() <= watermark
        };
        // Best-effort: a failed pass (e.g. no RAM for the copy buffer, or
        // free space too low to stage a migration) still lets the
        // allocation below use whatever free blocks remain; only if that
        // also fails is the GC failure the better diagnosis.
        let gc_err = if needs_gc { self.gc(scope).err() } else { None };
        let raw = self.seal_raw(data);
        let mut st = self.state.lock().expect("volume poisoned");
        match self.program_raw(&mut st, false, &raw) {
            Ok(phys) => Ok(self.map_lpn(&mut st, phys)),
            Err(e) => {
                let out_of_blocks =
                    matches!(&e, GhostError::Flash(m) if m.contains("no free blocks"));
                if out_of_blocks {
                    Err(gc_err.unwrap_or(e))
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Current physical address of a logical page.
    fn phys_of(&self, lpn: Lpn) -> Result<PageAddr> {
        let st = self.state.lock().expect("volume poisoned");
        match st.l2p.get(lpn.0 as usize) {
            Some(&p) if p != UNMAPPED => Ok(PageAddr(p)),
            _ => Err(GhostError::flash(format!(
                "read through freed logical page {}",
                lpn.0
            ))),
        }
    }

    /// Release one logical page. Pages referenced by the sealed on-flash
    /// image are **deferred**: they stay physically intact (the sealed
    /// l2p still points at them) and are released by
    /// [`commit_seal`](Self::commit_seal) once a superseding image is
    /// durable — the mechanism that keeps a crash mid-flush mountable
    /// from the previous image.
    fn free_page(&self, lpn: Lpn) -> Result<()> {
        {
            let mut st = self.state.lock().expect("volume poisoned");
            if st.is_sealed(lpn.0) {
                match st.l2p.get(lpn.0 as usize) {
                    Some(&p) if p != UNMAPPED => {}
                    _ => {
                        return Err(GhostError::flash(format!(
                            "double free of logical page {}",
                            lpn.0
                        )))
                    }
                }
                if !st.deferred_free.insert(lpn.0) {
                    return Err(GhostError::flash(format!(
                        "double free of (sealed) logical page {}",
                        lpn.0
                    )));
                }
                return Ok(());
            }
            // Snapshot-pinned pages defer exactly like sealed ones,
            // except the release trigger is the last unpin rather than
            // the next commit_seal.
            if st.pins.contains_key(&lpn.0) {
                match st.l2p.get(lpn.0 as usize) {
                    Some(&p) if p != UNMAPPED => {}
                    _ => {
                        return Err(GhostError::flash(format!(
                            "double free of logical page {}",
                            lpn.0
                        )))
                    }
                }
                if !st.pin_deferred.insert(lpn.0) {
                    return Err(GhostError::flash(format!(
                        "double free of (snapshot-pinned) logical page {}",
                        lpn.0
                    )));
                }
                return Ok(());
            }
        }
        self.free_now(lpn)
    }

    /// The physical release path: unmap, recycle the LPN, and erase the
    /// block once it is fully allocated and fully dead.
    fn free_now(&self, lpn: Lpn) -> Result<()> {
        let ppb = self.nand.config().pages_per_block;
        {
            let mut st = self.state.lock().expect("volume poisoned");
            let phys = match st.l2p.get(lpn.0 as usize) {
                Some(&p) if p != UNMAPPED => PageAddr(p),
                _ => {
                    return Err(GhostError::flash(format!(
                        "double free of logical page {}",
                        lpn.0
                    )))
                }
            };
            let block = self.nand.block_of(phys);
            st.l2p[lpn.0 as usize] = UNMAPPED;
            st.free_lpns.push(lpn.0);
            st.p2l[phys.index()] = UNMAPPED;
            st.live[block.index()] -= 1;
            let fully_allocated = st.allocated[block.index()] as usize == ppb;
            // A full block will never be written again, so it is safe to
            // recycle; only a block still accepting allocations (either
            // frontier) is pinned. Retired blocks are never erased —
            // their dead pages are simply lost capacity.
            let erase = st.live[block.index()] == 0
                && fully_allocated
                && !st.bad[block.index()]
                && !st.is_frontier(block, ppb);
            if erase {
                self.recycle_block(&mut st, block)?;
            }
        }
        Ok(())
    }

    /// Release a segment's pages, erasing and recycling fully dead blocks.
    pub fn free(&self, segment: Segment) -> Result<()> {
        for &p in segment.pages.iter() {
            self.free_page(p)?;
        }
        Ok(())
    }

    /// Pick the most profitable victim: greedy cost-benefit on dead
    /// ratio × wear headroom, so fragmented *and* lightly-worn blocks go
    /// first. Returns `None` when no block holds a reclaimable dead page.
    fn pick_victim(&self, st: &AllocState, wear: &[u32]) -> Option<BlockId> {
        let ppb = self.nand.config().pages_per_block;
        let max_wear = wear.iter().copied().max().unwrap_or(0);
        let mut best: Option<(f64, BlockId)> = None;
        for (b, &w) in wear.iter().enumerate() {
            if !st.victim_eligible(b, ppb) {
                continue;
            }
            let block = BlockId(b as u32);
            let dead = st.allocated[b] - st.live[b];
            let dead_ratio = dead as f64 / ppb as f64;
            let headroom = (max_wear - w + 1) as f64;
            let score = dead_ratio * headroom;
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, block));
            }
        }
        best.map(|(_, b)| b)
    }

    /// True if a GC pass would find at least one victim (checked before
    /// charging the copy buffer, so a no-op pass costs no RAM).
    fn has_victim(&self) -> bool {
        let st = self.state.lock().expect("volume poisoned");
        let ppb = self.nand.config().pages_per_block;
        (0..self.nand.block_count()).any(|b| st.victim_eligible(b, ppb))
    }

    /// Migrate `victim`'s live pages to the cold frontier, then erase and
    /// recycle it. Every page read is ECC-verified (and repaired) before
    /// the copy, and the codeword is regenerated for the new location —
    /// migration doubles as error scrubbing. Caller holds the state lock;
    /// `buf` is one raw page.
    fn migrate_block(
        &self,
        st: &mut AllocState,
        victim: BlockId,
        buf: &mut [u8],
        report: &mut GcStats,
    ) -> Result<()> {
        let ppb = self.nand.config().pages_per_block;
        let first = victim.index() * ppb;
        let dead = (st.allocated[victim.index()] - st.live[victim.index()]) as u64;
        for slot in 0..ppb {
            let lpn = st.p2l[first + slot];
            if lpn == UNMAPPED {
                continue;
            }
            let src = PageAddr((first + slot) as u32);
            self.nand.read_into(src, 0, buf)?;
            self.verify_raw(st, src, buf)?;
            self.reseal_raw(buf);
            let dest = self.program_raw(st, true, buf)?;
            st.l2p[lpn as usize] = dest.0;
            st.p2l[dest.index()] = lpn;
            st.p2l[first + slot] = UNMAPPED;
            st.live[victim.index()] -= 1;
            // Counters update as work happens, so an error later in the
            // pass cannot lose what this block already cost/recovered.
            report.pages_migrated += 1;
            st.gc.pages_migrated += 1;
        }
        debug_assert_eq!(st.live[victim.index()], 0, "victim fully migrated");
        match self.nand.erase(victim) {
            Ok(()) => {
                st.allocated[victim.index()] = 0;
                st.corrected_reads[first..first + ppb].fill(0);
                self.cache.invalidate_range(first, ppb);
                st.free_blocks.push(victim);
                report.blocks_reclaimed += 1;
                report.pages_reclaimed += dead;
                st.gc.blocks_reclaimed += 1;
                st.gc.pages_reclaimed += dead;
                Ok(())
            }
            Err(e) if self.nand.is_grown_bad(victim) => {
                // The copies are safe; the victim just can't be recycled.
                let _ = e;
                self.retire_block(st, victim)
            }
            Err(e) => Err(e),
        }
    }

    /// Run one garbage-collection pass: up to
    /// [`gc_max_victims_per_pass`](ghostdb_types::FlashConfig::gc_max_victims_per_pass)
    /// victim blocks are compacted and erased. The one-page copy buffer
    /// is charged to `scope`. Returns what this pass reclaimed (all
    /// zeros when nothing was fragmented).
    pub fn gc(&self, scope: &RamScope) -> Result<GcStats> {
        let mut report = GcStats::default();
        let scrub_pending = self.has_scrub_work();
        if !self.has_victim() && !scrub_pending {
            return Ok(report);
        }
        let pause_start = self.nand.clock().now();
        let _ram = scope.alloc(self.raw_page_size())?;
        let mut buf = vec![0u8; self.raw_page_size()];
        let max_victims = self.nand.config().gc_max_victims_per_pass.max(1);
        let mut st = self.state.lock().expect("volume poisoned");
        let mut outcome = Ok(());
        for _ in 0..max_victims {
            let wear = self.nand.wear_snapshot();
            let Some(victim) = self.pick_victim(&st, &wear) else {
                break;
            };
            if let Err(e) = self.migrate_block(&mut st, victim, &mut buf, &mut report) {
                // Keep what the pass already reclaimed on the books;
                // migrate_block updated the cumulative counters in step.
                outcome = Err(e);
                break;
            }
        }
        if outcome.is_ok() {
            // Piggyback the scrub: pages whose corrected-read count
            // crossed the threshold move to fresh cells while the copy
            // buffer is already paid for.
            outcome = self.scrub_locked(&mut st, &mut buf).map(|_| ());
        }
        if report.blocks_reclaimed > 0 || report.pages_migrated > 0 {
            report.passes = 1;
            st.gc.passes += 1;
        }
        drop(st);
        if let Some(m) = self.metrics.get() {
            m.gc_pause
                .observe(self.nand.clock().now().since(pause_start));
            m.gc_migrations.add(report.pages_migrated);
        }
        outcome.map(|()| report)
    }

    /// True if any mapped page's corrected-read count has crossed the
    /// scrub threshold (checked before charging the copy buffer).
    fn has_scrub_work(&self) -> bool {
        let threshold = self.nand.config().scrub_threshold;
        if threshold == 0 || !self.nand.config().ecc_enabled {
            return false;
        }
        let st = self.state.lock().expect("volume poisoned");
        st.corrected_reads
            .iter()
            .enumerate()
            .any(|(p, &c)| c >= threshold && st.p2l[p] != UNMAPPED)
    }

    /// Rewrite every unsealed mapped page whose corrected-read count has
    /// crossed [`scrub_threshold`](ghostdb_types::FlashConfig::scrub_threshold)
    /// to a fresh location before it rots past the single-bit budget.
    /// Sealed pages cannot move (the image pins them) and are skipped
    /// until the next seal. Caller holds the state lock; `buf` is one
    /// raw page.
    fn scrub_locked(&self, st: &mut AllocState, buf: &mut [u8]) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        let threshold = self.nand.config().scrub_threshold;
        if threshold == 0 || !self.nand.config().ecc_enabled {
            return Ok(report);
        }
        for idx in 0..st.corrected_reads.len() {
            if st.corrected_reads[idx] < threshold {
                continue;
            }
            let lpn = st.p2l[idx];
            if lpn == UNMAPPED {
                // Dead page; the counter dies with it.
                st.corrected_reads[idx] = 0;
                continue;
            }
            if st.is_sealed(lpn) {
                report.pages_skipped_sealed += 1;
                continue;
            }
            let src = PageAddr(idx as u32);
            self.nand.read_into(src, 0, buf)?;
            self.verify_raw(st, src, buf)?;
            self.reseal_raw(buf);
            let dest = self.program_raw(st, true, buf)?;
            let block = self.nand.block_of(src);
            st.l2p[lpn as usize] = dest.0;
            st.p2l[dest.index()] = lpn;
            st.p2l[idx] = UNMAPPED;
            st.live[block.index()] -= 1;
            st.corrected_reads[idx] = 0;
            st.scrubbed_pages += 1;
            report.pages_rewritten += 1;
        }
        Ok(report)
    }

    /// Run a standalone scrub pass (the GC piggybacks the same pass);
    /// the one-page copy buffer is charged to `scope`.
    pub fn scrub(&self, scope: &RamScope) -> Result<ScrubReport> {
        if !self.has_scrub_work() {
            return Ok(ScrubReport::default());
        }
        let pause_start = self.nand.clock().now();
        let _ram = scope.alloc(self.raw_page_size())?;
        let mut buf = vec![0u8; self.raw_page_size()];
        let mut st = self.state.lock().expect("volume poisoned");
        let report = self.scrub_locked(&mut st, &mut buf);
        drop(st);
        if let Some(m) = self.metrics.get() {
            m.scrub_pause
                .observe(self.nand.clock().now().since(pause_start));
        }
        report
    }

    /// Cumulative garbage-collection counters since volume creation.
    pub fn gc_stats(&self) -> GcStats {
        self.state.lock().expect("volume poisoned").gc
    }

    /// Begin writing a new segment; the one-page write buffer is charged
    /// to `scope`. The scope is retained: if an allocation inside
    /// [`SegmentWriter::write`] trips the GC low-watermark, the pass
    /// charges its copy buffer here too.
    pub fn writer(&self, scope: &RamScope) -> Result<SegmentWriter> {
        let guard = scope.alloc(self.raw_page_size())?;
        Ok(SegmentWriter {
            volume: self.clone(),
            scope: scope.clone(),
            buf: Vec::with_capacity(self.page_size()),
            pages: Vec::new(),
            written: 0,
            _ram: guard,
        })
    }

    /// Open a segment for buffered sequential reading; the one-page read
    /// buffer is charged to `scope`.
    pub fn reader(&self, scope: &RamScope, segment: &Segment) -> Result<SegmentReader> {
        let guard = scope.alloc(self.raw_page_size())?;
        Ok(SegmentReader {
            volume: self.clone(),
            segment: segment.clone(),
            pos: 0,
            buf: vec![0; self.raw_page_size()],
            buf_page: usize::MAX,
            _ram: guard,
        })
    }

    /// Random read of `buf.len()` bytes at byte `offset` into a segment.
    ///
    /// Costs one partial page read per page touched. The caller provides
    /// (and has paid for) the destination buffer.
    pub fn read_at(&self, segment: &Segment, offset: u64, buf: &mut [u8]) -> Result<()> {
        if offset + buf.len() as u64 > segment.len_bytes {
            return Err(GhostError::flash(format!(
                "read_at beyond segment end: offset {offset} + {} > {}",
                buf.len(),
                segment.len_bytes
            )));
        }
        let ps = self.page_size() as u64;
        let mut done = 0usize;
        let mut reg = Vec::new();
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_idx = (pos / ps) as usize;
            let in_page = (pos % ps) as usize;
            let chunk = ((ps as usize) - in_page).min(buf.len() - done);
            let lpn = segment.pages[page_idx];
            if self.nand.config().ecc_enabled {
                // The whole codeword must be faulted so the ECC check
                // can run — a random read costs a full-page transfer,
                // not just the window — unless the page-cache mirror
                // already holds the verified image, in which case the
                // fault costs nothing but a host copy.
                reg.resize(self.raw_page_size(), 0);
                self.fault_lpn(lpn, &mut reg)?;
                buf[done..done + chunk].copy_from_slice(&reg[in_page..in_page + chunk]);
            } else {
                // Windowed transfer, re-checked against a concurrent
                // GC migration exactly like a full-page fault.
                loop {
                    let phys = self.phys_of(lpn)?;
                    self.nand
                        .read_into(phys, in_page, &mut buf[done..done + chunk])?;
                    let st = self.state.lock().expect("volume poisoned");
                    if st.l2p.get(lpn.0 as usize).copied() == Some(phys.0) {
                        break;
                    }
                }
            }
            done += chunk;
        }
        Ok(())
    }

    /// Current space usage.
    pub fn usage(&self) -> VolumeUsage {
        let st = self.state.lock().expect("volume poisoned");
        let live: u64 = st.live.iter().map(|&v| v as u64).sum();
        let allocated: u64 = st.allocated.iter().map(|&v| v as u64).sum();
        VolumeUsage {
            total_blocks: self.nand.block_count(),
            free_blocks: st.free_blocks.len(),
            live_pages: live,
            dead_pages: allocated - live,
        }
    }
}

/// Append-only writer producing a [`Segment`].
#[derive(Debug)]
pub struct SegmentWriter {
    volume: Volume,
    scope: RamScope,
    buf: Vec<u8>,
    pages: Vec<Lpn>,
    written: u64,
    _ram: ScopedGuard,
}

impl SegmentWriter {
    /// Append bytes to the segment.
    pub fn write(&mut self, mut bytes: &[u8]) -> Result<()> {
        let ps = self.volume.page_size();
        while !bytes.is_empty() {
            let room = ps - self.buf.len();
            let take = room.min(bytes.len());
            self.buf.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            self.written += take as u64;
            if self.buf.len() == ps {
                self.flush_page()?;
            }
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<()> {
        let lpn = self.volume.program_page(&self.scope, &self.buf)?;
        self.pages.push(lpn);
        self.buf.clear();
        Ok(())
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush the final partial page and return the finished segment.
    pub fn finish(mut self) -> Result<Segment> {
        if !self.buf.is_empty() {
            self.flush_page()?;
        }
        Ok(Segment {
            pages: Arc::new(std::mem::take(&mut self.pages)),
            len_bytes: self.written,
        })
    }
}

impl Drop for SegmentWriter {
    fn drop(&mut self) {
        // Abandoned writer: return any allocated pages to the volume.
        for &p in &self.pages {
            let _ = self.volume.free_page(p);
        }
    }
}

/// Buffered sequential reader over a [`Segment`].
#[derive(Debug)]
pub struct SegmentReader {
    volume: Volume,
    segment: Segment,
    pos: u64,
    buf: Vec<u8>,
    /// Index (within the segment) of the page currently buffered.
    buf_page: usize,
    _ram: ScopedGuard,
}

impl SegmentReader {
    /// Current byte position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Total segment length in bytes.
    pub fn len(&self) -> u64 {
        self.segment.len_bytes
    }

    /// True if the underlying segment holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.segment.len_bytes == 0
    }

    /// True if the cursor is at the end.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.segment.len_bytes
    }

    /// Reposition the cursor.
    pub fn seek(&mut self, pos: u64) -> Result<()> {
        if pos > self.segment.len_bytes {
            return Err(GhostError::flash("seek beyond segment end"));
        }
        self.pos = pos;
        Ok(())
    }

    /// Read up to `buf.len()` bytes; returns 0 at end of segment.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let remaining = (self.segment.len_bytes - self.pos) as usize;
        let want = buf.len().min(remaining);
        let ps = self.volume.page_size();
        let mut done = 0;
        while done < want {
            let page_idx = (self.pos / ps as u64) as usize;
            if page_idx != self.buf_page {
                // Fault in the page (full-page read: sequential scans
                // consume whole pages, and the ECC check needs the whole
                // codeword anyway). Resolved through the translation
                // table, so a concurrent GC migration is invisible here.
                self.volume
                    .fault_lpn(self.segment.pages[page_idx], &mut self.buf)?;
                self.buf_page = page_idx;
            }
            let in_page = (self.pos % ps as u64) as usize;
            let chunk = (ps - in_page).min(want - done);
            buf[done..done + chunk].copy_from_slice(&self.buf[in_page..in_page + chunk]);
            done += chunk;
            self.pos += chunk as u64;
        }
        Ok(done)
    }

    /// Read exactly `buf.len()` bytes or fail.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let n = self.read(buf)?;
        if n != buf.len() {
            return Err(GhostError::flash(format!(
                "unexpected end of segment: wanted {}, got {n}",
                buf.len()
            )));
        }
        Ok(())
    }

    /// Bulk-read `count` packed little-endian `u32` row ids into
    /// `block`: one chunked read per staging buffer instead of one
    /// 4-byte read per id. Shared by the posting-list and flash-temp
    /// block streams.
    pub fn read_ids_into(
        &mut self,
        count: usize,
        block: &mut ghostdb_types::IdBlock,
    ) -> Result<()> {
        let mut raw = [0u8; 256];
        let mut left = count;
        while left > 0 {
            let chunk = left.min(raw.len() / 4);
            self.read_exact(&mut raw[..chunk * 4])?;
            for c in raw[..chunk * 4].chunks_exact(4) {
                block.push(ghostdb_types::RowId(u32::from_le_bytes(
                    c.try_into().expect("4B"),
                )));
            }
            left -= chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{FlashConfig, SimClock};

    fn setup_cfg(blocks: usize, watermark: usize) -> (Volume, RamScope) {
        let cfg = FlashConfig {
            page_size: 64,
            pages_per_block: 4,
            num_blocks: blocks,
            gc_low_watermark_blocks: watermark,
            ..FlashConfig::default_2007()
        };
        let vol = Volume::new(Nand::new(cfg, SimClock::new()));
        let budget = RamBudget::new(64 * 1024);
        let scope = RamScope::new(&budget);
        (vol, scope)
    }

    fn setup(blocks: usize) -> (Volume, RamScope) {
        setup_cfg(blocks, 0)
    }

    #[test]
    fn write_read_roundtrip_multi_page() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(seg.len(), 1000);
        assert_eq!(seg.page_count(), 1000usize.div_ceil(vol.page_size()));

        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; 1000];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(r.read(&mut [0u8; 10]).unwrap(), 0, "EOF returns 0");
    }

    #[test]
    fn chunked_writes_equal_bulk_write() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..500).map(|i| (i * 7 % 256) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        for chunk in data.chunks(13) {
            w.write(chunk).unwrap();
        }
        let seg = w.finish().unwrap();
        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; 500];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn random_read_at() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..640).map(|i| (i % 256) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();

        let mut buf = [0u8; 10];
        let edge = vol.page_size() - 4;
        vol.read_at(&seg, edge as u64, &mut buf).unwrap(); // spans a page boundary
        assert_eq!(&buf[..], &data[edge..edge + 10]);
        assert!(vol.read_at(&seg, 635, &mut buf).is_err());
    }

    #[test]
    fn seek_and_reread() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();

        let mut r = vol.reader(&scope, &seg).unwrap();
        r.seek(100).unwrap();
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [100, 101, 102, 103]);
        r.seek(0).unwrap();
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3]);
    }

    #[test]
    fn free_recycles_blocks() {
        let (vol, scope) = setup(4); // 16 pages total
        let ps = vol.page_size();
        let mut segs = Vec::new();
        for _ in 0..4 {
            let mut w = vol.writer(&scope).unwrap();
            w.write(&vec![0xAB; ps * 4]).unwrap(); // exactly one block
            segs.push(w.finish().unwrap());
        }
        // Volume is now full.
        let mut w = vol.writer(&scope).unwrap();
        assert!(w.write(&vec![0u8; ps]).is_err());
        drop(w);
        // Free two segments; their blocks are erased and reusable.
        vol.free(segs.pop().unwrap()).unwrap();
        vol.free(segs.pop().unwrap()).unwrap();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0xCD; ps * 6]).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(seg.page_count(), 6);
        assert!(vol.nand().stats().block_erases >= 2);
    }

    #[test]
    fn abandoned_writer_releases_pages() {
        let (vol, scope) = setup(2); // 8 pages
        let ps = vol.page_size();
        {
            let mut w = vol.writer(&scope).unwrap();
            w.write(&vec![1u8; ps * 8]).unwrap(); // all pages
                                                  // dropped without finish()
        }
        // A block becomes erasable once its pages are returned.
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![2u8; ps * 4]).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn reader_buffers_are_charged_to_scope() {
        let (vol, _) = setup(4);
        let tiny = RamBudget::new(32); // smaller than one 64-byte page
        let scope = RamScope::new(&tiny);
        assert!(vol.writer(&scope).is_err());
    }

    #[test]
    fn usage_reports_live_pages() {
        let (vol, scope) = setup(4);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0u8; vol.page_size() * 3]).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(vol.usage().live_pages, 3);
        vol.free(seg).unwrap();
        assert_eq!(vol.usage().live_pages, 0);
    }

    #[test]
    fn empty_segment() {
        let (vol, scope) = setup(4);
        let w = vol.writer(&scope).unwrap();
        let seg = w.finish().unwrap();
        assert!(seg.is_empty());
        assert_eq!(seg.page_count(), 0);
        let mut r = vol.reader(&scope, &seg).unwrap();
        assert_eq!(r.read(&mut [0u8; 8]).unwrap(), 0);
    }

    /// Interleave a long-lived segment's pages with a short-lived one's
    /// in the same blocks, free the short-lived one, and return the
    /// survivor: the classic fragmentation the GC exists to fix.
    fn fragment(vol: &Volume, scope: &RamScope, blocks: usize) -> (Segment, Segment) {
        let ps = vol.page_size();
        let mut keeper = vol.writer(scope).unwrap();
        let mut junk = vol.writer(scope).unwrap();
        for _ in 0..blocks {
            keeper.write(&vec![0x11; ps]).unwrap(); // 1 page
            junk.write(&vec![0x22; ps * 3]).unwrap(); // 3 pages
        }
        (keeper.finish().unwrap(), junk.finish().unwrap())
    }

    #[test]
    fn gc_reclaims_fragmented_blocks() {
        let (vol, scope) = setup(8); // 32 pages
        let (keeper, junk) = fragment(&vol, &scope, 4);
        vol.free(junk).unwrap();
        // Every touched block holds one live keeper page: nothing was
        // erasable opportunistically.
        assert_eq!(vol.usage().dead_pages, 12);
        assert_eq!(vol.nand().stats().block_erases, 0);

        let report = vol.gc(&scope).unwrap();
        assert!(report.blocks_reclaimed >= 3, "{report:?}");
        assert_eq!(report.pages_reclaimed, 12);
        assert_eq!(report.pages_migrated, 4);
        assert_eq!(vol.usage().dead_pages, 0);
        assert_eq!(vol.gc_stats().passes, 1);

        // The keeper's bytes are intact at their new physical homes.
        let mut r = vol.reader(&scope, &keeper).unwrap();
        let mut back = vec![0u8; keeper.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn attached_metrics_observe_faults_and_gc() {
        let registry = Registry::new();
        let (vol, scope) = setup(8);
        vol.clone().attach_metrics(VolumeMetrics::new(&registry));

        let (keeper, junk) = fragment(&vol, &scope, 4);
        vol.free(junk).unwrap();
        vol.gc(&scope).unwrap();
        let mut r = vol.reader(&scope, &keeper).unwrap();
        let mut back = vec![0u8; keeper.len() as usize];
        r.read_exact(&mut back).unwrap();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("ghostdb_gc_migrations_total"), 4);
        assert!(snap.counter("ghostdb_flash_page_faults_total") > 0);
        assert_eq!(snap.counter("ghostdb_ecc_uncorrectable_total"), 0);
        match snap.get("ghostdb_gc_pause_ns") {
            Some(ghostdb_obs::MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert!(h.sum > 0, "GC must consume simulated device time");
            }
            other => panic!("expected GC pause histogram, got {other:?}"),
        }
    }

    #[test]
    fn gc_noop_without_fragmentation() {
        let (vol, scope) = setup(4);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![1u8; vol.page_size() * 4]).unwrap();
        let _seg = w.finish().unwrap();
        let report = vol.gc(&scope).unwrap();
        assert_eq!(report, GcStats::default());
        assert_eq!(vol.nand().stats().block_erases, 0);
    }

    #[test]
    fn allocation_triggers_gc_at_watermark() {
        // Watermark covers the whole part: the allocator must GC rather
        // than report "full" when fragmented space exists.
        let (vol, scope) = setup_cfg(8, 8);
        // Fragment 7 of the 8 blocks; one stays free so the GC can stage
        // migrations (the low-watermark trigger keeps real workloads from
        // ever reaching zero free blocks with fragmentation outstanding).
        let (keeper, junk) = fragment(&vol, &scope, 7);
        vol.free(junk).unwrap();
        assert_eq!(vol.usage().free_blocks, 1);
        // 21 dead pages are reclaimable; this write needs 4 fresh pages.
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0x33; vol.page_size() * 4]).unwrap();
        let seg = w.finish().unwrap();
        assert!(vol.gc_stats().blocks_reclaimed > 0);
        let mut r = vol.reader(&scope, &keeper).unwrap();
        let mut back = vec![0u8; keeper.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x11));
        vol.free(seg).unwrap();
        vol.free(keeper).unwrap();
        assert_eq!(vol.usage().live_pages, 0);
    }

    #[test]
    fn double_free_detected_after_migration() {
        let (vol, scope) = setup(8);
        let (keeper, junk) = fragment(&vol, &scope, 4);
        vol.free(junk.clone()).unwrap();
        vol.gc(&scope).unwrap();
        // The junk pages were freed before the GC moved things around;
        // freeing them again must still be caught.
        let err = vol.free(junk).unwrap_err();
        assert!(err.to_string().contains("double free"), "{err}");
        vol.free(keeper).unwrap();
    }

    #[test]
    fn destination_selection_prefers_least_worn() {
        let (vol, scope) = setup(4);
        // Manually wear block 0 far beyond the rest.
        for _ in 0..5 {
            vol.nand().erase(BlockId(0)).unwrap();
        }
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![7u8; vol.page_size()]).unwrap();
        let seg = w.finish().unwrap();
        // The first opened block must be one of the unworn ones.
        let st = vol.state.lock().unwrap();
        let phys = PageAddr(st.l2p[seg.pages[0].0 as usize]);
        drop(st);
        assert_ne!(vol.nand().block_of(phys), BlockId(0));
    }

    #[test]
    fn gc_copy_buffer_is_charged() {
        let (vol, scope) = setup(8);
        let (_keeper, junk) = fragment(&vol, &scope, 4);
        vol.free(junk).unwrap();
        // A scope with no headroom cannot run the pass.
        let tiny = RamBudget::new(32);
        let starved = RamScope::new(&tiny);
        assert!(vol.gc(&starved).is_err());
        // A funded scope can.
        assert!(vol.gc(&scope).unwrap().blocks_reclaimed > 0);
    }

    #[test]
    fn reserved_blocks_are_never_allocated() {
        let (vol, scope) = setup(4);
        let vol = Volume::with_reserved(vol.nand().clone(), 2);
        let ps = vol.page_size();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![9u8; ps * 8]).unwrap(); // both non-reserved blocks
        let seg = w.finish().unwrap();
        let st = vol.state.lock().unwrap();
        for &lpn in seg.pages.iter() {
            let phys = PageAddr(st.l2p[lpn.0 as usize]);
            assert!(phys.index() / 4 >= 2, "page {phys:?} in reserved block");
        }
        drop(st);
        // The part is "full" even though reserved blocks sit erased.
        let mut w = vol.writer(&scope).unwrap();
        assert!(w.write(&vec![1u8; ps]).is_err());
    }

    #[test]
    fn sealed_pages_defer_frees_and_block_gc() {
        let (vol, scope) = setup(8);
        let (keeper, junk) = fragment(&vol, &scope, 4);
        // Seal the current state: every live page is pinned.
        vol.commit_seal().unwrap();
        vol.free(junk.clone()).unwrap();
        assert_eq!(vol.deferred_free_pages(), 12, "sealed frees defer");
        // Double free of a deferred segment is still caught.
        let err = vol.free(junk).unwrap_err();
        assert!(err.to_string().contains("double free"), "{err}");
        // The GC may not touch blocks holding sealed pages, and the
        // deferred pages never become opportunistic-erase fodder.
        assert_eq!(vol.gc(&scope).unwrap(), GcStats::default());
        assert_eq!(vol.nand().stats().block_erases, 0);
        // The snapshot the *next* image records excludes the deferred
        // pages (it no longer references them)...
        let snap = vol.l2p_snapshot();
        let mapped = snap.iter().filter(|&&p| p != UNMAPPED).count();
        assert_eq!(mapped, 4, "only the keeper's pages stay in the image");
        // ...and committing the seal releases them for real: the GC can
        // now compact the fragmented blocks.
        vol.commit_seal().unwrap();
        assert_eq!(vol.deferred_free_pages(), 0);
        // Fresh (post-commit) state has the keeper sealed again; its
        // blocks are exempt, but all-dead blocks reclaim fine.
        let mut r = vol.reader(&scope, &keeper).unwrap();
        let mut back = vec![0u8; keeper.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x11), "keeper intact");
    }

    #[test]
    fn snapshot_pins_defer_frees_until_last_unpin() {
        let (vol, scope) = setup(8);
        let (keeper, junk) = fragment(&vol, &scope, 4);
        let lpns = junk.manifest().lpns;
        // Two snapshots pin the junk segment.
        vol.pin_pages(&lpns).unwrap();
        vol.pin_pages(&lpns).unwrap();
        vol.free(junk.clone()).unwrap();
        let pins = vol.pin_stats();
        assert_eq!(pins.snapshot_pinned, 12);
        assert_eq!(pins.snapshot_deferred, 12, "pinned frees defer");
        // Double free of a pin-deferred segment is still caught.
        let err = vol.free(junk.clone()).unwrap_err();
        assert!(err.to_string().contains("double free"), "{err}");
        // The pinned pages stay readable: the l2p still maps them, and
        // GC may migrate but never erase them.
        vol.gc(&scope).unwrap();
        let mut r = vol.reader(&scope, &junk).unwrap();
        let mut back = vec![0u8; junk.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x22), "pinned data intact");
        // First unpin: still one snapshot open, nothing released.
        vol.unpin_pages(&lpns).unwrap();
        assert_eq!(vol.pin_stats().snapshot_deferred, 12);
        // Last unpin: the deferred pages die for real and become GC
        // feedstock.
        vol.unpin_pages(&lpns).unwrap();
        let pins = vol.pin_stats();
        assert_eq!(pins.snapshot_pinned, 0);
        assert_eq!(pins.snapshot_deferred, 0);
        assert_eq!(vol.usage().dead_pages, 12);
        assert!(vol.gc(&scope).unwrap().blocks_reclaimed >= 3);
        // The keeper never lost a byte through all of it.
        let mut r = vol.reader(&scope, &keeper).unwrap();
        let mut back = vec![0u8; keeper.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x11));
        // Unpinning without a pin is an error, and pinning a dead page
        // is refused.
        assert!(vol.unpin_pages(&lpns).is_err());
        assert!(vol.pin_pages(&lpns).is_err());
    }

    #[test]
    fn seal_and_pin_compose() {
        let (vol, scope) = setup(8);
        let (_keeper, junk) = fragment(&vol, &scope, 4);
        let lpns = junk.manifest().lpns;
        // Page is sealed *and* snapshot-pinned, then freed: the free
        // defers on the seal first.
        vol.commit_seal().unwrap();
        vol.pin_pages(&lpns).unwrap();
        vol.free(junk.clone()).unwrap();
        assert_eq!(vol.deferred_free_pages(), 12);
        assert_eq!(vol.pin_stats().snapshot_deferred, 0);
        // Committing the superseding seal hands the still-pinned pages
        // to the pin ledger instead of erasing under the snapshot.
        vol.commit_seal().unwrap();
        assert_eq!(vol.deferred_free_pages(), 0);
        let pins = vol.pin_stats();
        assert_eq!(pins.snapshot_deferred, 12);
        assert_eq!(
            pins.sealed_pinned, 4,
            "dead-but-pinned pages are not resealed"
        );
        let mut r = vol.reader(&scope, &junk).unwrap();
        let mut back = vec![0u8; junk.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x22), "still readable");
        // The snapshot drops: now the pages die.
        vol.unpin_pages(&lpns).unwrap();
        assert_eq!(vol.pin_stats().snapshot_deferred, 0);
        assert!(vol.usage().dead_pages >= 12 || vol.usage().free_blocks > 0);
    }

    #[test]
    fn mount_restores_segments_and_accounting() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..700u32).map(|i| (i % 251) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        let manifest = seg.manifest();
        let l2p = vol.l2p_snapshot();
        let live_before = vol.usage().live_pages;

        // "Power cycle": a brand-new volume over the same part.
        let vol2 = Volume::mount(vol.nand().clone(), 0, l2p, &[]).unwrap();
        assert_eq!(vol2.usage().live_pages, live_before);
        let seg2 = vol2.restore_manifest(&manifest).unwrap();
        let mut r = vol2.reader(&scope, &seg2).unwrap();
        let mut back = vec![0u8; data.len()];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        // New writes land on erased blocks and read back fine.
        let ps = vol2.page_size();
        let mut w = vol2.writer(&scope).unwrap();
        w.write(&vec![0x5A; ps * 2]).unwrap();
        let extra = w.finish().unwrap();
        let mut r = vol2.reader(&scope, &extra).unwrap();
        let mut b2 = vec![0u8; ps * 2];
        r.read_exact(&mut b2).unwrap();
        assert!(b2.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn mount_rejects_corrupt_tables() {
        let (vol, scope) = setup(4);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![1u8; vol.page_size()]).unwrap();
        let _seg = w.finish().unwrap();
        let l2p = vol.l2p_snapshot();
        // Out-of-range physical page.
        let mut bad = l2p.clone();
        bad[0] = 9999;
        assert!(Volume::mount(vol.nand().clone(), 0, bad, &[]).is_err());
        // Two LPNs on one page.
        let mut bad = l2p.clone();
        bad.push(bad[0]);
        assert!(Volume::mount(vol.nand().clone(), 0, bad, &[]).is_err());
        // Mapping into the reserved region.
        assert!(Volume::mount(vol.nand().clone(), 1, l2p.clone(), &[]).is_err());
        // An out-of-range bad-block table entry.
        assert!(Volume::mount(vol.nand().clone(), 0, l2p, &[99]).is_err());
        // A manifest over unmapped pages is rejected too.
        let vol2 = Volume::mount(vol.nand().clone(), 0, vol.l2p_snapshot(), &[]).unwrap();
        assert!(vol2.restore_segment(&[42], 64).is_err());
        assert!(vol2.restore_segment(&[0], 6400).is_err());
    }

    #[test]
    fn single_bit_rot_is_corrected_on_read() {
        let (vol, scope) = setup(4);
        let ps = vol.page_size();
        let data: Vec<u8> = (0..ps).map(|i| (i * 3) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        let phys = vol.phys_of(seg.pages[0]).unwrap();
        vol.nand().corrupt_page(phys, 137).unwrap();

        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; ps];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data, "flip repaired before the data was served");
        let rel = vol.reliability();
        assert_eq!(rel.corrected, 1);
        assert_eq!(rel.uncorrectable, 0);

        // The repair serves clean data but the stored copy still rots:
        // a random read_at faults the same codeword through the page
        // register and corrects it again.
        let mut probe = [0u8; 4];
        vol.read_at(&seg, 8, &mut probe).unwrap();
        assert_eq!(&probe, &data[8..12]);
        assert_eq!(vol.reliability().corrected, 2);
    }

    #[test]
    fn multi_bit_rot_is_a_clean_corrupt_error() {
        let (vol, scope) = setup(4);
        let ps = vol.page_size();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0x42; ps]).unwrap();
        let seg = w.finish().unwrap();
        let phys = vol.phys_of(seg.pages[0]).unwrap();
        vol.nand().corrupt_page(phys, 3).unwrap();
        vol.nand().corrupt_page(phys, 77).unwrap();

        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut sink = vec![0u8; ps];
        let err = r.read_exact(&mut sink).unwrap_err();
        assert!(err.to_string().contains("uncorrectable"), "{err}");
        assert_eq!(vol.reliability().uncorrectable, 1);
    }

    #[test]
    fn program_failure_retires_block_and_write_succeeds() {
        let (vol, scope) = setup(16);
        let ps = vol.page_size();
        vol.nand().arm_program_failures(7, 0.15);
        let data: Vec<u8> = (0..ps * 12).map(|i| (i % 251) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        vol.nand().disarm_block_failures();

        let rel = vol.reliability();
        assert!(rel.retired_blocks > 0, "seed produced no program failure");
        // Every byte is intact despite the mid-write retirements.
        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; data.len()];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        // Retired blocks never return to the free list.
        let badlist = vol.bad_blocks_snapshot();
        let st = vol.state.lock().unwrap();
        for &b in &badlist {
            assert!(!st.free_blocks.contains(&BlockId(b)));
        }
    }

    #[test]
    fn spare_exhaustion_is_a_clean_wearout_error() {
        let cfg = FlashConfig {
            page_size: 64,
            pages_per_block: 4,
            num_blocks: 8,
            gc_low_watermark_blocks: 0,
            spare_blocks: 1,
            ..FlashConfig::default_2007()
        };
        let vol = Volume::new(Nand::new(cfg, SimClock::new()));
        let budget = RamBudget::new(64 * 1024);
        let scope = RamScope::new(&budget);
        vol.nand().arm_program_failures(3, 1.0); // every program fails
        let mut w = vol.writer(&scope).unwrap();
        let err = w.write(&vec![0u8; vol.page_size()]).unwrap_err();
        assert!(err.to_string().contains("flash part worn out"), "{err}");
    }

    #[test]
    fn scrub_rewrites_pages_past_threshold() {
        let (vol, scope) = setup(8);
        let ps = vol.page_size();
        let data: Vec<u8> = (0..ps).map(|i| (i * 11) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        let phys = vol.phys_of(seg.pages[0]).unwrap();
        // Two corrected reads (threshold = 2 in default_2007): the flip
        // stays in the stored page, so each fault re-corrects it.
        vol.nand().corrupt_page(phys, 5).unwrap();
        for _ in 0..2 {
            let mut r = vol.reader(&scope, &seg).unwrap();
            let mut sink = vec![0u8; ps];
            r.read_exact(&mut sink).unwrap();
        }
        assert_eq!(vol.reliability().corrected, 2);

        let report = vol.scrub(&scope).unwrap();
        assert_eq!(report.pages_rewritten, 1);
        assert_ne!(vol.phys_of(seg.pages[0]).unwrap(), phys, "page moved");
        assert_eq!(vol.reliability().scrubbed_pages, 1);
        // The rewritten copy reads back clean — no further corrections.
        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; ps];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        // Two workload corrections plus the scrub's own corrected read
        // of the rotted source; the fresh copy adds none.
        assert_eq!(vol.reliability().corrected, 3, "fresh copy is clean");
        // Nothing left to scrub.
        assert_eq!(vol.scrub(&scope).unwrap(), ScrubReport::default());
    }

    #[test]
    fn mount_honors_persisted_bad_block_table() {
        let (vol, scope) = setup(8);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0x66; vol.page_size()]).unwrap();
        let seg = w.finish().unwrap();
        let manifest = seg.manifest();
        let l2p = vol.l2p_snapshot();
        let vol2 = Volume::mount(vol.nand().clone(), 0, l2p, &[6, 7]).unwrap();
        assert_eq!(vol2.reliability().retired_blocks, 2);
        let st = vol2.state.lock().unwrap();
        assert!(!st.free_blocks.contains(&BlockId(6)));
        assert!(!st.free_blocks.contains(&BlockId(7)));
        drop(st);
        assert_eq!(vol2.bad_blocks_snapshot(), vec![6, 7]);
        // The mounted data is still readable.
        let seg2 = vol2.restore_manifest(&manifest).unwrap();
        let mut r = vol2.reader(&scope, &seg2).unwrap();
        let mut back = vec![0u8; vol2.page_size()];
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x66));
    }

    /// A volume with the page-cache mirror configured to `pages`,
    /// charged to its own 64 KiB budget.
    fn setup_cached(blocks: usize, pages: usize) -> (Volume, RamScope, RamBudget) {
        let (vol, scope) = setup(blocks);
        let budget = RamBudget::new(64 * 1024);
        vol.configure_page_cache(pages, &budget).unwrap();
        (vol, scope, budget)
    }

    #[test]
    fn cache_is_disabled_until_configured_and_charges_ram() {
        let (vol, scope) = setup(8);
        assert_eq!(vol.page_cache_stats().capacity_pages, 0);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&[7u8; 40]).unwrap();
        let seg = w.finish().unwrap();
        let mut buf = [0u8; 8];
        vol.read_at(&seg, 0, &mut buf).unwrap();
        let s = vol.page_cache_stats();
        assert_eq!((s.hits, s.misses, s.resident_pages), (0, 0, 0));

        let budget = RamBudget::new(64 * 1024);
        let raw = vol.nand().config().page_size;
        let charged = vol.configure_page_cache(8, &budget).unwrap();
        assert_eq!(charged, 8 * raw);
        assert_eq!(budget.used(), 8 * raw, "mirror bytes held on the budget");
        assert_eq!(vol.page_cache_stats().charged_bytes, 8 * raw);
        vol.configure_page_cache(0, &budget).unwrap();
        assert_eq!(budget.used(), 0, "disabling releases the charge");
        // A charge the budget cannot hold is a clean failure.
        let tiny = RamBudget::new(raw - 1);
        assert!(vol.configure_page_cache(1, &tiny).is_err());
    }

    #[test]
    fn cache_hits_skip_the_nand_and_the_clock() {
        let (vol, scope, _budget) = setup_cached(8, 4);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&(0..56u8).collect::<Vec<u8>>()).unwrap();
        let seg = w.finish().unwrap();

        let mut buf = [0u8; 8];
        vol.read_at(&seg, 4, &mut buf).unwrap(); // cold: pays the NAND transfer
        assert_eq!(&buf[..], &[4, 5, 6, 7, 8, 9, 10, 11]);
        let reads_before = vol.nand().stats().page_reads;
        let t0 = vol.nand().clock().now();
        vol.read_at(&seg, 4, &mut buf).unwrap(); // warm: served from the mirror
        assert_eq!(&buf[..], &[4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(
            vol.nand().stats().page_reads,
            reads_before,
            "a mirror hit must not touch the NAND"
        );
        assert_eq!(
            vol.nand().clock().now().since(t0),
            0,
            "a mirror hit costs no simulated device time"
        );
        let s = vol.page_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn clock_eviction_caps_residency() {
        let (vol, scope, _budget) = setup_cached(8, 2);
        let ps = vol.page_size();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0xAB; 3 * ps]).unwrap();
        let seg = w.finish().unwrap();
        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; 3 * ps];
        r.read_exact(&mut back).unwrap(); // faults pages 0, 1, 2
        let s = vol.page_cache_stats();
        assert_eq!(s.resident_pages, 2, "capacity bounds residency");
        assert_eq!(s.evictions, 1, "third fill displaced one page");
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn erase_invalidates_the_mirror() {
        let (vol, scope, _budget) = setup_cached(8, 4);
        let ps = vol.page_size();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0x11; 4 * ps]).unwrap(); // fills one erase block
        let seg = w.finish().unwrap();
        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; 4 * ps];
        r.read_exact(&mut back).unwrap();
        assert_eq!(vol.page_cache_stats().resident_pages, 4);

        vol.free(seg).unwrap(); // fully dead block: erased and recycled
        assert_eq!(
            vol.page_cache_stats().resident_pages,
            0,
            "an erase must drop every mirrored page of the block"
        );
        // Reuse of the same physical pages serves the new bytes.
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0x22; 4 * ps]).unwrap();
        let seg2 = w.finish().unwrap();
        let mut r = vol.reader(&scope, &seg2).unwrap();
        r.read_exact(&mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0x22));
    }

    #[test]
    fn gc_migration_keeps_a_warm_mirror_coherent() {
        let (vol, scope, _budget) = setup_cached(8, 4);
        let ps = vol.page_size();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0x33; 2 * ps]).unwrap();
        let doomed = w.finish().unwrap();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&vec![0x44; 2 * ps]).unwrap();
        let live = w.finish().unwrap(); // same block as `doomed`: 4/4 allocated

        // Warm the mirror with the survivor's pages at their old address.
        let mut back = vec![0u8; 2 * ps];
        let mut r = vol.reader(&scope, &live).unwrap();
        r.read_exact(&mut back).unwrap();

        vol.free(doomed).unwrap();
        let gc = vol.gc(&scope).unwrap();
        assert_eq!(gc.pages_migrated, 2, "survivors moved to the cold frontier");
        assert_eq!(
            vol.page_cache_stats().resident_pages,
            0,
            "the victim erase dropped the stale entries"
        );
        let mut r = vol.reader(&scope, &live).unwrap();
        r.read_exact(&mut back).unwrap();
        assert!(
            back.iter().all(|&b| b == 0x44),
            "post-migration reads agree"
        );
    }

    #[test]
    fn corrected_pages_are_never_mirrored() {
        let (vol, scope, _budget) = setup_cached(8, 4);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&[0x0F; 40]).unwrap();
        let seg = w.finish().unwrap();
        let phys = vol.l2p_snapshot()[seg.manifest().lpns[0] as usize];
        vol.nand().corrupt_page(PageAddr(phys), 13).unwrap();

        let mut buf = [0u8; 8];
        vol.read_at(&seg, 0, &mut buf).unwrap();
        vol.read_at(&seg, 0, &mut buf).unwrap();
        assert_eq!(buf, [0x0F; 8], "both reads repaired the flipped bit");
        assert_eq!(
            vol.reliability().corrected,
            2,
            "a rotted page re-corrects on every fault — it is never served \
             from the mirror, so the scrub trigger still advances"
        );
        let s = vol.page_cache_stats();
        assert_eq!((s.hits, s.resident_pages), (0, 0));
        // The scrub pass can therefore still find and rewrite it.
        let report = vol.scrub(&scope).unwrap();
        assert_eq!(report.pages_rewritten, 1);
    }
}
