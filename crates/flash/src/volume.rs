//! Log-structured segment store over raw NAND.
//!
//! Because NAND precludes in-place writes, everything the device persists
//! — hidden columns, Subtree Key Tables, climbing-index postings, sort
//! runs — is written as an append-only **segment**: a sequence of pages
//! programmed exactly once. Freeing a segment marks its pages dead; a
//! block whose pages are all dead is erased and recycled (with natural
//! round-robin wear rotation).
//!
//! Writers and readers buffer exactly **one flash page** in device RAM,
//! charged against the query's [`RamScope`] — the tiny-RAM discipline
//! applies even to I/O buffers.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_types::{GhostError, Result};

use crate::nand::{BlockId, Nand, PageAddr};

/// An immutable sequence of bytes stored on flash.
///
/// Cloning is cheap (the page list is shared); segments are freed
/// explicitly through [`Volume::free`].
#[derive(Debug, Clone)]
pub struct Segment {
    pages: Arc<Vec<PageAddr>>,
    len_bytes: u64,
}

impl Segment {
    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len_bytes
    }

    /// True if the segment holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    /// Number of flash pages backing the segment.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[derive(Debug)]
struct AllocState {
    free_blocks: VecDeque<BlockId>,
    /// Block currently being filled, and the next in-block page index.
    current: Option<(BlockId, usize)>,
    /// Per-block count of live (allocated and not freed) pages.
    live: Vec<u32>,
    /// Per-block count of pages handed out since the last erase.
    allocated: Vec<u32>,
}

/// Snapshot of space usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeUsage {
    /// Total erase blocks.
    pub total_blocks: usize,
    /// Blocks on the free list.
    pub free_blocks: usize,
    /// Live (reachable) pages.
    pub live_pages: u64,
}

/// The device's segment store. Cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct Volume {
    nand: Nand,
    state: Arc<Mutex<AllocState>>,
}

impl Volume {
    /// Take ownership of a blank NAND part.
    pub fn new(nand: Nand) -> Self {
        let blocks = nand.block_count();
        Volume {
            state: Arc::new(Mutex::new(AllocState {
                free_blocks: (0..blocks as u32).map(BlockId).collect(),
                current: None,
                live: vec![0; blocks],
                allocated: vec![0; blocks],
            })),
            nand,
        }
    }

    /// The underlying NAND part (for stats and config).
    pub fn nand(&self) -> &Nand {
        &self.nand
    }

    /// Page size of the underlying part.
    pub fn page_size(&self) -> usize {
        self.nand.config().page_size
    }

    fn alloc_page(&self) -> Result<PageAddr> {
        let mut st = self.state.lock().expect("volume poisoned");
        let ppb = self.nand.config().pages_per_block;
        let (block, next) = match st.current {
            Some((b, n)) if n < ppb => (b, n),
            _ => {
                let b = st.free_blocks.pop_front().ok_or_else(|| {
                    GhostError::flash("flash volume full: no free blocks")
                })?;
                (b, 0)
            }
        };
        st.current = Some((block, next + 1));
        st.allocated[block.index()] += 1;
        st.live[block.index()] += 1;
        Ok(PageAddr(
            block.0 * ppb as u32 + next as u32,
        ))
    }

    fn free_page(&self, page: PageAddr) -> Result<()> {
        let block = self.nand.block_of(page);
        let should_erase = {
            let mut st = self.state.lock().expect("volume poisoned");
            let live = &mut st.live[block.index()];
            if *live == 0 {
                return Err(GhostError::flash(format!(
                    "double free of page {page:?}"
                )));
            }
            *live -= 1;
            let ppb = self.nand.config().pages_per_block;
            let fully_allocated = st.allocated[block.index()] as usize == ppb;
            // A full "current" block will never be written again, so it is
            // safe to recycle; only a block still accepting allocations is
            // pinned.
            let is_current = matches!(st.current, Some((b, n)) if b == block && n < ppb);
            if st.live[block.index()] == 0 && fully_allocated && !is_current {
                st.allocated[block.index()] = 0;
                st.free_blocks.push_back(block);
                true
            } else {
                false
            }
        };
        if should_erase {
            self.nand.erase(block)?;
        }
        Ok(())
    }

    /// Release a segment's pages, erasing and recycling fully dead blocks.
    pub fn free(&self, segment: Segment) -> Result<()> {
        for &p in segment.pages.iter() {
            self.free_page(p)?;
        }
        Ok(())
    }

    /// Begin writing a new segment; the one-page write buffer is charged
    /// to `scope`.
    pub fn writer(&self, scope: &RamScope) -> Result<SegmentWriter> {
        let guard = scope.alloc(self.page_size())?;
        Ok(SegmentWriter {
            volume: self.clone(),
            buf: Vec::with_capacity(self.page_size()),
            pages: Vec::new(),
            written: 0,
            _ram: guard,
        })
    }

    /// Open a segment for buffered sequential reading; the one-page read
    /// buffer is charged to `scope`.
    pub fn reader(&self, scope: &RamScope, segment: &Segment) -> Result<SegmentReader> {
        let guard = scope.alloc(self.page_size())?;
        Ok(SegmentReader {
            volume: self.clone(),
            segment: segment.clone(),
            pos: 0,
            buf: vec![0; self.page_size()],
            buf_page: usize::MAX,
            _ram: guard,
        })
    }

    /// Random read of `buf.len()` bytes at byte `offset` into a segment.
    ///
    /// Costs one partial page read per page touched. The caller provides
    /// (and has paid for) the destination buffer.
    pub fn read_at(&self, segment: &Segment, offset: u64, buf: &mut [u8]) -> Result<()> {
        if offset + buf.len() as u64 > segment.len_bytes {
            return Err(GhostError::flash(format!(
                "read_at beyond segment end: offset {offset} + {} > {}",
                buf.len(),
                segment.len_bytes
            )));
        }
        let ps = self.page_size() as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_idx = (pos / ps) as usize;
            let in_page = (pos % ps) as usize;
            let chunk = ((ps as usize) - in_page).min(buf.len() - done);
            self.nand.read_into(
                segment.pages[page_idx],
                in_page,
                &mut buf[done..done + chunk],
            )?;
            done += chunk;
        }
        Ok(())
    }

    /// Current space usage.
    pub fn usage(&self) -> VolumeUsage {
        let st = self.state.lock().expect("volume poisoned");
        VolumeUsage {
            total_blocks: self.nand.block_count(),
            free_blocks: st.free_blocks.len(),
            live_pages: st.live.iter().map(|&v| v as u64).sum(),
        }
    }
}

/// Append-only writer producing a [`Segment`].
#[derive(Debug)]
pub struct SegmentWriter {
    volume: Volume,
    buf: Vec<u8>,
    pages: Vec<PageAddr>,
    written: u64,
    _ram: ScopedGuard,
}

impl SegmentWriter {
    /// Append bytes to the segment.
    pub fn write(&mut self, mut bytes: &[u8]) -> Result<()> {
        let ps = self.volume.page_size();
        while !bytes.is_empty() {
            let room = ps - self.buf.len();
            let take = room.min(bytes.len());
            self.buf.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            self.written += take as u64;
            if self.buf.len() == ps {
                self.flush_page()?;
            }
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<()> {
        let page = self.volume.alloc_page()?;
        self.volume.nand.program(page, &self.buf)?;
        self.pages.push(page);
        self.buf.clear();
        Ok(())
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush the final partial page and return the finished segment.
    pub fn finish(mut self) -> Result<Segment> {
        if !self.buf.is_empty() {
            self.flush_page()?;
        }
        Ok(Segment {
            pages: Arc::new(std::mem::take(&mut self.pages)),
            len_bytes: self.written,
        })
    }
}

impl Drop for SegmentWriter {
    fn drop(&mut self) {
        // Abandoned writer: return any allocated pages to the volume.
        for &p in &self.pages {
            let _ = self.volume.free_page(p);
        }
    }
}

/// Buffered sequential reader over a [`Segment`].
#[derive(Debug)]
pub struct SegmentReader {
    volume: Volume,
    segment: Segment,
    pos: u64,
    buf: Vec<u8>,
    /// Index (within the segment) of the page currently buffered.
    buf_page: usize,
    _ram: ScopedGuard,
}

impl SegmentReader {
    /// Current byte position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Total segment length in bytes.
    pub fn len(&self) -> u64 {
        self.segment.len_bytes
    }

    /// True if the underlying segment holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.segment.len_bytes == 0
    }

    /// True if the cursor is at the end.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.segment.len_bytes
    }

    /// Reposition the cursor.
    pub fn seek(&mut self, pos: u64) -> Result<()> {
        if pos > self.segment.len_bytes {
            return Err(GhostError::flash("seek beyond segment end"));
        }
        self.pos = pos;
        Ok(())
    }

    /// Read up to `buf.len()` bytes; returns 0 at end of segment.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let remaining = (self.segment.len_bytes - self.pos) as usize;
        let want = buf.len().min(remaining);
        let ps = self.volume.page_size();
        let mut done = 0;
        while done < want {
            let page_idx = (self.pos / ps as u64) as usize;
            if page_idx != self.buf_page {
                // Fault in the page (full-page read: sequential scans
                // consume whole pages).
                self.volume
                    .nand
                    .read_into(self.segment.pages[page_idx], 0, &mut self.buf)?;
                self.buf_page = page_idx;
            }
            let in_page = (self.pos % ps as u64) as usize;
            let chunk = (ps - in_page).min(want - done);
            buf[done..done + chunk].copy_from_slice(&self.buf[in_page..in_page + chunk]);
            done += chunk;
            self.pos += chunk as u64;
        }
        Ok(done)
    }

    /// Read exactly `buf.len()` bytes or fail.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let n = self.read(buf)?;
        if n != buf.len() {
            return Err(GhostError::flash(format!(
                "unexpected end of segment: wanted {}, got {n}",
                buf.len()
            )));
        }
        Ok(())
    }

    /// Bulk-read `count` packed little-endian `u32` row ids into
    /// `block`: one chunked read per staging buffer instead of one
    /// 4-byte read per id. Shared by the posting-list and flash-temp
    /// block streams.
    pub fn read_ids_into(
        &mut self,
        count: usize,
        block: &mut ghostdb_types::IdBlock,
    ) -> Result<()> {
        let mut raw = [0u8; 256];
        let mut left = count;
        while left > 0 {
            let chunk = left.min(raw.len() / 4);
            self.read_exact(&mut raw[..chunk * 4])?;
            for c in raw[..chunk * 4].chunks_exact(4) {
                block.push(ghostdb_types::RowId(u32::from_le_bytes(
                    c.try_into().expect("4B"),
                )));
            }
            left -= chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{FlashConfig, SimClock};

    fn setup(blocks: usize) -> (Volume, RamScope) {
        let cfg = FlashConfig {
            page_size: 64,
            pages_per_block: 4,
            num_blocks: blocks,
            ..FlashConfig::default_2007()
        };
        let vol = Volume::new(Nand::new(cfg, SimClock::new()));
        let budget = RamBudget::new(64 * 1024);
        let scope = RamScope::new(&budget);
        (vol, scope)
    }

    #[test]
    fn write_read_roundtrip_multi_page() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(seg.len(), 1000);
        assert_eq!(seg.page_count(), 16); // ceil(1000/64)

        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; 1000];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(r.read(&mut [0u8; 10]).unwrap(), 0, "EOF returns 0");
    }

    #[test]
    fn chunked_writes_equal_bulk_write() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..500).map(|i| (i * 7 % 256) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        for chunk in data.chunks(13) {
            w.write(chunk).unwrap();
        }
        let seg = w.finish().unwrap();
        let mut r = vol.reader(&scope, &seg).unwrap();
        let mut back = vec![0u8; 500];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn random_read_at() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..640).map(|i| (i % 256) as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();

        let mut buf = [0u8; 10];
        vol.read_at(&seg, 60, &mut buf).unwrap(); // spans a page boundary
        assert_eq!(&buf[..], &data[60..70]);
        assert!(vol.read_at(&seg, 635, &mut buf).is_err());
    }

    #[test]
    fn seek_and_reread() {
        let (vol, scope) = setup(8);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();

        let mut r = vol.reader(&scope, &seg).unwrap();
        r.seek(100).unwrap();
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [100, 101, 102, 103]);
        r.seek(0).unwrap();
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3]);
    }

    #[test]
    fn free_recycles_blocks() {
        let (vol, scope) = setup(4); // 16 pages total
        let mut segs = Vec::new();
        for _ in 0..4 {
            let mut w = vol.writer(&scope).unwrap();
            w.write(&[0xAB; 64 * 4]).unwrap(); // exactly one block
            segs.push(w.finish().unwrap());
        }
        // Volume is now full.
        let mut w = vol.writer(&scope).unwrap();
        assert!(w.write(&[0u8; 64]).is_err());
        drop(w);
        // Free two segments; their blocks are erased and reusable.
        vol.free(segs.pop().unwrap()).unwrap();
        vol.free(segs.pop().unwrap()).unwrap();
        let mut w = vol.writer(&scope).unwrap();
        w.write(&[0xCD; 64 * 6]).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(seg.page_count(), 6);
        assert!(vol.nand().stats().block_erases >= 2);
    }

    #[test]
    fn abandoned_writer_releases_pages() {
        let (vol, scope) = setup(2); // 8 pages
        {
            let mut w = vol.writer(&scope).unwrap();
            w.write(&[1u8; 64 * 8]).unwrap(); // all pages
            // dropped without finish()
        }
        // A block becomes erasable once its pages are returned.
        let mut w = vol.writer(&scope).unwrap();
        w.write(&[2u8; 64 * 4]).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn reader_buffers_are_charged_to_scope() {
        let (vol, _) = setup(4);
        let tiny = RamBudget::new(32); // smaller than one 64-byte page
        let scope = RamScope::new(&tiny);
        assert!(vol.writer(&scope).is_err());
    }

    #[test]
    fn usage_reports_live_pages() {
        let (vol, scope) = setup(4);
        let mut w = vol.writer(&scope).unwrap();
        w.write(&[0u8; 64 * 3]).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(vol.usage().live_pages, 3);
        vol.free(seg).unwrap();
        assert_eq!(vol.usage().live_pages, 0);
    }

    #[test]
    fn empty_segment() {
        let (vol, scope) = setup(4);
        let w = vol.writer(&scope).unwrap();
        let seg = w.finish().unwrap();
        assert!(seg.is_empty());
        assert_eq!(seg.page_count(), 0);
        let mut r = vol.reader(&scope, &seg).unwrap();
        assert_eq!(r.read(&mut [0u8; 8]).unwrap(), 0);
    }
}
