//! Raw NAND array: pages, blocks, erase-before-program discipline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ghostdb_types::{FlashConfig, GhostError, Result, SimClock};

/// Global page index within the flash part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr(pub u32);

impl PageAddr {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Erase-block index within the flash part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Lifecycle state of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased and ready to be programmed.
    Erased,
    /// Programmed with live data.
    Programmed,
}

/// Operation counters; all monotonically increasing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Number of page-read commands issued.
    pub page_reads: u64,
    /// Bytes actually transferred out of page registers.
    pub bytes_read: u64,
    /// Number of page-program commands issued.
    pub page_programs: u64,
    /// Bytes programmed.
    pub bytes_programmed: u64,
    /// Number of block erases.
    pub block_erases: u64,
}

impl FlashStats {
    /// Pointwise difference against an earlier snapshot. Saturating, so
    /// a swapped or stale snapshot pair reports zeros instead of
    /// panicking on u64 underflow.
    pub fn since(&self, earlier: &FlashStats) -> FlashStats {
        FlashStats {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            page_programs: self.page_programs.saturating_sub(earlier.page_programs),
            bytes_programmed: self
                .bytes_programmed
                .saturating_sub(earlier.bytes_programmed),
            block_erases: self.block_erases.saturating_sub(earlier.block_erases),
        }
    }
}

#[derive(Debug, Default)]
struct AtomicStats {
    page_reads: AtomicU64,
    bytes_read: AtomicU64,
    page_programs: AtomicU64,
    bytes_programmed: AtomicU64,
    block_erases: AtomicU64,
}

struct NandState {
    /// Flat byte array: block-major, page-major.
    data: Vec<u8>,
    /// Per-page state.
    pages: Vec<PageState>,
    /// Per-block erase count (wear).
    wear: Vec<u32>,
    /// Armed power-cut fault (crash-injection harness).
    power_cut: Option<PowerCut>,
    /// Armed retention/read-disturb bit-rot fault.
    bit_rot: Option<BitRot>,
    /// Armed per-program grown-bad-block fault.
    program_fail: Option<FaultArm>,
    /// Armed per-erase grown-bad-block fault.
    erase_fail: Option<FaultArm>,
    /// Per-block grown-bad flags. Persistent: once a block trips a
    /// program/erase failure it stays bad across disarms (a physical
    /// defect, not an armed hook). Reads keep working.
    grown_bad: Vec<bool>,
    /// Per-block read counters driving the read-disturb model; reset
    /// when bit rot is armed.
    block_reads: Vec<u32>,
    /// Per-page count of rot flips injected since the page was last
    /// programmed/erased. The injector bounds itself at one flip per
    /// page per program cycle — the SECDED correction budget — so an
    /// armed fault is always recoverable; tests exceed the budget
    /// explicitly with [`Nand::corrupt_page`].
    rot_flips: Vec<u8>,
    /// Total rot flips injected (observability for fault tests).
    flips_injected: u64,
}

/// Deterministic splitmix64 step — the seedable fault model's PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a PRNG draw onto [0, 1).
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Armed retention + read-disturb fault: each read of a programmed page
/// flips one stored bit with probability `flip_prob`, and every
/// `disturb_every`-th read of a block flips one stored bit in a random
/// programmed page of that block.
#[derive(Debug, Clone, Copy)]
struct BitRot {
    rng: u64,
    flip_prob: f64,
    disturb_every: u32,
}

/// Armed grown-bad-block fault: each program (or erase) trips with
/// probability `prob`, permanently marking the block bad.
#[derive(Debug, Clone, Copy)]
struct FaultArm {
    rng: u64,
    prob: f64,
}

/// Fault-injection state: "the user yanks the key" after a set number of
/// state-changing operations (programs + erases).
#[derive(Debug, Clone, Copy)]
struct PowerCut {
    /// Programs/erases still allowed before the cut.
    remaining_ops: u64,
    /// When the cut lands on a program, commit only the first half of
    /// the page (a torn write) instead of failing cleanly before any
    /// byte is committed; when it lands on an erase, leave the block
    /// half-erased. Models the worst-case interrupted operation.
    torn: bool,
    /// The cut has happened; every further program/erase fails.
    tripped: bool,
}

/// Message carried by every error after the simulated power cut; crash
/// tests (and callers deciding whether a failure is injected or real)
/// match on it.
pub const POWER_CUT_MSG: &str = "simulated power cut";

/// Message carried by a program that tripped the armed grown-bad fault.
pub const PROGRAM_FAIL_MSG: &str = "simulated program failure: block grown bad";

/// Message carried by an erase that tripped the armed grown-bad fault.
pub const ERASE_FAIL_MSG: &str = "simulated erase failure: block grown bad";

/// The simulated NAND part. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Nand {
    cfg: FlashConfig,
    clock: SimClock,
    state: Arc<Mutex<NandState>>,
    stats: Arc<AtomicStats>,
}

impl std::fmt::Debug for Nand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nand")
            .field("pages", &self.page_count())
            .field("page_size", &self.cfg.page_size)
            .finish()
    }
}

impl Nand {
    /// Create a blank (fully erased) part with the given geometry, wired
    /// to `clock` for cost accounting.
    pub fn new(cfg: FlashConfig, clock: SimClock) -> Self {
        let pages = cfg.num_blocks * cfg.pages_per_block;
        Nand {
            state: Arc::new(Mutex::new(NandState {
                data: vec![0xFF; pages * cfg.page_size],
                pages: vec![PageState::Erased; pages],
                wear: vec![0; cfg.num_blocks],
                power_cut: None,
                bit_rot: None,
                program_fail: None,
                erase_fail: None,
                grown_bad: vec![false; cfg.num_blocks],
                block_reads: vec![0; cfg.num_blocks],
                rot_flips: vec![0; pages],
                flips_injected: 0,
            })),
            stats: Arc::new(AtomicStats::default()),
            cfg,
            clock,
        }
    }

    /// The geometry/timing configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// The clock this part advances.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Total pages in the part.
    pub fn page_count(&self) -> usize {
        self.cfg.num_blocks * self.cfg.pages_per_block
    }

    /// Total erase blocks in the part.
    pub fn block_count(&self) -> usize {
        self.cfg.num_blocks
    }

    /// Block containing `page`.
    pub fn block_of(&self, page: PageAddr) -> BlockId {
        BlockId(page.0 / self.cfg.pages_per_block as u32)
    }

    fn check_page(&self, page: PageAddr) -> Result<()> {
        if page.index() >= self.page_count() {
            return Err(GhostError::flash(format!(
                "page {page:?} out of range (part has {} pages)",
                self.page_count()
            )));
        }
        Ok(())
    }

    /// Read `buf.len()` bytes starting at `offset` within `page`.
    ///
    /// Charges the partial-read cost (latency + per-byte), so reading a
    /// single word is much cheaper than a full page — the asymmetry the
    /// paper calls out.
    pub fn read_into(&self, page: PageAddr, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.check_page(page)?;
        if offset + buf.len() > self.cfg.page_size {
            return Err(GhostError::flash(format!(
                "read beyond page: offset {offset} + len {} > page size {}",
                buf.len(),
                self.cfg.page_size
            )));
        }
        let mut state = self.state.lock().expect("nand poisoned");
        if state.bit_rot.is_some() {
            self.inject_rot(&mut state, page);
        }
        let base = page.index() * self.cfg.page_size + offset;
        buf.copy_from_slice(&state.data[base..base + buf.len()]);
        drop(state);
        self.stats.page_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.clock.advance(self.cfg.read_cost_ns(buf.len()));
        Ok(())
    }

    /// Arm the power-cut hook: the next `after_ops` state-changing
    /// operations (programs and erases) succeed, the one after that is
    /// the cut — failing cleanly, or (with `torn`) committing only half
    /// of the interrupted page/block first — and every subsequent
    /// program/erase fails with [`POWER_CUT_MSG`]. Reads keep working so
    /// post-mortem inspection is possible; call
    /// [`disarm_power_cut`](Self::disarm_power_cut) to "plug the key
    /// back in" before mounting.
    pub fn arm_power_cut(&self, after_ops: u64, torn: bool) {
        self.state.lock().expect("nand poisoned").power_cut = Some(PowerCut {
            remaining_ops: after_ops,
            torn,
            tripped: false,
        });
    }

    /// Restore power: clears the armed/tripped fault.
    pub fn disarm_power_cut(&self) {
        self.state.lock().expect("nand poisoned").power_cut = None;
    }

    /// True once the armed cut has fired (the crash harness uses this to
    /// tell an injected failure from a workload that ran to completion).
    pub fn power_cut_tripped(&self) -> bool {
        self.state
            .lock()
            .expect("nand poisoned")
            .power_cut
            .map(|pc| pc.tripped)
            .unwrap_or(false)
    }

    /// Arm the bit-rot fault: every read of a programmed page flips one
    /// stored bit of that page with probability `flip_prob`, and every
    /// `disturb_every`-th read of a block flips one stored bit in a
    /// random programmed page of the block (read disturb; `0` disables
    /// the disturb component). Flips are **persistent** — they corrupt
    /// the stored array, not the returned copy — and deterministic for
    /// a given seed and operation sequence. The injector never puts a
    /// second flip into a page that still carries an unrepaired one, so
    /// armed rot always stays within the volume's single-bit correction
    /// budget; use [`corrupt_page`](Self::corrupt_page) to exceed it.
    pub fn arm_bit_rot(&self, seed: u64, flip_prob: f64, disturb_every: u32) {
        let mut state = self.state.lock().expect("nand poisoned");
        state.block_reads.fill(0);
        state.bit_rot = Some(BitRot {
            rng: seed ^ 0xB17_F11B5,
            flip_prob,
            disturb_every,
        });
    }

    /// Disarm the bit-rot fault. Flips already injected stay in the
    /// array (they are physical), but no new ones land.
    pub fn disarm_bit_rot(&self) {
        self.state.lock().expect("nand poisoned").bit_rot = None;
    }

    /// Rot flips injected so far (fault-test observability).
    pub fn flips_injected(&self) -> u64 {
        self.state.lock().expect("nand poisoned").flips_injected
    }

    /// Arm the program-failure fault: each page program trips with
    /// probability `prob`, committing garbage (half the page), marking
    /// the page programmed, permanently marking the block **grown bad**
    /// — all later programs/erases of it fail; reads keep working —
    /// and failing with [`PROGRAM_FAIL_MSG`].
    pub fn arm_program_failures(&self, seed: u64, prob: f64) {
        self.state.lock().expect("nand poisoned").program_fail = Some(FaultArm {
            rng: seed ^ 0x9806_FA11,
            prob,
        });
    }

    /// Arm the erase-failure fault: each block erase trips with
    /// probability `prob`, leaving the block's pages dirty, counting
    /// the wear (the erase pulse started), permanently marking the
    /// block grown bad, and failing with [`ERASE_FAIL_MSG`].
    pub fn arm_erase_failures(&self, seed: u64, prob: f64) {
        self.state.lock().expect("nand poisoned").erase_fail = Some(FaultArm {
            rng: seed ^ 0xE6A5_EFA1,
            prob,
        });
    }

    /// Disarm the program/erase failure hooks. Blocks already grown bad
    /// stay bad — the defect is physical, not simulated.
    pub fn disarm_block_failures(&self) {
        let mut state = self.state.lock().expect("nand poisoned");
        state.program_fail = None;
        state.erase_fail = None;
    }

    /// True once `block` has grown bad (failed a program or erase).
    pub fn is_grown_bad(&self, block: BlockId) -> bool {
        let state = self.state.lock().expect("nand poisoned");
        state.grown_bad.get(block.index()).copied().unwrap_or(false)
    }

    /// Every grown-bad block id, ascending.
    pub fn grown_bad_blocks(&self) -> Vec<u32> {
        let state = self.state.lock().expect("nand poisoned");
        state
            .grown_bad
            .iter()
            .enumerate()
            .filter_map(|(b, &bad)| bad.then_some(b as u32))
            .collect()
    }

    /// Deterministically flip one stored bit of `page` (bit index
    /// within the page). Unlike the armed fault, this injection is not
    /// bounded by the correction budget — it is how tests rot a page
    /// past repair.
    pub fn corrupt_page(&self, page: PageAddr, bit: u32) -> Result<()> {
        self.check_page(page)?;
        if bit as usize >= self.cfg.page_size * 8 {
            return Err(GhostError::flash("corrupt_page: bit out of range"));
        }
        let mut state = self.state.lock().expect("nand poisoned");
        let base = page.index() * self.cfg.page_size;
        state.data[base + (bit as usize >> 3)] ^= 1 << (bit & 7);
        Ok(())
    }

    /// Apply the armed bit-rot model to one read of `page`.
    fn inject_rot(&self, state: &mut NandState, page: PageAddr) {
        let ppb = self.cfg.pages_per_block;
        let block = page.index() / ppb;
        let Some(mut rot) = state.bit_rot else { return };
        // Retention component: the page being read, with probability.
        if rot.flip_prob > 0.0
            && state.pages[page.index()] == PageState::Programmed
            && unit_f64(splitmix64(&mut rot.rng)) < rot.flip_prob
        {
            let bit = splitmix64(&mut rot.rng) % (self.cfg.page_size as u64 * 8);
            Self::flip_within_budget(state, &self.cfg, page.index(), bit as usize);
        }
        // Read-disturb component: a random programmed neighbor in the
        // block, every `disturb_every` reads.
        state.block_reads[block] += 1;
        if rot.disturb_every > 0 && state.block_reads[block].is_multiple_of(rot.disturb_every) {
            let first = block * ppb;
            let candidates: Vec<usize> = (first..first + ppb)
                .filter(|&p| state.pages[p] == PageState::Programmed && state.rot_flips[p] == 0)
                .collect();
            if !candidates.is_empty() {
                let victim =
                    candidates[(splitmix64(&mut rot.rng) % candidates.len() as u64) as usize];
                let bit = splitmix64(&mut rot.rng) % (self.cfg.page_size as u64 * 8);
                Self::flip_within_budget(state, &self.cfg, victim, bit as usize);
            }
        }
        state.bit_rot = Some(rot);
    }

    /// Flip `bit` of page `idx` unless the page already carries an
    /// unrepaired flip (the one-flip-per-program-cycle budget).
    fn flip_within_budget(state: &mut NandState, cfg: &FlashConfig, idx: usize, bit: usize) {
        if state.rot_flips[idx] >= 1 {
            return;
        }
        let base = idx * cfg.page_size;
        state.data[base + (bit >> 3)] ^= 1 << (bit & 7);
        state.rot_flips[idx] += 1;
        state.flips_injected += 1;
    }

    /// Consume one op against the armed fault. `Ok(true)` = proceed,
    /// `Ok(false)` = this op is the cut and should tear, `Err` = fail
    /// cleanly (cut without tearing, or already dead).
    fn power_gate(state: &mut NandState) -> Result<bool> {
        let Some(pc) = &mut state.power_cut else {
            return Ok(true);
        };
        if pc.tripped {
            return Err(GhostError::flash(POWER_CUT_MSG));
        }
        if pc.remaining_ops == 0 {
            pc.tripped = true;
            if pc.torn {
                return Ok(false);
            }
            return Err(GhostError::flash(POWER_CUT_MSG));
        }
        pc.remaining_ops -= 1;
        Ok(true)
    }

    /// Program a full page. The page must be erased; programming a
    /// programmed page is a protocol violation (writes in place are
    /// precluded on NAND).
    pub fn program(&self, page: PageAddr, data: &[u8]) -> Result<()> {
        self.check_page(page)?;
        if data.len() > self.cfg.page_size {
            return Err(GhostError::flash(format!(
                "program of {} bytes exceeds page size {}",
                data.len(),
                self.cfg.page_size
            )));
        }
        let mut state = self.state.lock().expect("nand poisoned");
        if state.pages[page.index()] != PageState::Erased {
            return Err(GhostError::flash(format!(
                "program of non-erased page {page:?} (no in-place writes)"
            )));
        }
        let block = page.index() / self.cfg.pages_per_block;
        if state.grown_bad[block] {
            return Err(GhostError::flash(format!(
                "program failed: block {block} is grown bad"
            )));
        }
        if !Self::power_gate(&mut state)? {
            // Torn write: half the page commits, then the lights go out.
            let half = data.len() / 2;
            let base = page.index() * self.cfg.page_size;
            state.data[base..base + half].copy_from_slice(&data[..half]);
            state.pages[page.index()] = PageState::Programmed;
            return Err(GhostError::flash(POWER_CUT_MSG));
        }
        if let Some(mut arm) = state.program_fail {
            let trip = arm.prob > 0.0 && unit_f64(splitmix64(&mut arm.rng)) < arm.prob;
            state.program_fail = Some(arm);
            if trip {
                // The program pulse dies partway: half the page commits,
                // the page counts as programmed (it cannot be reused
                // without an erase), and the block is grown bad for good.
                let half = data.len() / 2;
                let base = page.index() * self.cfg.page_size;
                state.data[base..base + half].copy_from_slice(&data[..half]);
                state.pages[page.index()] = PageState::Programmed;
                state.grown_bad[block] = true;
                return Err(GhostError::flash(PROGRAM_FAIL_MSG));
            }
        }
        let base = page.index() * self.cfg.page_size;
        state.data[base..base + data.len()].copy_from_slice(data);
        // Remaining bytes keep their erased 0xFF pattern.
        state.pages[page.index()] = PageState::Programmed;
        state.rot_flips[page.index()] = 0;
        drop(state);
        self.stats.page_programs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_programmed
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.clock.advance(self.cfg.program_cost_ns(data.len()));
        Ok(())
    }

    /// Erase a whole block, resetting its pages to `0xFF`/erased and
    /// incrementing its wear counter.
    pub fn erase(&self, block: BlockId) -> Result<()> {
        if block.index() >= self.cfg.num_blocks {
            return Err(GhostError::flash(format!(
                "block {block:?} out of range ({} blocks)",
                self.cfg.num_blocks
            )));
        }
        let mut state = self.state.lock().expect("nand poisoned");
        let first = block.index() * self.cfg.pages_per_block;
        if state.grown_bad[block.index()] {
            return Err(GhostError::flash(format!(
                "erase failed: block {} is grown bad",
                block.0
            )));
        }
        if !Self::power_gate(&mut state)? {
            // Torn erase: half the block's pages reset, then power dies.
            let half = self.cfg.pages_per_block / 2;
            for p in first..first + half {
                state.pages[p] = PageState::Erased;
                state.rot_flips[p] = 0;
            }
            let base = first * self.cfg.page_size;
            state.data[base..base + half * self.cfg.page_size].fill(0xFF);
            state.wear[block.index()] += 1;
            return Err(GhostError::flash(POWER_CUT_MSG));
        }
        if let Some(mut arm) = state.erase_fail {
            let trip = arm.prob > 0.0 && unit_f64(splitmix64(&mut arm.rng)) < arm.prob;
            state.erase_fail = Some(arm);
            if trip {
                // The erase pulse fails: pages keep their stale data,
                // the wear counts (the pulse started), and the block is
                // grown bad for good.
                state.wear[block.index()] += 1;
                state.grown_bad[block.index()] = true;
                return Err(GhostError::flash(ERASE_FAIL_MSG));
            }
        }
        for p in first..first + self.cfg.pages_per_block {
            state.pages[p] = PageState::Erased;
            state.rot_flips[p] = 0;
        }
        let base = first * self.cfg.page_size;
        let len = self.cfg.pages_per_block * self.cfg.page_size;
        state.data[base..base + len].fill(0xFF);
        state.wear[block.index()] += 1;
        drop(state);
        self.stats.block_erases.fetch_add(1, Ordering::Relaxed);
        self.clock.advance(self.cfg.erase_block_ns);
        Ok(())
    }

    /// State of one page.
    pub fn page_state(&self, page: PageAddr) -> Result<PageState> {
        self.check_page(page)?;
        Ok(self.state.lock().expect("nand poisoned").pages[page.index()])
    }

    /// Erase count of one block.
    pub fn wear(&self, block: BlockId) -> Result<u32> {
        if block.index() >= self.cfg.num_blocks {
            return Err(GhostError::flash("wear: block out of range"));
        }
        Ok(self.state.lock().expect("nand poisoned").wear[block.index()])
    }

    /// Erase counts of every block, indexed by [`BlockId`] — the input to
    /// the volume's wear-aware victim selection.
    pub fn wear_snapshot(&self) -> Vec<u32> {
        self.state.lock().expect("nand poisoned").wear.clone()
    }

    /// Index into `candidates` of the least-worn block (ties broken by
    /// lowest block id, keeping selection deterministic), or `None` when
    /// `candidates` is empty. One lock, no allocation — this sits on the
    /// volume's block-open hot path.
    pub fn least_worn(&self, candidates: &[BlockId]) -> Option<usize> {
        let state = self.state.lock().expect("nand poisoned");
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| (state.wear[b.index()], b.0))
            .map(|(i, _)| i)
    }

    /// Spread between the most- and least-worn block (wear-leveling
    /// quality metric).
    pub fn wear_spread(&self) -> (u32, u32) {
        let state = self.state.lock().expect("nand poisoned");
        let min = state.wear.iter().copied().min().unwrap_or(0);
        let max = state.wear.iter().copied().max().unwrap_or(0);
        (min, max)
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> FlashStats {
        FlashStats {
            page_reads: self.stats.page_reads.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            page_programs: self.stats.page_programs.load(Ordering::Relaxed),
            bytes_programmed: self.stats.bytes_programmed.load(Ordering::Relaxed),
            block_erases: self.stats.block_erases.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Nand {
        let cfg = FlashConfig {
            page_size: 64,
            pages_per_block: 4,
            num_blocks: 8,
            ..FlashConfig::default_2007()
        };
        Nand::new(cfg, SimClock::new())
    }

    #[test]
    fn program_then_read_roundtrips() {
        let nand = small();
        let data: Vec<u8> = (0..64).collect();
        nand.program(PageAddr(5), &data).unwrap();
        let mut buf = vec![0u8; 64];
        nand.read_into(PageAddr(5), 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn partial_read_offsets() {
        let nand = small();
        let data: Vec<u8> = (0..64).collect();
        nand.program(PageAddr(0), &data).unwrap();
        let mut buf = vec![0u8; 4];
        nand.read_into(PageAddr(0), 10, &mut buf).unwrap();
        assert_eq!(buf, &[10, 11, 12, 13]);
        assert!(nand.read_into(PageAddr(0), 62, &mut buf).is_err());
    }

    #[test]
    fn no_in_place_writes() {
        let nand = small();
        nand.program(PageAddr(3), &[1; 64]).unwrap();
        let err = nand.program(PageAddr(3), &[2; 64]).unwrap_err();
        assert!(err.to_string().contains("non-erased"));
    }

    #[test]
    fn erase_enables_reprogram_and_wears() {
        let nand = small();
        nand.program(PageAddr(3), &[1; 64]).unwrap();
        nand.erase(BlockId(0)).unwrap();
        assert_eq!(nand.page_state(PageAddr(3)).unwrap(), PageState::Erased);
        assert_eq!(nand.wear(BlockId(0)).unwrap(), 1);
        nand.program(PageAddr(3), &[2; 64]).unwrap();
        let mut buf = [0u8; 1];
        nand.read_into(PageAddr(3), 0, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn erased_pages_read_ff() {
        let nand = small();
        let mut buf = [0u8; 8];
        nand.read_into(PageAddr(31), 0, &mut buf).unwrap();
        assert_eq!(buf, [0xFF; 8]);
    }

    #[test]
    fn out_of_range_is_error() {
        let nand = small();
        assert!(nand.program(PageAddr(32), &[0; 64]).is_err());
        assert!(nand.erase(BlockId(8)).is_err());
        let mut buf = [0u8; 1];
        assert!(nand.read_into(PageAddr(32), 0, &mut buf).is_err());
    }

    #[test]
    fn costs_advance_clock_asymmetrically() {
        let nand = small();
        let t0 = nand.clock().now();
        let mut buf = vec![0u8; 64];
        nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
        let read_ns = nand.clock().now().since(t0);
        let t1 = nand.clock().now();
        nand.program(PageAddr(0), &[0; 64]).unwrap();
        let prog_ns = nand.clock().now().since(t1);
        assert!(
            prog_ns >= 3 * read_ns,
            "program {prog_ns} not ≥3x read {read_ns}"
        );
    }

    #[test]
    fn stats_count_operations() {
        let nand = small();
        nand.program(PageAddr(0), &[0; 64]).unwrap();
        let mut buf = [0u8; 16];
        nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
        nand.read_into(PageAddr(0), 16, &mut buf).unwrap();
        nand.erase(BlockId(0)).unwrap();
        let s = nand.stats();
        assert_eq!(s.page_programs, 1);
        assert_eq!(s.page_reads, 2);
        assert_eq!(s.bytes_read, 32);
        assert_eq!(s.bytes_programmed, 64);
        assert_eq!(s.block_erases, 1);
    }

    #[test]
    fn stats_since_diffs() {
        let nand = small();
        nand.program(PageAddr(0), &[0; 64]).unwrap();
        let snap = nand.stats();
        nand.program(PageAddr(1), &[0; 64]).unwrap();
        let d = nand.stats().since(&snap);
        assert_eq!(d.page_programs, 1);
        assert_eq!(d.page_reads, 0);
    }

    #[test]
    fn power_cut_clean_kills_ops_after_budget() {
        let nand = small();
        nand.arm_power_cut(1, false);
        nand.program(PageAddr(0), &[1; 64]).unwrap(); // the budgeted op
        let err = nand.program(PageAddr(1), &[2; 64]).unwrap_err();
        assert!(err.to_string().contains(POWER_CUT_MSG), "{err}");
        assert!(nand.power_cut_tripped());
        // A clean cut commits nothing, and the device stays dead.
        assert_eq!(nand.page_state(PageAddr(1)).unwrap(), PageState::Erased);
        assert!(nand.erase(BlockId(1)).is_err());
        // Reads survive (post-mortem inspection), power restores fully.
        let mut buf = [0u8; 1];
        nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
        nand.disarm_power_cut();
        nand.program(PageAddr(1), &[2; 64]).unwrap();
    }

    #[test]
    fn torn_program_commits_half_the_page() {
        let nand = small();
        nand.arm_power_cut(0, true);
        assert!(nand.program(PageAddr(0), &[7; 64]).is_err());
        nand.disarm_power_cut();
        // Half the bytes landed; the page counts as programmed (so it
        // cannot be silently reused without an erase).
        assert_eq!(nand.page_state(PageAddr(0)).unwrap(), PageState::Programmed);
        let mut buf = [0u8; 64];
        nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
        assert_eq!(&buf[..32], &[7; 32]);
        assert_eq!(&buf[32..], &[0xFF; 32]);
    }

    #[test]
    fn torn_erase_resets_half_the_block() {
        let nand = small();
        for p in 0..4 {
            nand.program(PageAddr(p), &[3; 64]).unwrap();
        }
        nand.arm_power_cut(0, true);
        assert!(nand.erase(BlockId(0)).is_err());
        nand.disarm_power_cut();
        assert_eq!(nand.page_state(PageAddr(0)).unwrap(), PageState::Erased);
        assert_eq!(nand.page_state(PageAddr(1)).unwrap(), PageState::Erased);
        assert_eq!(nand.page_state(PageAddr(2)).unwrap(), PageState::Programmed);
        assert_eq!(nand.page_state(PageAddr(3)).unwrap(), PageState::Programmed);
        assert_eq!(nand.wear(BlockId(0)).unwrap(), 1, "wear counts the start");
    }

    #[test]
    fn short_program_pads_with_erased_pattern() {
        let nand = small();
        nand.program(PageAddr(0), &[7; 10]).unwrap();
        let mut buf = [0u8; 12];
        nand.read_into(PageAddr(0), 4, &mut buf).unwrap();
        assert_eq!(&buf[..6], &[7; 6]);
        assert_eq!(&buf[6..], &[0xFF; 6]);
    }

    #[test]
    fn stats_since_saturates_on_swapped_snapshots() {
        let nand = small();
        nand.program(PageAddr(0), &[0; 64]).unwrap();
        let later = nand.stats();
        nand.program(PageAddr(1), &[0; 64]).unwrap();
        let newer = nand.stats();
        // Arguments swapped: must report zeros, not panic.
        let d = later.since(&newer);
        assert_eq!(d.page_programs, 0);
        assert_eq!(d.bytes_programmed, 0);
    }

    #[test]
    fn bit_rot_flips_persistently_and_deterministically() {
        let run = |seed: u64| -> (u64, Vec<u8>) {
            let nand = small();
            let data: Vec<u8> = (0..64).collect();
            for p in 0..8 {
                nand.program(PageAddr(p), &data).unwrap();
            }
            nand.arm_bit_rot(seed, 0.5, 0);
            let mut buf = vec![0u8; 64];
            for _ in 0..8 {
                for p in 0..8 {
                    nand.read_into(PageAddr(p), 0, &mut buf).unwrap();
                }
            }
            nand.disarm_bit_rot();
            nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
            (nand.flips_injected(), buf)
        };
        let (flips_a, page_a) = run(7);
        let (flips_b, page_b) = run(7);
        assert!(flips_a > 0, "no rot injected at 50% per read");
        assert_eq!(flips_a, flips_b, "fault model must be deterministic");
        assert_eq!(page_a, page_b);
        // Budget: at most one flip per page survives in the array.
        assert!(flips_a <= 8, "{flips_a} flips exceed one per page");
    }

    #[test]
    fn read_disturb_rots_neighbors() {
        let nand = small();
        for p in 0..4 {
            nand.program(PageAddr(p), &[0xA5; 64]).unwrap();
        }
        nand.arm_bit_rot(3, 0.0, 4); // disturb only, every 4th read
        let mut buf = vec![0u8; 64];
        for _ in 0..16 {
            nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
        }
        assert!(nand.flips_injected() > 0, "disturb never fired");
    }

    #[test]
    fn program_failure_grows_block_bad() {
        let nand = small();
        nand.arm_program_failures(11, 1.0);
        let err = nand.program(PageAddr(4), &[1; 64]).unwrap_err();
        assert!(err.to_string().contains(PROGRAM_FAIL_MSG), "{err}");
        assert!(nand.is_grown_bad(BlockId(1)));
        assert_eq!(nand.grown_bad_blocks(), vec![1]);
        // The failed page holds garbage but counts as programmed.
        assert_eq!(nand.page_state(PageAddr(4)).unwrap(), PageState::Programmed);
        // Disarm does not heal the defect: programs and erases of the
        // bad block still fail, other blocks work, reads keep working.
        nand.disarm_block_failures();
        assert!(nand.program(PageAddr(5), &[1; 64]).is_err());
        assert!(nand.erase(BlockId(1)).is_err());
        nand.program(PageAddr(0), &[2; 64]).unwrap();
        let mut buf = [0u8; 4];
        nand.read_into(PageAddr(4), 0, &mut buf).unwrap();
    }

    #[test]
    fn erase_failure_grows_block_bad_and_keeps_data() {
        let nand = small();
        nand.program(PageAddr(0), &[9; 64]).unwrap();
        nand.arm_erase_failures(5, 1.0);
        let err = nand.erase(BlockId(0)).unwrap_err();
        assert!(err.to_string().contains(ERASE_FAIL_MSG), "{err}");
        nand.disarm_block_failures();
        assert!(nand.is_grown_bad(BlockId(0)));
        assert_eq!(nand.wear(BlockId(0)).unwrap(), 1, "failed pulse wears");
        // Stale data is still readable.
        let mut buf = [0u8; 1];
        nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn corrupt_page_flips_the_exact_bit() {
        let nand = small();
        nand.program(PageAddr(0), &[0u8; 64]).unwrap();
        nand.corrupt_page(PageAddr(0), 10).unwrap(); // byte 1, bit 2
        let mut buf = [0u8; 2];
        nand.read_into(PageAddr(0), 0, &mut buf).unwrap();
        assert_eq!(buf, [0x00, 0x04]);
        assert!(nand.corrupt_page(PageAddr(0), 64 * 8).is_err());
    }
}
