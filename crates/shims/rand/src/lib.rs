//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the handful of calls
//! the workload generators make (`StdRng::seed_from_u64`,
//! `random_range`, `random::<f64>()`) are served by this shim. The
//! generator is xoshiro256** — a solid, well-known PRNG — seeded through
//! SplitMix64 exactly like the real `rand` seeds small-state generators,
//! so fixtures stay deterministic across runs and platforms.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their full domain (subset of
/// `rand::distr::StandardUniform` support).
pub trait Standard: Sized {
    /// Draw one uniform sample from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types usable with [`RngExt::random_range`]. Generic over the
/// output type so integer-literal ranges infer from the call site, like
/// the real `rand`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the (half-open) range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ~2^-64 for the spans used here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i32, i64, u32, u64, usize);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait RngExt {
    /// A uniform sample over `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// A uniform sample over the type's full domain (`[0,1)` for f64).
    fn random<T: Standard>(&mut self) -> T;
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngExt, SampleRange, SeedableRng, Standard};

    /// xoshiro256** generator (stands in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(self)
        }

        fn random<T: Standard>(&mut self) -> T {
            T::sample(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000i64), b.random_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20i32);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..16).map(|_| a.random_range(0..1_000_000i64)).collect();
        let vb: Vec<i64> = (0..16).map(|_| b.random_range(0..1_000_000i64)).collect();
        assert_ne!(va, vb);
    }
}
