//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this shim implements
//! just the surface the test suites use: the [`Strategy`] trait with
//! `prop_map`, `any::<T>()` for the primitive types, range strategies,
//! a tiny `[x-y]{lo,hi}` regex-string strategy, `prop_oneof!`,
//! `proptest::collection::vec`, `prop::sample::select`, and the
//! [`proptest!`] macro itself.
//!
//! Cases are generated from a deterministic per-test seed (hashed from
//! the test's module path and name), so failures reproduce exactly on
//! re-run. Shrinking is not implemented — a failing case panics with the
//! generated inputs left to inspect via the assertion message.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! The per-test deterministic random source.

    /// xoshiro256** seeded from a test-name hash.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Deterministic generator for a named test.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name, expanded through SplitMix64.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias ~1/8 of draws toward boundary values, where codec
                // and arithmetic bugs live.
                match rng.next_u64() % 8 {
                    0 => [<$t>::MIN, <$t>::MAX, 0 as $t][(rng.next_u64() % 3) as usize],
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Regex-string strategy supporting the `[a-b…]{lo,hi}` subset the test
/// suite uses (a single character class with ranges/literals, one
/// repetition bound).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[<class>]{lo,hi}` into (expanded class, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, rep) = rest.split_at(close);
    let rep = rep
        .strip_prefix(']')?
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = rep.parse().ok()?;
            (n, n)
        }
    };
    let chars: Vec<char> = class_src.chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() || hi < lo {
        return None;
    }
    Some((class, lo, hi))
}

pub mod strategy {
    //! Strategy combinators.

    use super::{Strategy, TestRng};

    /// Binary uniform choice; [`prop_oneof!`](crate::prop_oneof) builds a
    /// right-nested tree of these, weighted so leaves stay uniform.
    pub struct OneOf<A, B> {
        a: A,
        b: B,
        b_arms: u64,
    }

    impl<A, B> OneOf<A, B> {
        /// Combine one arm with the (possibly nested) rest.
        pub fn new(a: A, b: B, b_arms: u64) -> OneOf<A, B> {
            OneOf { a, b, b_arms }
        }
    }

    impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for OneOf<A, B> {
        type Value = A::Value;
        fn generate(&self, rng: &mut TestRng) -> A::Value {
            if rng.below(1 + self.b_arms) == 0 {
                self.a.generate(rng)
            } else {
                self.b.generate(rng)
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `element` and a length
    /// drawn from `len` (half-open, like proptest's size ranges).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// Uniformly select one of `items` (cloned per case).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty vec");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod prop {
    //! The `prop::` path alias used by `use proptest::prelude::*`.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice over same-valued alternative strategies (a nested
/// [`strategy::OneOf`] tree).
#[macro_export]
macro_rules! prop_oneof {
    ($arm:expr $(,)?) => { $arm };
    ($arm:expr, $($rest:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(
            $arm,
            $crate::prop_oneof!($($rest),+),
            $crate::prop_oneof!(@count $($rest),+),
        )
    };
    (@count $arm:expr $(,)?) => { 1u64 };
    (@count $arm:expr, $($rest:expr),+ $(,)?) => { 1u64 + $crate::prop_oneof!(@count $($rest),+) };
}

/// Assert within a property (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property (delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_class_parses() {
        let (class, lo, hi) = super::parse_class_pattern("[ -~]{0,40}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 40);
        assert_eq!(class.len(), (b'~' - b' ') as usize + 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(x in 10i32..20, mut v in prop::collection::vec(any::<u8>(), 0..5)) {
            assert!((10..20).contains(&x));
            assert!(v.len() < 5);
            v.push(0);
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![
            (0i64..10).prop_map(|v| v.to_string()),
            "[a-c]{1,3}".prop_map(|s: String| s),
        ]) {
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn select_picks_member(c in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(c == "a" || c == "b");
        }
    }
}
