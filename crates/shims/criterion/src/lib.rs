//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the benches are
//! served by this shim: same `criterion_group!`/`criterion_main!` source
//! shape, a calibrated-iteration timing loop (target ~0.3 s per
//! benchmark after warmup), and a one-line median/mean report per
//! benchmark on stdout. Statistical machinery (outlier detection,
//! HTML reports, baselines) is intentionally absent.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Passed to the measurement closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Total time measured across sample batches.
    elapsed: Duration,
    /// Iterations actually executed.
    iters: u64,
    /// Per-iteration samples (batch mean), ns.
    samples: Vec<f64>,
    target: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly: a warmup batch sizes the calibrated
    /// batches, then batches run until the target measurement time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count lasting >= ~5 ms.
        let mut batch = 1u64;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || batch >= 1 << 20 {
                break dt.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        let total_iters = (self.target.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let n_batches = 10u64;
        let batch = (total_iters / n_batches).max(1);
        for _ in 0..n_batches {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.elapsed += dt;
            self.iters += batch;
            self.samples.push(dt.as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Shrink/grow the sample budget. The shim maps criterion's sample
    /// count onto measurement time: fewer samples, shorter run.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.target = Duration::from_millis((3 * n as u64).clamp(30, 1_000));
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            samples: Vec::new(),
            target: self.criterion.target,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benchmark a closure with an input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (printing is per-benchmark; nothing left to do).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{:<40} (no measurement)", self.name, id.id);
            return;
        }
        let mut sorted = b.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let median = sorted[sorted.len() / 2];
        let mean = b.elapsed.as_secs_f64() * 1e9 / b.iters as f64;
        println!(
            "{}/{:<40} median {:>12}  mean {:>12}  ({} iters)",
            self.name,
            id.id,
            fmt_ns(median),
            fmt_ns(mean),
            b.iters,
        );
    }
}

/// The benchmark driver.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep the default short: the full bench suite runs in CI-ish
        // loops, and the simulator-backed payloads are already slow.
        Criterion {
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Configure the per-benchmark measurement time.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.target = t;
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Benchmark without a group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, f: R) -> &mut Self {
        self.benchmark_group("bench")
            .bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Declare a group-running function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
