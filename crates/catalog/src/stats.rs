//! Column statistics and selectivity estimation.
//!
//! The demo's phase 2 lets visitors compare Pre-, Post- and
//! Cross-filtering plans; GhostDB's optimizer picks among them "depending
//! on the selectivities" (paper §4). The statistics here — row counts,
//! distinct counts, min/max and an equi-depth histogram over the
//! order-preserving key encoding — are collected at load time (the device
//! is bulk-loaded "in a secure setting") and drive the cost model in
//! `ghostdb-exec`.

use ghostdb_types::{Result, ScalarOp, Value, Wire};

use crate::schema::ColumnRef;

/// An equi-depth histogram over order keys ([`Value::order_key`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive), ascending; ~equal row counts per
    /// bucket.
    bounds: Vec<u64>,
    /// Rows represented.
    rows: u64,
}

impl Histogram {
    /// Build from a sample of order keys (consumed and sorted).
    pub fn build(mut keys: Vec<u64>, buckets: usize) -> Histogram {
        let rows = keys.len() as u64;
        keys.sort_unstable();
        let buckets = buckets.max(1);
        let mut bounds = Vec::with_capacity(buckets);
        if !keys.is_empty() {
            // Duplicate bounds are kept on purpose: each bound stands for
            // an equal share of rows, which is what makes heavy hitters
            // (many buckets ending at the same key) estimable.
            for b in 1..=buckets {
                let idx = (b * keys.len()) / buckets;
                bounds.push(keys[idx.saturating_sub(1).min(keys.len() - 1)]);
            }
        }
        Histogram { bounds, rows }
    }

    /// Estimated fraction of rows with key `<= k`.
    pub fn fraction_le(&self, k: u64) -> f64 {
        if self.bounds.is_empty() || self.rows == 0 {
            return 0.5;
        }
        // Buckets whose (inclusive) upper bound is <= k are fully below
        // k; credit half of the next bucket. Resolution of 1/buckets is
        // plenty for the cost model.
        let covered = self.bounds.partition_point(|&b| b <= k);
        if covered >= self.bounds.len() {
            return 1.0;
        }
        (covered as f64 + 0.5) / self.bounds.len() as f64
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Rows in the column (= table cardinality).
    pub rows: u64,
    /// Number of distinct values.
    pub distinct: u64,
    /// Histogram over order keys (`None` for text columns).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Build stats from the column's values.
    pub fn build(values: &[Value], buckets: usize) -> ColumnStats {
        let rows = values.len() as u64;
        let mut distinct_probe: Vec<&Value> = values.iter().collect();
        distinct_probe.sort_by(|a, b| a.cmp_same_type(b).unwrap_or(std::cmp::Ordering::Equal));
        distinct_probe.dedup_by(|a, b| a == b);
        let distinct = distinct_probe.len() as u64;
        let keys: Option<Vec<u64>> = values.iter().map(|v| v.order_key()).collect();
        ColumnStats {
            rows,
            distinct,
            histogram: keys.map(|k| Histogram::build(k, buckets)),
        }
    }

    /// Absorb one post-load value: bump the row count and, when the
    /// caller knows the value was previously unseen, the distinct count.
    /// The histogram is left as built at load time — the delta is small
    /// relative to the base by construction (it is flushed at a bounded
    /// threshold), so the load-time distribution stays a sound estimate.
    pub fn absorb(&mut self, known_new_value: bool) {
        self.rows += 1;
        if known_new_value {
            self.distinct += 1;
        }
    }

    /// Retire `n` deleted rows: the row count shrinks immediately so
    /// estimated result cardinalities track live data. Distinct counts
    /// and the histogram are left alone — without per-value refcounts we
    /// cannot know whether the dead rows' values survive elsewhere, and
    /// both are rebuilt exactly at the next delta flush.
    pub fn retire(&mut self, n: u64) {
        self.rows = self.rows.saturating_sub(n);
    }

    /// Joint selectivity of a range pair `lo_op ∧ hi_op` on this column
    /// (the desugared form of `BETWEEN lo AND hi`), estimated from one
    /// walk of the equi-depth histogram: `P(≤hi) − P(<lo)`.
    ///
    /// Multiplying the two one-sided selectivities instead — as any
    /// independence assumption would — badly over-estimates narrow
    /// ranges: on a uniform 0..100 column, `BETWEEN 40 AND 60` is 0.2 of
    /// the rows, but `P(≥40)·P(≤60) = 0.6·0.6 = 0.36`. `lo_op` must be
    /// `Ge`/`Gt` and `hi_op` must be `Le`/`Lt`; other shapes (and
    /// columns without a histogram) fall back to the product.
    pub fn range_selectivity(
        &self,
        lo_op: ScalarOp,
        lo: &Value,
        hi_op: ScalarOp,
        hi: &Value,
    ) -> f64 {
        let product = self.selectivity(lo_op, lo) * self.selectivity(hi_op, hi);
        if self.rows == 0 {
            return 0.0;
        }
        let (Some(h), Some(lo_k), Some(hi_k)) = (&self.histogram, lo.order_key(), hi.order_key())
        else {
            return product;
        };
        if !matches!(lo_op, ScalarOp::Ge | ScalarOp::Gt)
            || !matches!(hi_op, ScalarOp::Le | ScalarOp::Lt)
        {
            return product;
        }
        let unit = 1.0 / self.distinct.max(1) as f64;
        // fraction_le answers P(≤k); peel one distinct value's share off
        // each strict bound.
        let mut sel = h.fraction_le(hi_k) - h.fraction_le(lo_k) + unit;
        if hi_op == ScalarOp::Lt {
            sel -= unit;
        }
        if lo_op == ScalarOp::Gt {
            sel -= unit;
        }
        // Never report emptier than one row: the bounds came from the
        // query, which usually names values that exist.
        sel.clamp(1.0 / self.rows as f64, 1.0)
    }

    /// Estimated selectivity (result fraction) of `column OP value`.
    pub fn selectivity(&self, op: ScalarOp, value: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        match op {
            ScalarOp::Eq => 1.0 / self.distinct.max(1) as f64,
            _ => {
                let Some(h) = &self.histogram else {
                    // Unordered (text) range predicate: the classic 1/3
                    // textbook default.
                    return 1.0 / 3.0;
                };
                let Some(k) = value.order_key() else {
                    return 1.0 / 3.0;
                };
                let le = h.fraction_le(k);
                match op {
                    ScalarOp::Le => le,
                    ScalarOp::Lt => (le - 1.0 / self.distinct.max(1) as f64).max(0.0),
                    ScalarOp::Ge => 1.0 - le + 1.0 / self.distinct.max(1) as f64,
                    ScalarOp::Gt => 1.0 - le,
                    // Defensive: the outer match already answered Eq, but
                    // a panic here would abort the whole planner if the
                    // dispatch ever changes — fall back to the same 1/ndv
                    // estimate instead.
                    ScalarOp::Eq => 1.0 / self.distinct.max(1) as f64,
                }
                .clamp(0.0, 1.0)
            }
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Table cardinality.
    pub rows: u64,
    /// Per-column stats (index = column id); `None` if never collected.
    pub columns: Vec<Option<ColumnStats>>,
}

/// Statistics for a whole schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemaStats {
    /// Per-table stats (index = table id).
    pub tables: Vec<TableStats>,
}

impl SchemaStats {
    /// Empty stats for `n` tables.
    pub fn empty(n: usize) -> SchemaStats {
        SchemaStats {
            tables: vec![TableStats::default(); n],
        }
    }

    /// Cardinality of a table (0 if unknown).
    pub fn rows(&self, table: ghostdb_types::TableId) -> u64 {
        self.tables.get(table.index()).map(|t| t.rows).unwrap_or(0)
    }

    /// Stats for one column, if collected.
    pub fn column(&self, cref: ColumnRef) -> Option<&ColumnStats> {
        self.tables
            .get(cref.table.index())?
            .columns
            .get(cref.column.index())?
            .as_ref()
    }

    /// Estimated selectivity of a predicate; 0.1 when stats are missing
    /// (the optimizer still needs *an* answer).
    pub fn selectivity(&self, cref: ColumnRef, op: ScalarOp, value: &Value) -> f64 {
        self.column(cref)
            .map(|c| c.selectivity(op, value))
            .unwrap_or(0.1)
    }

    /// Joint selectivity of a same-column range pair (see
    /// [`ColumnStats::range_selectivity`]); falls back to the product of
    /// the independent defaults when stats are missing.
    pub fn range_selectivity(
        &self,
        cref: ColumnRef,
        lo_op: ScalarOp,
        lo: &Value,
        hi_op: ScalarOp,
        hi: &Value,
    ) -> f64 {
        self.column(cref)
            .map(|c| c.range_selectivity(lo_op, lo, hi_op, hi))
            .unwrap_or_else(|| {
                self.selectivity(cref, lo_op, lo) * self.selectivity(cref, hi_op, hi)
            })
    }

    /// Incremental refresh for one inserted row: bump the table
    /// cardinality and every collected column's row count, so the
    /// planner sees base + delta cardinalities immediately.
    /// `new_value_columns` lists the column ids known to carry a
    /// previously-unseen value (their distinct counts grow too).
    pub fn absorb_row(&mut self, table: ghostdb_types::TableId, new_value_columns: &[u16]) {
        let Some(t) = self.tables.get_mut(table.index()) else {
            return;
        };
        t.rows += 1;
        for (ci, col) in t.columns.iter_mut().enumerate() {
            if let Some(c) = col {
                c.absorb(new_value_columns.contains(&(ci as u16)));
            }
        }
    }

    /// Incremental refresh for `n` deleted rows: the table cardinality
    /// and every collected column's row count decrement, so planner
    /// estimates shrink with the live data instead of drifting upward
    /// until the next flush. (`absorb_row`'s mirror image — the ROADMAP
    /// mutation-drift fix.)
    pub fn retire_rows(&mut self, table: ghostdb_types::TableId, n: u64) {
        let Some(t) = self.tables.get_mut(table.index()) else {
            return;
        };
        t.rows = t.rows.saturating_sub(n);
        for col in t.columns.iter_mut().flatten() {
            col.retire(n);
        }
    }

    /// Incremental refresh for one updated row: row counts are
    /// unchanged, but columns that received a previously-unseen value
    /// (`new_value_columns`) grow their distinct estimate.
    pub fn absorb_update(&mut self, table: ghostdb_types::TableId, new_value_columns: &[u16]) {
        let Some(t) = self.tables.get_mut(table.index()) else {
            return;
        };
        for &ci in new_value_columns {
            if let Some(Some(c)) = t.columns.get_mut(ci as usize) {
                c.distinct += 1;
            }
        }
    }
}

// --- durable-image codec -------------------------------------------------
//
// Statistics ride the sealed device image so a mounted database plans
// with the same estimates as the instance that sealed it. Like the rest
// of the image these bytes stay on the device's NAND.

impl Wire for Histogram {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bounds.encode(out);
        self.rows.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(Histogram {
            bounds: Vec::<u64>::decode(buf)?,
            rows: u64::decode(buf)?,
        })
    }
}

impl Wire for ColumnStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.distinct.encode(out);
        self.histogram.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(ColumnStats {
            rows: u64::decode(buf)?,
            distinct: u64::decode(buf)?,
            histogram: Option::<Histogram>::decode(buf)?,
        })
    }
}

impl Wire for TableStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.columns.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(TableStats {
            rows: u64::decode(buf)?,
            columns: Vec::<Option<ColumnStats>>::decode(buf)?,
        })
    }
}

impl Wire for SchemaStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tables.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(SchemaStats {
            tables: Vec::<TableStats>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{ColumnId, TableId};

    #[test]
    fn histogram_fractions() {
        let keys: Vec<u64> = (0..1000).collect();
        let h = Histogram::build(keys, 50);
        let f = h.fraction_le(500);
        assert!((f - 0.5).abs() < 0.05, "fraction {f}");
        assert!(h.fraction_le(0) < 0.05);
        assert_eq!(h.fraction_le(2000), 1.0);
    }

    #[test]
    fn histogram_empty_and_skewed() {
        let h = Histogram::build(vec![], 10);
        assert_eq!(h.fraction_le(5), 0.5); // agnostic default
                                           // 90% of mass at one value.
        let mut keys = vec![7u64; 900];
        keys.extend(0..100u64);
        let h = Histogram::build(keys, 20);
        assert!(h.fraction_le(7) > 0.5);
    }

    #[test]
    fn eq_selectivity_uses_distincts() {
        let values: Vec<Value> = (0..100).map(|i| Value::Int(i % 10)).collect();
        let s = ColumnStats::build(&values, 16);
        assert_eq!(s.distinct, 10);
        let sel = s.selectivity(ScalarOp::Eq, &Value::Int(3));
        assert!((sel - 0.1).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_tracks_histogram() {
        let values: Vec<Value> = (0..1000).map(Value::Int).collect();
        let s = ColumnStats::build(&values, 64);
        let sel = s.selectivity(ScalarOp::Gt, &Value::Int(750));
        assert!((sel - 0.25).abs() < 0.05, "sel {sel}");
        let sel = s.selectivity(ScalarOp::Le, &Value::Int(100));
        assert!((sel - 0.1).abs() < 0.05, "sel {sel}");
    }

    /// The BETWEEN-estimator satellite: on a skewed column (90% of the
    /// mass on one heavy hitter), a narrow range beside the hitter must
    /// estimate near its true tiny fraction — the independence product
    /// of the two one-sided selectivities over-estimates it by ~7x.
    #[test]
    fn between_selectivity_on_skewed_column() {
        let mut values: Vec<Value> = vec![Value::Int(7); 900];
        values.extend((0..100).map(Value::Int));
        let s = ColumnStats::build(&values, 64);

        // BETWEEN 50 AND 60: 11 of 1000 rows.
        let joint =
            s.range_selectivity(ScalarOp::Ge, &Value::Int(50), ScalarOp::Le, &Value::Int(60));
        let product = s.selectivity(ScalarOp::Ge, &Value::Int(50))
            * s.selectivity(ScalarOp::Le, &Value::Int(60));
        assert!(joint < 0.05, "joint {joint} should be near 11/1000");
        assert!(
            joint < product / 2.0,
            "joint {joint} not better than product {product}"
        );

        // A range straddling the heavy hitter captures most of the rows.
        let wide = s.range_selectivity(ScalarOp::Ge, &Value::Int(0), ScalarOp::Le, &Value::Int(10));
        assert!(wide > 0.8, "straddling range {wide} should be ~0.91");

        // Strict bounds shave one distinct value's share off each side.
        let strict =
            s.range_selectivity(ScalarOp::Gt, &Value::Int(50), ScalarOp::Lt, &Value::Int(60));
        assert!(strict <= joint, "strict {strict} vs inclusive {joint}");

        // Text columns (no histogram) fall back to the product.
        let texts: Vec<Value> = (0..50).map(|i| Value::Text(format!("t{i}"))).collect();
        let t = ColumnStats::build(&texts, 16);
        let tp = t.range_selectivity(
            ScalarOp::Ge,
            &Value::Text("a".into()),
            ScalarOp::Le,
            &Value::Text("z".into()),
        );
        assert!((tp - 1.0 / 9.0).abs() < 1e-9, "text fallback {tp}");
    }

    #[test]
    fn text_columns_have_eq_but_default_range() {
        let values: Vec<Value> = (0..50)
            .map(|i| Value::Text(format!("v{}", i % 5)))
            .collect();
        let s = ColumnStats::build(&values, 16);
        assert_eq!(s.distinct, 5);
        assert!(s.histogram.is_none());
        assert!((s.selectivity(ScalarOp::Eq, &Value::Text("v1".into())) - 0.2).abs() < 1e-9);
        assert!((s.selectivity(ScalarOp::Gt, &Value::Text("v1".into())) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn schema_stats_lookup_and_defaults() {
        let mut stats = SchemaStats::empty(2);
        let values: Vec<Value> = (0..10).map(Value::Int).collect();
        stats.tables[1].rows = 10;
        stats.tables[1].columns = vec![None, Some(ColumnStats::build(&values, 4))];
        let cref = ColumnRef {
            table: TableId(1),
            column: ColumnId(1),
        };
        assert!(stats.column(cref).is_some());
        assert_eq!(stats.rows(TableId(1)), 10);
        let missing = ColumnRef {
            table: TableId(0),
            column: ColumnId(0),
        };
        assert_eq!(
            stats.selectivity(missing, ScalarOp::Eq, &Value::Int(1)),
            0.1
        );
    }

    #[test]
    fn empty_column_zero_selectivity() {
        let s = ColumnStats::build(&[], 4);
        assert_eq!(s.selectivity(ScalarOp::Eq, &Value::Int(1)), 0.0);
    }

    /// The planner-drift satellite: a bulk delete must shrink estimated
    /// result cardinalities (rows × selectivity) immediately, not at the
    /// next flush.
    #[test]
    fn bulk_delete_shrinks_cardinality_estimates() {
        let mut stats = SchemaStats::empty(1);
        let values: Vec<Value> = (0..1000).map(Value::Int).collect();
        stats.tables[0].rows = 1000;
        stats.tables[0].columns = vec![None, Some(ColumnStats::build(&values, 32))];
        let cref = ColumnRef {
            table: TableId(0),
            column: ColumnId(1),
        };
        let est_before =
            stats.rows(TableId(0)) as f64 * stats.selectivity(cref, ScalarOp::Gt, &Value::Int(500));

        stats.retire_rows(TableId(0), 600);
        assert_eq!(stats.rows(TableId(0)), 400);
        assert_eq!(stats.column(cref).unwrap().rows, 400);
        let est_after =
            stats.rows(TableId(0)) as f64 * stats.selectivity(cref, ScalarOp::Gt, &Value::Int(500));
        assert!(
            est_after < est_before / 2.0,
            "estimate {est_after} did not shrink from {est_before}"
        );
        // Saturates rather than underflows.
        stats.retire_rows(TableId(0), 10_000);
        assert_eq!(stats.rows(TableId(0)), 0);

        // Updates that mint a fresh value grow the distinct estimate.
        let d0 = stats.column(cref).unwrap().distinct;
        stats.absorb_update(TableId(0), &[1]);
        assert_eq!(stats.column(cref).unwrap().distinct, d0 + 1);
    }
}
