//! Tree-schema analysis (paper §4, Figure 3).
//!
//! Terminology follows the paper: the **root** is the fact table
//! (Prescription); a table's **ancestors** are the tables on its path *to*
//! the root (for Doctor: Visit, then Prescription); the **subtree** of a
//! table R is R plus everything reachable away from the root (for Visit:
//! Visit, Doctor, Patient) — exactly the set a Subtree Key Table covers.
//!
//! Structurally: the table that *references* T through a foreign key is
//! T's tree **parent** (closer to the root). The root is referenced by
//! nobody; every other table is referenced by exactly one foreign key.

use ghostdb_types::{ColumnId, GhostError, Result, TableId};

use crate::schema::Schema;

/// The validated tree structure of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSchema {
    root: TableId,
    /// For each table: `(parent table, fk column within the parent)`;
    /// `None` for the root.
    parent: Vec<Option<(TableId, ColumnId)>>,
    /// For each table: its children (tables it references).
    children: Vec<Vec<TableId>>,
    /// For each table: distance from the root (root = 0).
    depth: Vec<usize>,
}

impl TreeSchema {
    /// Analyze a schema, verifying the tree shape.
    pub fn analyze(schema: &Schema) -> Result<TreeSchema> {
        let n = schema.table_count();
        if n == 0 {
            return Err(GhostError::catalog("empty schema"));
        }
        let mut parent: Vec<Option<(TableId, ColumnId)>> = vec![None; n];
        let mut children: Vec<Vec<TableId>> = vec![Vec::new(); n];
        for (ti, t) in schema.tables().iter().enumerate() {
            for (col, target) in t.foreign_keys() {
                let referencing = TableId(ti as u16);
                if parent[target.index()].is_some() {
                    return Err(GhostError::catalog(format!(
                        "table {} is referenced by more than one foreign key; \
                         not a tree schema",
                        schema.table(target).name
                    )));
                }
                parent[target.index()] = Some((referencing, col));
                children[ti].push(target);
            }
        }
        let roots: Vec<usize> = (0..n).filter(|&i| parent[i].is_none()).collect();
        if roots.len() != 1 {
            return Err(GhostError::catalog(format!(
                "tree schema needs exactly one root table, found {}: {:?}",
                roots.len(),
                roots
                    .iter()
                    .map(|&i| schema.tables()[i].name.clone())
                    .collect::<Vec<_>>()
            )));
        }
        let root = TableId(roots[0] as u16);
        // Depth via a walk to the root. The walk is bounded by n, which
        // catches foreign-key cycles (a cycle's members all have parents,
        // so they pass the single-root check but loop here). Reaching a
        // terminal other than the root is impossible — the root is the
        // only parentless table — so termination within n steps implies
        // connectivity.
        let mut depth = vec![0usize; n];
        for (i, slot) in depth.iter_mut().enumerate() {
            let mut d = 0;
            let mut cur = i;
            while let Some((p, _)) = parent[cur] {
                d += 1;
                if d > n {
                    return Err(GhostError::catalog("cycle detected in foreign-key graph"));
                }
                cur = p.index();
            }
            *slot = d;
        }
        Ok(TreeSchema {
            root,
            parent,
            children,
            depth,
        })
    }

    /// The root (fact) table.
    pub fn root(&self) -> TableId {
        self.root
    }

    /// The tree parent of `t` and the foreign-key column (in the parent)
    /// that references `t`; `None` for the root.
    pub fn parent(&self, t: TableId) -> Option<(TableId, ColumnId)> {
        self.parent[t.index()]
    }

    /// Tables `t` references (its tree children).
    pub fn children(&self, t: TableId) -> &[TableId] {
        &self.children[t.index()]
    }

    /// Distance from the root (root = 0).
    pub fn depth(&self, t: TableId) -> usize {
        self.depth[t.index()]
    }

    /// The path from `t` to the root, **excluding** `t` itself: the
    /// paper's "ancestors". For Doctor in the demo schema this is
    /// `[Visit, Prescription]`.
    pub fn ancestors(&self, t: TableId) -> Vec<TableId> {
        let mut out = Vec::new();
        let mut cur = t;
        while let Some((p, _)) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// The path from `t` to the root **including** `t` — the levels a
    /// climbing index on a column of `t` stores postings for.
    pub fn climb_path(&self, t: TableId) -> Vec<TableId> {
        let mut out = vec![t];
        out.extend(self.ancestors(t));
        out
    }

    /// The subtree rooted at `t` (preorder, `t` first): the tables a
    /// Subtree Key Table rooted at `t` covers.
    pub fn subtree(&self, t: TableId) -> Vec<TableId> {
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            // Push children in reverse so preorder matches declaration order.
            for &c in self.children(cur).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Internal tables (those with at least one child): the tables that
    /// get a Subtree Key Table. In Figure 3 these are Prescription and
    /// Visit.
    pub fn skt_roots(&self) -> Vec<TableId> {
        (0..self.children.len())
            .filter(|&i| !self.children[i].is_empty())
            .map(|i| TableId(i as u16))
            .collect()
    }

    /// True if `anc` lies on `t`'s path to the root (strictly above `t`).
    pub fn is_ancestor(&self, anc: TableId, t: TableId) -> bool {
        self.ancestors(t).contains(&anc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SchemaBuilder, Visibility};
    use ghostdb_types::DataType;

    /// The Figure 3 demo schema (keys only; attributes irrelevant here).
    fn medical() -> Schema {
        let mut b = SchemaBuilder::new();
        b.table("Doctor", "DocID").alias("Doc");
        b.table("Patient", "PatID").alias("Pat");
        b.table("Medicine", "MedID").alias("Med");
        b.table("Visit", "VisID")
            .alias("Vis")
            .foreign_key("DocID", "Doctor", Visibility::Hidden)
            .foreign_key("PatID", "Patient", Visibility::Hidden);
        b.table("Prescription", "PreID")
            .alias("Pre")
            .foreign_key("MedID", "Medicine", Visibility::Hidden)
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        b.build().unwrap()
    }

    #[test]
    fn figure3_tree_shape() {
        let s = medical();
        let t = TreeSchema::analyze(&s).unwrap();
        let pre = s.resolve_table("Prescription").unwrap();
        let vis = s.resolve_table("Visit").unwrap();
        let doc = s.resolve_table("Doctor").unwrap();
        let pat = s.resolve_table("Patient").unwrap();
        let med = s.resolve_table("Medicine").unwrap();

        assert_eq!(t.root(), pre);
        assert_eq!(t.parent(doc).unwrap().0, vis);
        assert_eq!(t.parent(vis).unwrap().0, pre);
        assert_eq!(t.parent(pre), None);
        assert_eq!(t.depth(pre), 0);
        assert_eq!(t.depth(vis), 1);
        assert_eq!(t.depth(doc), 2);

        // Paper: ancestors of Doctor are Visit then Prescription.
        assert_eq!(t.ancestors(doc), vec![vis, pre]);
        assert_eq!(t.climb_path(doc), vec![doc, vis, pre]);
        assert_eq!(t.climb_path(pre), vec![pre]);

        // SKTs: one rooted at Prescription, one at Visit (paper Figure 3).
        assert_eq!(t.skt_roots(), vec![vis, pre]);

        // Subtree of Visit = {Visit, Doctor, Patient}.
        let sub = t.subtree(vis);
        assert_eq!(sub[0], vis);
        assert!(sub.contains(&doc) && sub.contains(&pat) && sub.len() == 3);
        // Subtree of Prescription covers everything.
        assert_eq!(t.subtree(pre).len(), 5);
        assert!(!t.subtree(pre).contains(&TableId(99)));

        assert!(t.is_ancestor(pre, doc));
        assert!(t.is_ancestor(vis, doc));
        assert!(!t.is_ancestor(doc, vis));
        assert!(!t.is_ancestor(med, doc));
    }

    #[test]
    fn two_roots_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("A", "aid");
        b.table("B", "bid");
        let s = b.build().unwrap();
        let err = TreeSchema::analyze(&s).unwrap_err();
        assert!(err.to_string().contains("exactly one root"));
    }

    #[test]
    fn shared_dimension_rejected() {
        // Two fact tables referencing the same dimension => not a tree.
        let mut b = SchemaBuilder::new();
        b.table("Dim", "did");
        b.table("FactA", "aid")
            .foreign_key("did", "Dim", Visibility::Hidden);
        b.table("FactB", "bid")
            .foreign_key("did", "Dim", Visibility::Hidden);
        let s = b.build().unwrap();
        let err = TreeSchema::analyze(&s).unwrap_err();
        assert!(err.to_string().contains("more than one"));
    }

    #[test]
    fn single_table_is_a_tree() {
        let mut b = SchemaBuilder::new();
        b.table("Solo", "id")
            .column("x", DataType::Integer, Visibility::Hidden);
        let s = b.build().unwrap();
        let t = TreeSchema::analyze(&s).unwrap();
        assert_eq!(t.root(), TableId(0));
        assert!(t.skt_roots().is_empty());
        assert_eq!(t.climb_path(TableId(0)), vec![TableId(0)]);
    }
}
