//! Bound analytic shapes shared by the SQL binder and the executor.
//!
//! `ghostdb-sql` must not depend on `ghostdb-exec` (the binder returns raw
//! bound parts; `ghostdb-core` assembles the executable spec), so the
//! column-level description of a SELECT list with aggregates, its GROUP BY
//! keys and its ORDER BY/LIMIT epilogue lives here, next to [`Predicate`]
//! — the other bound shape both sides speak.
//!
//! [`Predicate`]: crate::Predicate

use ghostdb_types::AggFunc;

use crate::schema::ColumnRef;

/// One item of a SELECT list, bound to schema columns.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputItem {
    /// A plain column reference: the row's value is emitted as-is.
    Column(ColumnRef),
    /// An aggregate folded over the group's rows. `arg` is `None` for
    /// `COUNT(*)`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// The operand column (`None` = `COUNT(*)`).
        arg: Option<ColumnRef>,
    },
}

impl OutputItem {
    /// The column this item reads, if any.
    pub fn column(&self) -> Option<ColumnRef> {
        match self {
            OutputItem::Column(c) => Some(*c),
            OutputItem::Agg { arg, .. } => *arg,
        }
    }

    /// True for aggregate items.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, OutputItem::Agg { .. })
    }
}

/// One ORDER BY key: an index into the SELECT list plus a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    /// 0-based index into the bound output items.
    pub item: usize,
    /// True for `DESC`.
    pub desc: bool,
}

/// The analytic clauses of a bound SELECT: output shape, grouping keys,
/// ordering and row limit. A plain SPJ query has `output` mirroring its
/// projections and everything else empty.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analytics {
    /// The SELECT list in statement order.
    pub output: Vec<OutputItem>,
    /// GROUP BY columns in statement order (empty = one global group
    /// when aggregates are present, plain row output otherwise).
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY keys applied to the output rows.
    pub order_by: Vec<OrderKey>,
    /// Row limit applied after ordering.
    pub limit: Option<u64>,
}

impl Analytics {
    /// True when any output item aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.output.iter().any(OutputItem::is_aggregate)
    }

    /// True when the epilogue changes nothing: plain column output, no
    /// grouping, ordering or limit.
    pub fn is_plain(&self) -> bool {
        !self.has_aggregates()
            && self.group_by.is_empty()
            && self.order_by.is_empty()
            && self.limit.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{ColumnId, TableId};

    #[test]
    fn item_introspection() {
        let c = ColumnRef {
            table: TableId(0),
            column: ColumnId(1),
        };
        assert_eq!(OutputItem::Column(c).column(), Some(c));
        assert!(!OutputItem::Column(c).is_aggregate());
        let star = OutputItem::Agg {
            func: AggFunc::Count,
            arg: None,
        };
        assert_eq!(star.column(), None);
        assert!(star.is_aggregate());
        let mut a = Analytics {
            output: vec![OutputItem::Column(c)],
            ..Analytics::default()
        };
        assert!(a.is_plain());
        a.limit = Some(3);
        assert!(!a.is_plain());
        a.output.push(star);
        assert!(a.has_aggregates());
    }
}
