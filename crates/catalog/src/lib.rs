//! Schema catalog: hidden/visible columns, tree-schema analysis, and
//! per-column statistics.
//!
//! Paper §2: the security administrator declares sensitive columns
//! `HIDDEN` in otherwise standard `CREATE TABLE` statements; primary keys
//! are replicated on the device; in the demo scenario foreign keys are
//! hidden "because they offer the possibility of linking sensitive
//! records".
//!
//! Paper §4 restricts query processing to **tree schemas**: every foreign
//! key points from a table to the table *below* it in the tree, the root
//! is the fact table (Prescription in Figure 3), and every non-root table
//! is referenced by exactly one foreign key. [`TreeSchema`] validates this
//! shape and precomputes the ancestor paths the climbing indexes follow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytics;
mod schema;
mod stats;
mod tree;

pub use analytics::{Analytics, OrderKey, OutputItem};
pub use schema::{
    ColumnDef, ColumnRef, ColumnRole, Predicate, Schema, SchemaBuilder, TableDef, TableSlot,
    Visibility,
};
pub use stats::{ColumnStats, Histogram, SchemaStats, TableStats};
pub use tree::TreeSchema;
