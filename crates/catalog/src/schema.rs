//! Tables, columns, visibility and the schema builder.

use std::fmt;

use ghostdb_types::{ColumnId, DataType, GhostError, Result, ScalarOp, TableId, Value, Wire};

/// Where a column's values may live (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// May be stored on the PC or a public server; spy-observable.
    Visible,
    /// Lives only on the smart USB device; never leaves it.
    Hidden,
}

impl Visibility {
    /// True for [`Visibility::Hidden`].
    pub fn is_hidden(self) -> bool {
        matches!(self, Visibility::Hidden)
    }
}

/// Structural role of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnRole {
    /// The table's primary key (dense surrogate; replicated on device).
    PrimaryKey,
    /// Foreign key referencing another table's primary key.
    ForeignKey(TableId),
    /// Ordinary attribute.
    Attribute,
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name as declared.
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// Hidden or visible.
    pub visibility: Visibility,
    /// Key/attribute role.
    pub role: ColumnRole,
}

/// One table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name as declared.
    pub name: String,
    /// Optional short alias used by the demo schema (e.g. `Pre`).
    pub alias: Option<String>,
    /// Columns in declaration order; column 0 is always the primary key.
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Resolve a column by name (ASCII case-insensitive).
    pub fn column(&self, name: &str) -> Option<(ColumnId, &ColumnDef)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name.eq_ignore_ascii_case(name))
            .map(|(i, c)| (ColumnId(i as u16), c))
    }

    /// The primary-key column id (always column 0 by construction).
    pub fn pk_column(&self) -> ColumnId {
        ColumnId(0)
    }

    /// Foreign-key columns with their referenced tables.
    pub fn foreign_keys(&self) -> impl Iterator<Item = (ColumnId, TableId)> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c.role {
                ColumnRole::ForeignKey(t) => Some((ColumnId(i as u16), t)),
                _ => None,
            })
    }
}

/// A fully resolved column reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Column within the table.
    pub column: ColumnId,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// A bound selection predicate `column OP constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The column being tested.
    pub column: ColumnRef,
    /// Comparison operator.
    pub op: ScalarOp,
    /// Comparison constant from the query text.
    pub value: Value,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(table: TableId, column: ColumnId, op: ScalarOp, value: Value) -> Self {
        Predicate {
            column: ColumnRef { table, column },
            op,
            value,
        }
    }
}

/// A validated schema: tables, columns, visibility and key structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    tables: Vec<TableDef>,
}

impl Schema {
    /// All tables, indexed by [`TableId`].
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Look up a table definition.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.index()]
    }

    /// Resolve a table by name or alias (ASCII case-insensitive).
    pub fn resolve_table(&self, name: &str) -> Result<TableId> {
        self.tables
            .iter()
            .position(|t| {
                t.name.eq_ignore_ascii_case(name)
                    || t.alias
                        .as_deref()
                        .map(|a| a.eq_ignore_ascii_case(name))
                        .unwrap_or(false)
            })
            .map(|i| TableId(i as u16))
            .ok_or_else(|| GhostError::catalog(format!("unknown table {name:?}")))
    }

    /// Resolve a column within a table.
    pub fn resolve_column(&self, table: TableId, name: &str) -> Result<ColumnRef> {
        let t = self.table(table);
        let (column, _) = t
            .column(name)
            .ok_or_else(|| GhostError::catalog(format!("unknown column {}.{name}", t.name)))?;
        Ok(ColumnRef { table, column })
    }

    /// The definition behind a column reference.
    pub fn column_def(&self, cref: ColumnRef) -> &ColumnDef {
        &self.table(cref.table).columns[cref.column.index()]
    }

    /// Is the referenced column hidden?
    pub fn is_hidden(&self, cref: ColumnRef) -> bool {
        self.column_def(cref).visibility.is_hidden()
    }

    /// Pretty name `Table.Column`.
    pub fn column_name(&self, cref: ColumnRef) -> String {
        format!(
            "{}.{}",
            self.table(cref.table).name,
            self.column_def(cref).name
        )
    }

    /// All hidden column references, in table order. These (plus every
    /// primary key) are what the device stores.
    pub fn hidden_columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for (ci, c) in t.columns.iter().enumerate() {
                if c.visibility.is_hidden() {
                    out.push(ColumnRef {
                        table: TableId(ti as u16),
                        column: ColumnId(ci as u16),
                    });
                }
            }
        }
        out
    }

    /// All visible non-key attribute columns (what the PC stores).
    pub fn visible_columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for (ci, c) in t.columns.iter().enumerate() {
                if !c.visibility.is_hidden() {
                    out.push(ColumnRef {
                        table: TableId(ti as u16),
                        column: ColumnId(ci as u16),
                    });
                }
            }
        }
        out
    }
}

// --- durable-image codec -------------------------------------------------
//
// The sealed device image (ghostdb-persist) serializes the bound schema
// with the same self-contained [`Wire`] codec the bus uses, so a mounted
// database needs no DDL text. These bytes live on the device's NAND
// only; they never cross the spied link.

impl Wire for Visibility {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.is_hidden() as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(if bool::decode(buf)? {
            Visibility::Hidden
        } else {
            Visibility::Visible
        })
    }
}

impl Wire for ColumnRole {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ColumnRole::PrimaryKey => out.push(0),
            ColumnRole::ForeignKey(t) => {
                out.push(1);
                t.encode(out);
            }
            ColumnRole::Attribute => out.push(2),
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(ColumnRole::PrimaryKey),
            1 => Ok(ColumnRole::ForeignKey(TableId::decode(buf)?)),
            2 => Ok(ColumnRole::Attribute),
            t => Err(GhostError::corrupt(format!("column role tag {t}"))),
        }
    }
}

impl Wire for ColumnDef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.ty.encode(out);
        self.visibility.encode(out);
        self.role.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(ColumnDef {
            name: String::decode(buf)?,
            ty: DataType::decode(buf)?,
            visibility: Visibility::decode(buf)?,
            role: ColumnRole::decode(buf)?,
        })
    }
}

impl Wire for TableDef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.alias.encode(out);
        self.columns.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(TableDef {
            name: String::decode(buf)?,
            alias: Option::<String>::decode(buf)?,
            columns: Vec::<ColumnDef>::decode(buf)?,
        })
    }
}

impl Wire for Schema {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tables.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let schema = Schema {
            tables: Vec::<TableDef>::decode(buf)?,
        };
        for t in &schema.tables {
            for (_, target) in t.foreign_keys() {
                if target.index() >= schema.tables.len() {
                    return Err(GhostError::corrupt(format!(
                        "decoded schema: fk target {target} out of range"
                    )));
                }
            }
        }
        Ok(schema)
    }
}

/// One in-progress table: name, primary-key name, columns, and
/// `(column position, referenced table)` foreign keys.
type TableDraft = (String, Option<String>, Vec<ColumnDef>, Vec<(usize, String)>);

/// Builder assembling a validated [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    tables: Vec<TableDraft>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a table whose primary key column is `pk_name`.
    ///
    /// The primary key is always column 0, of type `INTEGER`, and — per
    /// the paper — replicated on the device regardless of visibility, so
    /// it is modelled as `Visible` (its values are the public join
    /// skeleton).
    pub fn table(&mut self, name: &str, pk_name: &str) -> TableSlot<'_> {
        self.tables.push((
            name.to_string(),
            None,
            vec![ColumnDef {
                name: pk_name.to_string(),
                ty: DataType::Integer,
                visibility: Visibility::Visible,
                role: ColumnRole::PrimaryKey,
            }],
            Vec::new(),
        ));
        let index = self.tables.len() - 1;
        TableSlot {
            builder: self,
            index,
        }
    }

    /// Validate and produce the schema.
    pub fn build(self) -> Result<Schema> {
        let names: Vec<String> = self.tables.iter().map(|t| t.0.clone()).collect();
        // Unique table names.
        for (i, n) in names.iter().enumerate() {
            if names[..i].iter().any(|m| m.eq_ignore_ascii_case(n)) {
                return Err(GhostError::catalog(format!("duplicate table {n:?}")));
            }
        }
        let resolve = |name: &str| -> Result<TableId> {
            names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(name))
                .map(|i| TableId(i as u16))
                .ok_or_else(|| {
                    GhostError::catalog(format!("foreign key references unknown table {name:?}"))
                })
        };
        let mut tables = Vec::new();
        for (name, alias, mut columns, fk_targets) in self.tables {
            // Unique column names within the table.
            for (i, c) in columns.iter().enumerate() {
                if columns[..i]
                    .iter()
                    .any(|d| d.name.eq_ignore_ascii_case(&c.name))
                {
                    return Err(GhostError::catalog(format!(
                        "duplicate column {}.{}",
                        name, c.name
                    )));
                }
            }
            for (idx, target) in fk_targets {
                let tid = resolve(&target)?;
                columns[idx].role = ColumnRole::ForeignKey(tid);
            }
            tables.push(TableDef {
                name,
                alias,
                columns,
            });
        }
        // Self-referencing FKs cannot form a tree.
        for (ti, t) in tables.iter().enumerate() {
            for (_, target) in t.foreign_keys() {
                if target.index() == ti {
                    return Err(GhostError::catalog(format!(
                        "table {} references itself",
                        t.name
                    )));
                }
            }
        }
        Ok(Schema { tables })
    }
}

/// Mutable handle onto one under-construction table.
#[derive(Debug)]
pub struct TableSlot<'a> {
    builder: &'a mut SchemaBuilder,
    index: usize,
}

impl TableSlot<'_> {
    /// Set a short alias.
    pub fn alias(self, alias: &str) -> Self {
        self.builder.tables[self.index].1 = Some(alias.to_string());
        self
    }

    /// Add an attribute column.
    pub fn column(self, name: &str, ty: DataType, vis: Visibility) -> Self {
        self.builder.tables[self.index].2.push(ColumnDef {
            name: name.to_string(),
            ty,
            visibility: vis,
            role: ColumnRole::Attribute,
        });
        self
    }

    /// Add a foreign-key column referencing table `target` (by name).
    pub fn foreign_key(self, name: &str, target: &str, vis: Visibility) -> Self {
        let cols = &mut self.builder.tables[self.index].2;
        cols.push(ColumnDef {
            name: name.to_string(),
            ty: DataType::Integer,
            visibility: vis,
            role: ColumnRole::ForeignKey(TableId(u16::MAX)),
        });
        let idx = cols.len() - 1;
        self.builder.tables[self.index]
            .3
            .push((idx, target.to_string()));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.table("Doctor", "DocID")
            .alias("Doc")
            .column("Name", DataType::Char(40), Visibility::Visible)
            .column("Country", DataType::Char(20), Visibility::Visible);
        b.table("Visit", "VisID")
            .alias("Vis")
            .column("Date", DataType::Date, Visibility::Visible)
            .column("Purpose", DataType::Char(100), Visibility::Hidden)
            .foreign_key("DocID", "Doctor", Visibility::Hidden);
        b.build().unwrap()
    }

    #[test]
    fn resolution_by_name_and_alias() {
        let s = demo_schema();
        let doc = s.resolve_table("doctor").unwrap();
        assert_eq!(doc, TableId(0));
        assert_eq!(s.resolve_table("Vis").unwrap(), TableId(1));
        assert!(s.resolve_table("Nurse").is_err());
        let cref = s.resolve_column(doc, "country").unwrap();
        assert_eq!(cref.column, ColumnId(2));
        assert!(s.resolve_column(doc, "Purpose").is_err());
    }

    #[test]
    fn pk_is_column_zero() {
        let s = demo_schema();
        let t = s.table(TableId(0));
        assert_eq!(t.pk_column(), ColumnId(0));
        assert_eq!(t.columns[0].role, ColumnRole::PrimaryKey);
        assert_eq!(t.columns[0].name, "DocID");
    }

    #[test]
    fn foreign_keys_resolve_to_table_ids() {
        let s = demo_schema();
        let visit = s.table(TableId(1));
        let fks: Vec<_> = visit.foreign_keys().collect();
        assert_eq!(fks, vec![(ColumnId(3), TableId(0))]);
    }

    #[test]
    fn hidden_column_listing() {
        let s = demo_schema();
        let hidden = s.hidden_columns();
        assert_eq!(hidden.len(), 2); // Purpose + DocID fk
        assert!(hidden
            .iter()
            .all(|c| s.column_def(*c).visibility.is_hidden()));
        assert_eq!(s.column_name(hidden[0]), "Visit.Purpose");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("T", "id");
        b.table("t", "id");
        assert!(b.build().is_err());

        let mut b = SchemaBuilder::new();
        b.table("T", "id")
            .column("x", DataType::Integer, Visibility::Visible)
            .column("X", DataType::Integer, Visibility::Hidden);
        assert!(b.build().is_err());
    }

    #[test]
    fn unknown_fk_target_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("T", "id")
            .foreign_key("other", "Missing", Visibility::Hidden);
        assert!(b.build().is_err());
    }

    #[test]
    fn self_reference_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("T", "id")
            .foreign_key("parent", "T", Visibility::Hidden);
        assert!(b.build().is_err());
    }
}
