//! Climbing indexes (paper §4, Figure 4).
//!
//! "The entry for 'Spain' in the Doctor.Country index is associated with
//! a list of Doctor identifiers, as usual, and also a list of Visit
//! identifiers and a list of Prescription identifiers to precompute the
//! joins with all tables in the path from Doctor to the root table."
//!
//! Layout on flash:
//!
//! * a **directory** of fixed-width entries sorted by order key —
//!   `key (8B)` then, per level on the climb path, `offset (4B)` and
//!   `length (4B)` into the postings area;
//! * a **postings** area of ascending, deduplicated 4-byte row ids.
//!
//! Two flavours share the structure:
//!
//! * **value indexes** on hidden attribute columns (keys are order keys /
//!   dictionary codes; probed by binary search over flash);
//! * **key indexes** on a table's primary key (keys are the dense row ids
//!   themselves, so the directory is direct-addressed — `dense = true`).
//!   These translate a delegated visible id list up the tree, and give
//!   Cross-filtering its "combine selectivities before climbing" step.
//!
//! Range probes over several directory entries union their postings
//! through the external sorter — bounded RAM, honest flash costs.
//!
//! # LSM-style deltas (the post-load write path)
//!
//! The flash base built at load time is immutable; post-load inserts
//! land in a RAM-resident **delta** layered on top:
//!
//! * value indexes key their delta by the indexed column's **`Value`**
//!   (not its order key), because a fresh `CHAR` string may have no slot
//!   in the base dictionary's rank space — delta probes compare values
//!   directly ([`ClimbingIndex::lookup_pred`]);
//! * dense key indexes key their delta by row id
//!   ([`ClimbingIndex::insert_delta_key`]), and
//!   [`translate`](ClimbingIndex::translate) consults both layers.
//!
//! Every id an *insert* posting carries belongs to a row appended after
//! the base was built, so those delta ids are strictly greater than any
//! base posting id at the same level — insert-only unions are a simple
//! concatenation ([`PostingStream::WithTail`]), keeping streams
//! ascending without a merge.
//!
//! # Liveness and updates (full DML)
//!
//! Deletes never touch the index at all: tombstoned rows are filtered
//! out of result streams by the executor's liveness layer (a dead id in
//! a posting list is harmless — it can only lead to dead rows, by the
//! delete-time RESTRICT check). Updates do touch it: when the indexed
//! column of a row is overwritten, [`ClimbingIndex::reindex_value`]
//! removes the row (and its ancestor postings at every level) from the
//! old value's delta entry, **suppresses** them out of the flash base —
//! each id appears under exactly one key per level, so suppression by
//! id is sound — and re-posts them under the new value. Re-homed base
//! ids may interleave with base postings, so probes on a moved index
//! switch from tail concatenation to an ordered merge
//! ([`PostingStream::Merged`]).
//!
//! [`ClimbingIndex::flush`] rebuilds the directory + postings segments
//! with the delta merged in — re-keying base entries through the
//! dictionary remap a [`HiddenStore`] flush reports, dropping dead
//! dense keys, filtering suppressed and dead postings, and renumbering
//! every surviving id through the compaction's per-table remap — and
//! frees the old segments for the GC.
//!
//! [`HiddenStore`]: ghostdb_storage::HiddenStore

use std::collections::BTreeMap;

use ghostdb_catalog::{ColumnRef, TreeSchema};
use ghostdb_flash::{Segment, SegmentManifest, SegmentReader, SegmentWriter, Volume};
use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_storage::{Dataset, KeyRange, LoadEncoders};
use ghostdb_types::{
    GhostError, IdBlock, IdStream, Result, RowId, ScalarOp, TableId, Value, VecIdStream, Wire,
    BLOCK_CAP,
};

use crate::sort::{ExternalSorter, SortedStream};
use crate::wide_rows;

const KEY_BYTES: usize = 8;
const PER_LEVEL_BYTES: usize = 8; // u32 offset + u32 length

/// RAM-resident delta postings layered over the flash base.
#[derive(Debug, Clone)]
enum IndexDelta {
    /// Value indexes: keyed by the indexed column's value (delta strings
    /// may be outside the base dictionary's rank space).
    ByValue(Vec<(Value, Vec<Vec<u32>>)>),
    /// Dense key indexes: keyed by row id.
    ByKey(BTreeMap<u64, Vec<Vec<u32>>>),
}

/// A climbing index: an immutable flash base plus a RAM delta, plus —
/// since updates exist — per-level **suppression sets** of base posting
/// ids whose indexed value was overwritten (each id appears under
/// exactly one key per level, so suppressing by id alone is sound; the
/// id's new home is a delta posting under the new value).
///
/// `Clone` freezes the index for a snapshot session: the flash base
/// (directory + postings) is shared, the RAM delta and suppression
/// sets are copied.
#[derive(Debug, Clone)]
pub struct ClimbingIndex {
    volume: Volume,
    directory: Segment,
    postings: Segment,
    /// Climb path; `levels[0]` is the indexed table, last is the root.
    levels: Vec<TableId>,
    entries: u32,
    /// Directory is direct-addressed by key (key == entry position).
    dense: bool,
    /// Total postings per level (for cost estimation).
    level_postings: Vec<u64>,
    /// Un-flushed post-load insertions.
    delta: IndexDelta,
    /// Per level: sorted base posting ids an update moved away from
    /// their build-time entry (value indexes only; cleared by `flush`).
    suppressed: Vec<Vec<u32>>,
    /// True once an update re-homed a base id into the delta: delta ids
    /// may then interleave with base ids, so probes switch from tail
    /// concatenation to an ordered merge.
    moved: bool,
}

impl ClimbingIndex {
    fn entry_width(levels: usize) -> usize {
        KEY_BYTES + levels * PER_LEVEL_BYTES
    }

    /// Build a value index on a (hidden) attribute column.
    pub fn build_value_index(
        volume: &Volume,
        scope: &RamScope,
        tree: &TreeSchema,
        data: &Dataset,
        encoders: &LoadEncoders,
        cref: ColumnRef,
    ) -> Result<ClimbingIndex> {
        let table = cref.table;
        let values = &data.tables[table.index()].columns[cref.column.index()];
        let keys: Vec<u64> = values
            .iter()
            .map(|v| encoders.key_of(table, cref.column, v))
            .collect::<Result<_>>()?;
        Self::build_from_keys(volume, scope, tree, data, table, &keys, false)
    }

    /// Build the key index on `table`'s primary key (dense directory).
    pub fn build_key_index(
        volume: &Volume,
        scope: &RamScope,
        tree: &TreeSchema,
        data: &Dataset,
        table: TableId,
    ) -> Result<ClimbingIndex> {
        let n = data.row_count(table) as u64;
        let keys: Vec<u64> = (0..n).collect();
        Self::build_from_keys(volume, scope, tree, data, table, &keys, true)
    }

    /// Shared builder: `keys[r]` is the order key of row `r` of `table`.
    fn build_from_keys(
        volume: &Volume,
        scope: &RamScope,
        tree: &TreeSchema,
        data: &Dataset,
        table: TableId,
        keys: &[u64],
        dense: bool,
    ) -> Result<ClimbingIndex> {
        let levels = tree.climb_path(table);
        let root = tree.root();
        // Host-side (secure load): group per key, per level.
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<u64, Vec<Vec<u32>>> = BTreeMap::new();
        let n_levels = levels.len();
        // Level 0: the table's own rows.
        for (r, &k) in keys.iter().enumerate() {
            groups
                .entry(k)
                .or_insert_with(|| vec![Vec::new(); n_levels])[0]
                .push(r as u32);
        }
        // Ancestor levels come from one pass over the root's wide rows.
        if n_levels > 1 {
            let wide = wide_rows(tree, data, data.tables.len(), root)?;
            let t_ids = wide[table.index()]
                .as_ref()
                .ok_or_else(|| GhostError::catalog("table missing from root subtree"))?;
            for (root_row, &t_id) in t_ids.iter().enumerate() {
                let k = keys[t_id as usize];
                let lists = groups.get_mut(&k).expect("level-0 pass created every key");
                for (li, lt) in levels.iter().enumerate().skip(1) {
                    let id = if *lt == root {
                        root_row as u32
                    } else {
                        wide[lt.index()]
                            .as_ref()
                            .ok_or_else(|| GhostError::catalog("level missing from subtree"))?
                            [root_row]
                    };
                    lists[li].push(id);
                }
            }
        }
        if dense {
            // Dense directories must cover every key 0..n exactly once.
            debug_assert_eq!(groups.len(), keys.len());
        }
        // Write postings + directory.
        let mut postings_w = volume.writer(scope)?;
        let mut dir_w = volume.writer(scope)?;
        let mut level_postings = vec![0u64; n_levels];
        let mut written: u32 = 0;
        for (key, mut lists) in groups {
            dir_w.write(&key.to_le_bytes())?;
            for (li, list) in lists.iter_mut().enumerate() {
                list.sort_unstable();
                list.dedup();
                dir_w.write(&written.to_le_bytes())?;
                dir_w.write(&(list.len() as u32).to_le_bytes())?;
                for id in list.iter() {
                    postings_w.write(&id.to_le_bytes())?;
                }
                written += list.len() as u32;
                level_postings[li] += list.len() as u64;
            }
        }
        let directory = dir_w.finish()?;
        let postings = postings_w.finish()?;
        let entries = (directory.len() / Self::entry_width(n_levels) as u64) as u32;
        Ok(ClimbingIndex {
            volume: volume.clone(),
            directory,
            postings,
            levels,
            entries,
            dense,
            level_postings,
            delta: if dense {
                IndexDelta::ByKey(BTreeMap::new())
            } else {
                IndexDelta::ByValue(Vec::new())
            },
            suppressed: vec![Vec::new(); n_levels],
            moved: false,
        })
    }

    /// Record a post-load posting in a **value** index: the inserted row
    /// `id` (of the table at `level_table`) joins the entry for `value`
    /// (the indexed column's value on the relevant level-0 row).
    pub fn insert_delta_value(
        &mut self,
        value: &Value,
        level_table: TableId,
        id: RowId,
    ) -> Result<()> {
        let level = self.level_of(level_table)?;
        let n_levels = self.levels.len();
        let IndexDelta::ByValue(entries) = &mut self.delta else {
            return Err(GhostError::exec(
                "insert_delta_value requires a value index".to_string(),
            ));
        };
        let lists = match entries.iter_mut().find(|(v, _)| v == value) {
            Some((_, lists)) => lists,
            None => {
                entries.push((value.clone(), vec![Vec::new(); n_levels]));
                &mut entries.last_mut().expect("just pushed").1
            }
        };
        // New row ids grow monotonically, so each list stays ascending;
        // the same id can arrive only once per (value, level).
        if lists[level].last() != Some(&id.0) {
            lists[level].push(id.0);
        }
        Ok(())
    }

    /// Record a post-load posting in a **dense key** index: the inserted
    /// row `id` (of the table at `level_table`) joins the directory
    /// entry for `key` (a row id of the indexed table — possibly itself
    /// a delta row, which creates the entry).
    pub fn insert_delta_key(&mut self, key: u64, level_table: TableId, id: RowId) -> Result<()> {
        let level = self.level_of(level_table)?;
        let n_levels = self.levels.len();
        let IndexDelta::ByKey(entries) = &mut self.delta else {
            return Err(GhostError::exec(
                "insert_delta_key requires a dense key index".to_string(),
            ));
        };
        let lists = entries
            .entry(key)
            .or_insert_with(|| vec![Vec::new(); n_levels]);
        if lists[level].last() != Some(&id.0) {
            lists[level].push(id.0);
        }
        Ok(())
    }

    /// Un-flushed delta entries (observability / flush-trigger metric).
    pub fn delta_entries(&self) -> usize {
        match &self.delta {
            IndexDelta::ByValue(v) => v.len(),
            IndexDelta::ByKey(m) => m.len(),
        }
    }

    /// Any un-flushed state at all — delta entries or suppressions.
    pub fn has_pending(&self) -> bool {
        self.delta_entries() > 0 || self.suppressed.iter().any(|s| !s.is_empty())
    }

    /// Re-home postings after an `UPDATE` of the indexed column (value
    /// indexes only): `per_level_ids[li]` are the ids at level `li`
    /// joined to the updated row — the row itself at level 0, its
    /// referencing ancestors above. Each id is removed from any delta
    /// entry matching `old_value`, suppressed out of the flash base
    /// (where it can only appear under the old value's entry), and
    /// re-posted under `new_value`.
    pub fn reindex_value(
        &mut self,
        old_value: &Value,
        new_value: &Value,
        per_level_ids: &[Vec<u32>],
    ) -> Result<()> {
        let n_levels = self.levels.len();
        if per_level_ids.len() != n_levels {
            return Err(GhostError::exec(
                "reindex_value level arity mismatch".to_string(),
            ));
        }
        let IndexDelta::ByValue(entries) = &mut self.delta else {
            return Err(GhostError::exec(
                "reindex_value requires a value index".to_string(),
            ));
        };
        // Drop the moved ids from the old value's delta entry (if any).
        if let Some((_, lists)) = entries.iter_mut().find(|(v, _)| v == old_value) {
            for (li, ids) in per_level_ids.iter().enumerate() {
                lists[li].retain(|id| !ids.contains(id));
            }
        }
        // Suppress them out of the base (sorted insert; ids not present
        // in the base are harmlessly suppressed too).
        for (li, ids) in per_level_ids.iter().enumerate() {
            for &id in ids {
                if let Err(pos) = self.suppressed[li].binary_search(&id) {
                    self.suppressed[li].insert(pos, id);
                }
            }
        }
        // Re-post under the new value. Moved ids are arbitrary (base
        // rows included), so the list needs a sorted insert — and probes
        // must merge rather than concatenate from here on.
        let lists = match entries.iter_mut().find(|(v, _)| v == new_value) {
            Some((_, lists)) => lists,
            None => {
                entries.push((new_value.clone(), vec![Vec::new(); n_levels]));
                &mut entries.last_mut().expect("just pushed").1
            }
        };
        for (li, ids) in per_level_ids.iter().enumerate() {
            for &id in ids {
                if let Err(pos) = lists[li].binary_search(&id) {
                    lists[li].insert(pos, id);
                }
            }
        }
        self.moved = true;
        Ok(())
    }

    /// The climb path (level 0 = indexed table, last = root).
    pub fn levels(&self) -> &[TableId] {
        &self.levels
    }

    /// Position of `table` in the climb path.
    pub fn level_of(&self, table: TableId) -> Result<usize> {
        self.levels
            .iter()
            .position(|&t| t == table)
            .ok_or_else(|| GhostError::exec(format!("{table} is not on this index's climb path")))
    }

    /// Number of distinct keys.
    pub fn entry_count(&self) -> u32 {
        self.entries
    }

    /// Average postings per key at a level (cost estimation).
    pub fn avg_postings(&self, level: usize) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        self.level_postings[level] as f64 / self.entries as f64
    }

    /// Flash bytes occupied (directory + postings).
    pub fn flash_bytes(&self) -> u64 {
        self.directory.len() + self.postings.len()
    }

    fn entry_w(&self) -> usize {
        Self::entry_width(self.levels.len())
    }

    /// Read directory entry `idx` with a scratch cursor.
    fn read_entry(&self, cur: &mut DirCursor, idx: u32) -> Result<DirEntry> {
        let w = self.entry_w();
        let raw = cur.entry_bytes(self, idx)?;
        let key = u64::from_le_bytes(raw[..8].try_into().expect("8B"));
        let mut slots = Vec::with_capacity(self.levels.len());
        for li in 0..self.levels.len() {
            let base = KEY_BYTES + li * PER_LEVEL_BYTES;
            let off = u32::from_le_bytes(raw[base..base + 4].try_into().expect("4B"));
            let len = u32::from_le_bytes(raw[base + 4..base + 8].try_into().expect("4B"));
            slots.push((off, len));
        }
        debug_assert_eq!(raw.len(), w);
        Ok(DirEntry { key, slots })
    }

    /// First directory position with key >= `probe` (binary search on
    /// flash; direct computation for dense directories).
    fn lower_bound(&self, cur: &mut DirCursor, probe: u64) -> Result<u32> {
        if self.dense {
            return Ok(probe.min(self.entries as u64) as u32);
        }
        let mut lo = 0u32;
        let mut hi = self.entries;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = self.read_entry(cur, mid)?;
            if e.key < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Probe the index: stream the ascending, deduplicated ids at
    /// `level_table` for all keys in `range`.
    ///
    /// A single-key probe streams its posting list directly; a multi-key
    /// range unions the lists through the external sorter with
    /// `sort_ram` bytes of working memory.
    pub fn lookup(
        &self,
        scope: &RamScope,
        range: KeyRange,
        level_table: TableId,
        sort_ram: usize,
    ) -> Result<PostingStream> {
        let level = self.level_of(level_table)?;
        if self.entries == 0 {
            return Ok(PostingStream::empty());
        }
        let mut cur = DirCursor::new(scope, &self.volume)?;
        let start = self.lower_bound(&mut cur, range.lo)?;
        // Collect matching entries' slots.
        let mut slots: Vec<(u32, u32)> = Vec::new();
        let mut idx = start;
        while idx < self.entries {
            let e = self.read_entry(&mut cur, idx)?;
            if e.key > range.hi {
                break;
            }
            let s = e.slots[level];
            if s.1 > 0 {
                slots.push(s);
            }
            idx += 1;
        }
        drop(cur);
        match slots.len() {
            0 => Ok(PostingStream::empty()),
            1 => {
                let (off, len) = slots[0];
                let mut reader = self.volume.reader(scope, &self.postings)?;
                reader.seek(off as u64 * 4)?;
                Ok(PostingStream::Direct {
                    reader,
                    remaining: len as u64,
                })
            }
            _ => {
                // Union through the sorter; dedup while draining.
                let mut sorter: ExternalSorter<u32> =
                    ExternalSorter::new(&self.volume, scope, sort_ram)?;
                let mut reader = self.volume.reader(scope, &self.postings)?;
                let mut buf = [0u8; 4];
                for (off, len) in slots {
                    reader.seek(off as u64 * 4)?;
                    for _ in 0..len {
                        reader.read_exact(&mut buf)?;
                        sorter.push(u32::from_le_bytes(buf))?;
                    }
                }
                drop(reader);
                Ok(PostingStream::Sorted {
                    stream: sorter.finish()?,
                    last: None,
                })
            }
        }
    }

    /// Predicate-level probe: the delta-aware face of
    /// [`lookup`](Self::lookup). The flash base is probed with
    /// `base_range` (the key-space reduction computed by the hidden
    /// store; `None` = no base entry can match) and filtered against the
    /// suppression set; the RAM delta is matched by direct `op`/`value`
    /// comparison — exact even for strings outside the base dictionary.
    /// Inserted delta ids are strictly greater than base ids at the same
    /// level, so insert-only unions stay a concatenation
    /// ([`PostingStream::WithTail`]); once an update has re-homed base
    /// ids ([`reindex_value`](Self::reindex_value)) the union switches
    /// to an ordered merge ([`PostingStream::Merged`]).
    pub fn lookup_pred(
        &self,
        scope: &RamScope,
        op: ScalarOp,
        value: &Value,
        base_range: Option<KeyRange>,
        level_table: TableId,
        sort_ram: usize,
    ) -> Result<PostingStream> {
        let level = self.level_of(level_table)?;
        let base = match base_range {
            None => PostingStream::empty(),
            Some(r) => self.lookup(scope, r, level_table, sort_ram)?,
        };
        let base = if self.suppressed[level].is_empty() {
            base
        } else {
            PostingStream::Filtered {
                inner: Box::new(base),
                drop: self.suppressed[level].clone(),
                drop_pos: 0,
            }
        };
        let mut tail_ids: Vec<RowId> = Vec::new();
        if let IndexDelta::ByValue(entries) = &self.delta {
            for (v, lists) in entries {
                if op.matches(v, value)? {
                    tail_ids.extend(lists[level].iter().map(|&i| RowId(i)));
                }
            }
        }
        if tail_ids.is_empty() {
            return Ok(base);
        }
        tail_ids.sort_unstable();
        tail_ids.dedup();
        if self.moved {
            Ok(PostingStream::Merged {
                base: Box::new(base),
                base_next: None,
                primed: false,
                tail: tail_ids,
                tail_pos: 0,
            })
        } else {
            Ok(PostingStream::WithTail {
                base: Box::new(base),
                tail: VecIdStream::new(tail_ids),
                base_done: false,
            })
        }
    }

    /// Merge the RAM delta into rebuilt directory + postings segments
    /// and free the old ones.
    ///
    /// * `remap_key` re-keys base directory entries (the old→new code
    ///   map after a dictionary rebuild, or — for dense key indexes —
    ///   the indexed table's compaction remap; must be monotonic on the
    ///   surviving keys so the directory stays sorted). `None` drops the
    ///   entry and its postings: the dense key died.
    /// * `encode` resolves a delta entry's value to its key in the *new*
    ///   key space; `Ok(None)` means the value was dropped from the
    ///   rebuilt dictionary (its last referencing row died), which drops
    ///   the whole delta entry.
    /// * `map_id` filters and renumbers every posting id — base and
    ///   delta — per level: `None` drops a dead row's posting, `Some`
    ///   is its post-compaction id (identity when nothing died).
    ///
    /// Suppressed base postings (updates that re-homed ids into the
    /// delta) are dropped here and the suppression sets cleared — the
    /// moved ids are written from their delta entries instead.
    pub fn flush(
        &mut self,
        scope: &RamScope,
        remap_key: &dyn Fn(u64) -> Option<u64>,
        encode: &dyn Fn(&Value) -> Result<Option<u64>>,
        map_id: &dyn Fn(usize, u32) -> Option<u32>,
    ) -> Result<()> {
        let n_levels = self.levels.len();
        let suppressed = std::mem::replace(&mut self.suppressed, vec![Vec::new(); n_levels]);
        self.moved = false;
        let drained = std::mem::replace(
            &mut self.delta,
            if self.dense {
                IndexDelta::ByKey(BTreeMap::new())
            } else {
                IndexDelta::ByValue(Vec::new())
            },
        );
        // Delta entries in the *new* key space, dead keys dropped, every
        // posting filtered + renumbered. (BTreeMap order + monotone
        // remap keeps ByKey sorted; ByValue sorts after encoding.)
        let map_lists = |lists: Vec<Vec<u32>>| -> Vec<Vec<u32>> {
            lists
                .into_iter()
                .enumerate()
                .map(|(li, l)| l.into_iter().filter_map(|id| map_id(li, id)).collect())
                .collect()
        };
        let delta: Vec<(u64, Vec<Vec<u32>>)> = match drained {
            IndexDelta::ByKey(m) => m
                .into_iter()
                .filter_map(|(k, lists)| remap_key(k).map(|nk| (nk, map_lists(lists))))
                .collect(),
            IndexDelta::ByValue(v) => {
                let mut out = Vec::with_capacity(v.len());
                for (val, lists) in v {
                    let Some(key) = encode(&val)? else {
                        // The value died with its last referencing row
                        // and was dropped from the rebuilt dictionary:
                        // every posting under it (ancestor levels
                        // included) is a stale claim. Drop the entry.
                        continue;
                    };
                    out.push((key, map_lists(lists)));
                }
                out.sort_by_key(|(k, _)| *k);
                out
            }
        };

        fn write_entry(
            dir_w: &mut SegmentWriter,
            post_w: &mut SegmentWriter,
            key: u64,
            lists: &[Vec<u32>],
            written: &mut u32,
            level_postings: &mut [u64],
        ) -> Result<()> {
            dir_w.write(&key.to_le_bytes())?;
            for (li, list) in lists.iter().enumerate() {
                dir_w.write(&written.to_le_bytes())?;
                dir_w.write(&(list.len() as u32).to_le_bytes())?;
                for &id in list {
                    post_w.write(&id.to_le_bytes())?;
                }
                *written += list.len() as u32;
                level_postings[li] += list.len() as u64;
            }
            Ok(())
        }

        let mut dir_w = self.volume.writer(scope)?;
        let mut post_w = self.volume.writer(scope)?;
        let mut reader = self.volume.reader(scope, &self.postings)?;
        let mut cur = DirCursor::new(scope, &self.volume)?;
        let mut level_postings = vec![0u64; n_levels];
        let mut written: u32 = 0;
        let mut out_entries: u32 = 0;
        let mut di = 0usize;
        let mut buf4 = [0u8; 4];
        let mut merged_lists: Vec<Vec<u32>> = Vec::new();
        for idx in 0..self.entries {
            let e = self.read_entry(&mut cur, idx)?;
            let Some(new_key) = remap_key(e.key) else {
                continue; // dead dense key: entry and postings dropped
            };
            while di < delta.len() && delta[di].0 < new_key {
                write_entry(
                    &mut dir_w,
                    &mut post_w,
                    delta[di].0,
                    &delta[di].1,
                    &mut written,
                    &mut level_postings,
                )?;
                out_entries += 1;
                di += 1;
            }
            let extra = if di < delta.len() && delta[di].0 == new_key {
                di += 1;
                Some(&delta[di - 1].1)
            } else {
                None
            };
            // Filter + renumber the base postings (suppressed ids moved
            // into some delta entry and are not rewritten from here),
            // then append the delta list — in RAM first, because the
            // directory records each list's final length up front.
            merged_lists.clear();
            for li in 0..n_levels {
                let (off, len) = e.slots[li];
                let mut list = Vec::with_capacity(len as usize);
                reader.seek(off as u64 * 4)?;
                for _ in 0..len {
                    reader.read_exact(&mut buf4)?;
                    let id = u32::from_le_bytes(buf4);
                    if suppressed[li].binary_search(&id).is_ok() {
                        continue;
                    }
                    if let Some(new_id) = map_id(li, id) {
                        list.push(new_id);
                    }
                }
                if let Some(extra) = extra {
                    // Delta ids may interleave with base ids once
                    // updates moved rows; re-sort only when they do.
                    let needs_sort = matches!(
                        (list.last(), extra[li].first()),
                        (Some(a), Some(b)) if a >= b
                    );
                    list.extend_from_slice(&extra[li]);
                    if needs_sort {
                        list.sort_unstable();
                        list.dedup();
                    }
                }
                merged_lists.push(list);
            }
            write_entry(
                &mut dir_w,
                &mut post_w,
                new_key,
                &merged_lists,
                &mut written,
                &mut level_postings,
            )?;
            out_entries += 1;
        }
        while di < delta.len() {
            write_entry(
                &mut dir_w,
                &mut post_w,
                delta[di].0,
                &delta[di].1,
                &mut written,
                &mut level_postings,
            )?;
            out_entries += 1;
            di += 1;
        }
        drop(cur);
        drop(reader);
        let new_dir = dir_w.finish()?;
        let new_post = post_w.finish()?;
        let old_dir = std::mem::replace(&mut self.directory, new_dir);
        let old_post = std::mem::replace(&mut self.postings, new_post);
        self.volume.free(old_dir)?;
        self.volume.free(old_post)?;
        self.entries = out_entries;
        self.level_postings = level_postings;
        Ok(())
    }

    /// Translate an ascending id stream (over this index's level-0 table)
    /// to the ascending, deduplicated ids at `level_table`.
    ///
    /// Only valid on dense key indexes: each input id addresses its
    /// directory entry directly (base rows) or its delta entry (rows
    /// inserted after the last flush). This is the Pre-filtering step
    /// that turns a delegated list of, say, VisIDs into PreIDs.
    pub fn translate(
        &self,
        scope: &RamScope,
        input: &mut dyn IdStream,
        level_table: TableId,
        sort_ram: usize,
    ) -> Result<PostingStream> {
        if !self.dense {
            return Err(GhostError::exec(
                "translate requires a dense key index".to_string(),
            ));
        }
        let level = self.level_of(level_table)?;
        let mut cur = DirCursor::new(scope, &self.volume)?;
        let mut reader = self.volume.reader(scope, &self.postings)?;
        let mut sorter: ExternalSorter<u32> = ExternalSorter::new(&self.volume, scope, sort_ram)?;
        let mut buf = [0u8; 4];
        let mut block = IdBlock::new();
        loop {
            input.next_block(&mut block)?;
            if block.is_empty() {
                break;
            }
            for &id in block.as_slice() {
                let mut known = false;
                if id.0 < self.entries {
                    let e = self.read_entry(&mut cur, id.0)?;
                    debug_assert_eq!(e.key, id.0 as u64);
                    let (off, len) = e.slots[level];
                    reader.seek(off as u64 * 4)?;
                    for _ in 0..len {
                        reader.read_exact(&mut buf)?;
                        sorter.push(u32::from_le_bytes(buf))?;
                    }
                    known = true;
                }
                // Delta postings: additions to base entries and entries
                // for rows inserted after the base was built.
                if let IndexDelta::ByKey(m) = &self.delta {
                    if let Some(lists) = m.get(&(id.0 as u64)) {
                        for &pid in &lists[level] {
                            sorter.push(pid)?;
                        }
                        known = true;
                    }
                }
                if !known {
                    return Err(GhostError::exec(format!(
                        "translate input id {id} out of range ({} entries)",
                        self.entries
                    )));
                }
            }
        }
        Ok(PostingStream::Sorted {
            stream: sorter.finish()?,
            last: None,
        })
    }
}

/// Durable description of one climbing index: directory + postings
/// segment manifests plus the directory geometry. Carries no key or
/// posting bytes — those stay in the referenced flash segments.
#[derive(Debug, Clone, PartialEq)]
pub struct ClimbingManifest {
    /// The directory segment.
    pub directory: SegmentManifest,
    /// The postings segment.
    pub postings: SegmentManifest,
    /// Climb path (level 0 = indexed table, last = root).
    pub levels: Vec<TableId>,
    /// Distinct keys in the directory.
    pub entries: u32,
    /// Direct-addressed (dense key index) flag.
    pub dense: bool,
    /// Total postings per level (cost estimation).
    pub level_postings: Vec<u64>,
}

impl Wire for ClimbingManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.directory.encode(out);
        self.postings.encode(out);
        self.levels.encode(out);
        self.entries.encode(out);
        self.dense.encode(out);
        self.level_postings.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(ClimbingManifest {
            directory: SegmentManifest::decode(buf)?,
            postings: SegmentManifest::decode(buf)?,
            levels: Vec::<TableId>::decode(buf)?,
            entries: u32::decode(buf)?,
            dense: bool::decode(buf)?,
            level_postings: Vec::<u64>::decode(buf)?,
        })
    }
}

impl ClimbingIndex {
    /// Every logical flash page the index's base segments can read,
    /// appended to `out` (snapshot pinning; works with a pending
    /// delta, which needs no pins).
    pub fn collect_lpns(&self, out: &mut Vec<u32>) {
        out.extend(self.directory.manifest().lpns);
        out.extend(self.postings.manifest().lpns);
    }

    /// The index's durable manifest (requires an empty delta and no
    /// suppressions — seal flushes first; un-flushed mutations ride the
    /// WAL instead).
    pub fn manifest(&self) -> Result<ClimbingManifest> {
        if self.has_pending() {
            return Err(GhostError::exec(
                "climbing-index manifest requires a flushed delta".to_string(),
            ));
        }
        Ok(ClimbingManifest {
            directory: self.directory.manifest(),
            postings: self.postings.manifest(),
            levels: self.levels.clone(),
            entries: self.entries,
            dense: self.dense,
            level_postings: self.level_postings.clone(),
        })
    }

    /// Rebuild the index from a mounted volume and its sealed manifest.
    pub fn restore(volume: &Volume, m: &ClimbingManifest) -> Result<ClimbingIndex> {
        if m.levels.is_empty() || m.level_postings.len() != m.levels.len() {
            return Err(GhostError::corrupt(
                "climbing manifest level shape is inconsistent",
            ));
        }
        let directory = volume.restore_manifest(&m.directory)?;
        if directory.len() != m.entries as u64 * Self::entry_width(m.levels.len()) as u64 {
            return Err(GhostError::corrupt(
                "climbing manifest entry count disagrees with directory length",
            ));
        }
        Ok(ClimbingIndex {
            volume: volume.clone(),
            directory,
            postings: volume.restore_manifest(&m.postings)?,
            levels: m.levels.clone(),
            entries: m.entries,
            dense: m.dense,
            level_postings: m.level_postings.clone(),
            delta: if m.dense {
                IndexDelta::ByKey(BTreeMap::new())
            } else {
                IndexDelta::ByValue(Vec::new())
            },
            suppressed: vec![Vec::new(); m.levels.len()],
            moved: false,
        })
    }
}

#[derive(Debug)]
struct DirEntry {
    key: u64,
    /// Per level: (offset, length) in posting elements.
    slots: Vec<(u32, u32)>,
}

/// Page-buffered directory reader.
#[derive(Debug)]
struct DirCursor {
    buf: Vec<u8>,
    buf_page: u64,
    _ram: ScopedGuard,
}

impl DirCursor {
    fn new(scope: &RamScope, volume: &Volume) -> Result<DirCursor> {
        let page = volume.page_size();
        let guard = scope.alloc(page)?;
        Ok(DirCursor {
            buf: vec![0u8; page],
            buf_page: u64::MAX,
            _ram: guard,
        })
    }

    /// Bytes of directory entry `idx` (copied out of the buffered page).
    fn entry_bytes(&mut self, index: &ClimbingIndex, idx: u32) -> Result<Vec<u8>> {
        let w = index.entry_w();
        let start = idx as u64 * w as u64;
        let page_size = self.buf.len() as u64;
        let first = start / page_size;
        let last = (start + w as u64 - 1) / page_size;
        if first == last {
            if self.buf_page != first {
                let page_start = first * page_size;
                let len = page_size.min(index.directory.len() - page_start) as usize;
                index
                    .volume
                    .read_at(&index.directory, page_start, &mut self.buf[..len])?;
                self.buf_page = first;
            }
            let off = (start - first * page_size) as usize;
            Ok(self.buf[off..off + w].to_vec())
        } else {
            let mut raw = vec![0u8; w];
            index.volume.read_at(&index.directory, start, &mut raw)?;
            Ok(raw)
        }
    }
}

/// Ascending, deduplicated id stream out of a climbing-index probe.
#[derive(Debug)]
pub enum PostingStream {
    /// Single posting list, already sorted and deduplicated at build time.
    Direct {
        /// Reader positioned at the list start.
        reader: SegmentReader,
        /// Ids left to yield.
        remaining: u64,
    },
    /// Union of several lists (or a translation), deduplicated on the fly.
    Sorted {
        /// The merged stream.
        stream: SortedStream<u32>,
        /// Last id yielded (for dedup).
        last: Option<u32>,
    },
    /// A flash-base stream followed by RAM-delta ids. Every tail id is
    /// greater than every base id (delta rows postdate the base build),
    /// so concatenation preserves ascending order.
    WithTail {
        /// The flash-base stream.
        base: Box<PostingStream>,
        /// Ascending, deduplicated delta ids.
        tail: VecIdStream,
        /// True once the base stream is exhausted.
        base_done: bool,
    },
    /// An ordered union of a flash-base stream and RAM-delta ids that
    /// may interleave (updates re-home base ids into the delta, so the
    /// concatenation guarantee is gone). Deduplicates on the fly.
    Merged {
        /// The flash-base stream.
        base: Box<PostingStream>,
        /// One-id lookahead into `base`.
        base_next: Option<RowId>,
        /// Whether `base_next` is valid.
        primed: bool,
        /// Ascending, deduplicated delta ids.
        tail: Vec<RowId>,
        /// Cursor into `tail`.
        tail_pos: usize,
    },
    /// A base stream minus a suppression set (ids whose indexed value
    /// was overwritten since the last flush).
    Filtered {
        /// The underlying stream.
        inner: Box<PostingStream>,
        /// Sorted ids to drop.
        drop: Vec<u32>,
        /// Cursor into `drop` (both streams ascend).
        drop_pos: usize,
    },
    /// Provably empty result.
    Empty,
}

impl PostingStream {
    /// The empty stream.
    pub fn empty() -> PostingStream {
        PostingStream::Empty
    }
}

/// Advance a sorted drop-list cursor past ids `< id`; true if `id` is
/// in the list.
#[inline]
fn dropped(drop: &[u32], pos: &mut usize, id: RowId) -> bool {
    while *pos < drop.len() && drop[*pos] < id.0 {
        *pos += 1;
    }
    *pos < drop.len() && drop[*pos] == id.0
}

impl IdStream for PostingStream {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        match self {
            PostingStream::Empty => Ok(None),
            PostingStream::Filtered {
                inner,
                drop,
                drop_pos,
            } => {
                while let Some(id) = inner.next_id()? {
                    if !dropped(drop, drop_pos, id) {
                        return Ok(Some(id));
                    }
                }
                Ok(None)
            }
            PostingStream::Merged {
                base,
                base_next,
                primed,
                tail,
                tail_pos,
            } => {
                if !*primed {
                    *base_next = base.next_id()?;
                    *primed = true;
                }
                let t = tail.get(*tail_pos).copied();
                match (*base_next, t) {
                    (None, None) => Ok(None),
                    (Some(b), None) => {
                        *base_next = base.next_id()?;
                        Ok(Some(b))
                    }
                    (None, Some(t)) => {
                        *tail_pos += 1;
                        Ok(Some(t))
                    }
                    (Some(b), Some(t)) => {
                        if b <= t {
                            *base_next = base.next_id()?;
                            if b == t {
                                *tail_pos += 1;
                            }
                            Ok(Some(b))
                        } else {
                            *tail_pos += 1;
                            Ok(Some(t))
                        }
                    }
                }
            }
            PostingStream::Direct { reader, remaining } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                let mut buf = [0u8; 4];
                reader.read_exact(&mut buf)?;
                *remaining -= 1;
                Ok(Some(RowId(u32::from_le_bytes(buf))))
            }
            PostingStream::Sorted { stream, last } => {
                while let Some(v) = stream.next_rec()? {
                    if Some(v) != *last {
                        *last = Some(v);
                        return Ok(Some(RowId(v)));
                    }
                }
                Ok(None)
            }
            PostingStream::WithTail {
                base,
                tail,
                base_done,
            } => {
                if !*base_done {
                    if let Some(id) = base.next_id()? {
                        return Ok(Some(id));
                    }
                    *base_done = true;
                }
                tail.next_id()
            }
        }
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        // The ordered merge interleaves two cursors; fill it id-at-a-time
        // (the inputs still serve their own blocks underneath).
        if matches!(self, PostingStream::Merged { .. }) {
            block.clear();
            while !block.is_full() {
                match self.next_id()? {
                    Some(id) => block.push(id),
                    None => break,
                }
            }
            return Ok(());
        }
        block.clear();
        match self {
            PostingStream::Merged { .. } => unreachable!("handled above"),
            PostingStream::Filtered {
                inner,
                drop,
                drop_pos,
            } => loop {
                inner.next_block(block)?;
                if block.is_empty() {
                    return Ok(());
                }
                block.retain(|id| !dropped(drop, drop_pos, id));
                if !block.is_empty() {
                    return Ok(());
                }
            },
            PostingStream::Empty => Ok(()),
            PostingStream::WithTail {
                base,
                tail,
                base_done,
            } => {
                if !*base_done {
                    base.next_block(block)?;
                    if !block.is_empty() {
                        return Ok(());
                    }
                    *base_done = true;
                }
                tail.next_block(block)
            }
            PostingStream::Direct { reader, remaining } => {
                // One chunked flash read per buffer instead of one
                // virtual call + 4-byte read per id.
                let take = (*remaining).min(BLOCK_CAP as u64) as usize;
                reader.read_ids_into(take, block)?;
                *remaining -= take as u64;
                Ok(())
            }
            PostingStream::Sorted { stream, last } => {
                while !block.is_full() {
                    match stream.next_rec()? {
                        None => break,
                        Some(v) if Some(v) == *last => continue,
                        Some(v) => {
                            *last = Some(v);
                            block.push(RowId(v));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        match self {
            PostingStream::Empty => Ok(None),
            PostingStream::Filtered {
                inner,
                drop,
                drop_pos,
            } => {
                let mut cur = inner.seek_at_least(target)?;
                while let Some(id) = cur {
                    if !dropped(drop, drop_pos, id) {
                        return Ok(Some(id));
                    }
                    cur = inner.next_id()?;
                }
                Ok(None)
            }
            PostingStream::Merged {
                base,
                base_next,
                primed,
                tail,
                tail_pos,
            } => {
                if !*primed || base_next.is_none_or(|b| b < target) {
                    *base_next = base.seek_at_least(target)?;
                    *primed = true;
                }
                *tail_pos += tail[*tail_pos..].partition_point(|&t| t < target);
                let t = tail.get(*tail_pos).copied();
                match (*base_next, t) {
                    (None, None) => Ok(None),
                    (Some(b), None) => {
                        *base_next = base.next_id()?;
                        Ok(Some(b))
                    }
                    (None, Some(t)) => {
                        *tail_pos += 1;
                        Ok(Some(t))
                    }
                    (Some(b), Some(t)) => {
                        if b <= t {
                            *base_next = base.next_id()?;
                            if b == t {
                                *tail_pos += 1;
                            }
                            Ok(Some(b))
                        } else {
                            *tail_pos += 1;
                            Ok(Some(t))
                        }
                    }
                }
            }
            PostingStream::WithTail {
                base,
                tail,
                base_done,
            } => {
                if !*base_done {
                    if let Some(id) = base.seek_at_least(target)? {
                        return Ok(Some(id));
                    }
                    *base_done = true;
                }
                tail.seek_at_least(target)
            }
            PostingStream::Direct { reader, remaining } => {
                // The list is sorted and fixed-width on flash: gallop
                // from the cursor, then binary-search the bracketing
                // window, skipping whole posting pages.
                if *remaining == 0 {
                    return Ok(None);
                }
                let base = reader.position();
                let mut buf = [0u8; 4];
                let mut id_at = |j: u64, reader: &mut SegmentReader| -> Result<u32> {
                    reader.seek(base + j * 4)?;
                    reader.read_exact(&mut buf)?;
                    Ok(u32::from_le_bytes(buf))
                };
                // Gallop: find the first probe >= target.
                let mut step = 1u64;
                let mut lo = 0u64; // ids at [0, lo) are all < target
                let mut hi = *remaining;
                loop {
                    let probe = lo + step;
                    if probe >= *remaining {
                        break;
                    }
                    if id_at(probe - 1, reader)? < target.0 {
                        lo = probe;
                        step *= 2;
                    } else {
                        hi = probe;
                        break;
                    }
                }
                // Binary search in [lo, hi).
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if id_at(mid, reader)? < target.0 {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo >= *remaining {
                    *remaining = 0;
                    return Ok(None);
                }
                let found = id_at(lo, reader)?;
                *remaining -= lo + 1;
                Ok(Some(RowId(found)))
            }
            PostingStream::Sorted { .. } => {
                // Merge-of-runs streams cannot seek; scan forward.
                while let Some(id) = self.next_id()? {
                    if id >= target {
                        return Ok(Some(id));
                    }
                }
                Ok(None)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PostingStream::Empty => (0, Some(0)),
            PostingStream::Direct { remaining, .. } => {
                (*remaining as usize, Some(*remaining as usize))
            }
            // Duplicates collapse while draining, so only an upper bound.
            PostingStream::Sorted { stream, .. } => (0, Some(stream.len() as usize)),
            PostingStream::WithTail { base, tail, .. } => {
                let (blo, bhi) = base.size_hint();
                let (tlo, thi) = tail.size_hint();
                (blo + tlo, bhi.zip(thi).map(|(b, t)| b + t))
            }
            // Duplicates collapse in the merge; dropped ids shrink the
            // filter: upper bounds only.
            PostingStream::Merged {
                base,
                tail,
                tail_pos,
                ..
            } => {
                let (_, bhi) = base.size_hint();
                (0, bhi.map(|b| b + (tail.len() - tail_pos)))
            }
            PostingStream::Filtered { inner, .. } => (0, inner.size_hint().1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{Schema, SchemaBuilder, Visibility};
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_storage::HiddenStore;
    use ghostdb_types::{collect_ids, DataType, FlashConfig, SimClock, Value};

    /// Doctor <- Visit <- Prescription chain with country values.
    fn setup() -> (Volume, RamScope, Schema, TreeSchema, Dataset, LoadEncoders) {
        let mut b = SchemaBuilder::new();
        b.table("Doctor", "DocID")
            .column("Country", DataType::Char(10), Visibility::Hidden);
        b.table("Visit", "VisID")
            .foreign_key("DocID", "Doctor", Visibility::Hidden);
        b.table("Prescription", "PreID")
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        let schema = b.build().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();
        let countries = ["France", "Spain", "USA"];
        let mut data = Dataset::empty(&schema);
        for i in 0..6i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(countries[(i % 3) as usize].into()),
                ],
            )
            .unwrap();
        }
        for i in 0..12i64 {
            data.push_row(TableId(1), vec![Value::Int(i), Value::Int(i % 6)])
                .unwrap();
        }
        for i in 0..24i64 {
            data.push_row(TableId(2), vec![Value::Int(i), Value::Int(i % 12)])
                .unwrap();
        }
        let cfg = FlashConfig {
            page_size: 128,
            pages_per_block: 8,
            num_blocks: 256,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, SimClock::new()));
        let scope = RamScope::new(&RamBudget::new(64 * 1024));
        let (_store, encoders) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();
        (volume, scope, schema, tree, data, encoders)
    }

    fn ids(v: Vec<u32>) -> Vec<RowId> {
        v.into_iter().map(RowId).collect()
    }

    #[test]
    fn value_index_level0_postings() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        assert_eq!(idx.entry_count(), 3); // France, Spain, USA
                                          // Spain = doctors 1 and 4.
        let spain = enc
            .key_of(
                TableId(0),
                ghostdb_types::ColumnId(1),
                &Value::Text("Spain".into()),
            )
            .unwrap();
        let range = KeyRange {
            lo: spain,
            hi: spain,
        };
        let mut s = idx.lookup(&scope, range, TableId(0), 4096).unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![1, 4]));
    }

    #[test]
    fn value_index_climbs_to_all_levels() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        assert_eq!(idx.levels(), &[TableId(0), TableId(1), TableId(2)]);
        let spain = enc
            .key_of(
                TableId(0),
                ghostdb_types::ColumnId(1),
                &Value::Text("Spain".into()),
            )
            .unwrap();
        let range = KeyRange {
            lo: spain,
            hi: spain,
        };
        // Visits of doctors {1,4}: visit v has doctor v%6 -> {1,4,7,10}.
        let mut s = idx.lookup(&scope, range, TableId(1), 4096).unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![1, 4, 7, 10]));
        // Prescriptions of those visits: p has visit p%12 -> {1,4,7,10,13,16,19,22}.
        let mut s = idx.lookup(&scope, range, TableId(2), 4096).unwrap();
        assert_eq!(
            collect_ids(&mut s).unwrap(),
            ids(vec![1, 4, 7, 10, 13, 16, 19, 22])
        );
    }

    #[test]
    fn range_lookup_unions_postings() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        // Range covering France + Spain (codes 0 and 1).
        let range = KeyRange { lo: 0, hi: 1 };
        let mut s = idx.lookup(&scope, range, TableId(0), 4096).unwrap();
        // France: doctors 0,3; Spain: 1,4.
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![0, 1, 3, 4]));
        // Empty range.
        let mut s = idx
            .lookup(&scope, KeyRange { lo: 99, hi: 120 }, TableId(0), 4096)
            .unwrap();
        assert!(collect_ids(&mut s).unwrap().is_empty());
    }

    #[test]
    fn key_index_translates_up_the_tree() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        // Key index on Visit: levels Vis -> Pre.
        let idx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        assert_eq!(idx.entry_count(), 12);
        // Translate visits {0, 5} to prescriptions: p%12 in {0,5} ->
        // {0,12} and {5,17}.
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![0, 5]));
        let mut out = idx.translate(&scope, &mut input, TableId(2), 4096).unwrap();
        assert_eq!(collect_ids(&mut out).unwrap(), ids(vec![0, 5, 12, 17]));
    }

    #[test]
    fn translate_dedups_outputs() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        // Key index on Doctor: levels Doc -> Vis -> Pre.
        let idx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(0)).unwrap();
        // Doctors {1,4} both map to visits {1,4,7,10}; translation must
        // dedup shared ancestors.
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![1, 4]));
        let mut out = idx.translate(&scope, &mut input, TableId(1), 4096).unwrap();
        assert_eq!(collect_ids(&mut out).unwrap(), ids(vec![1, 4, 7, 10]));
    }

    #[test]
    fn translate_rejects_value_indexes_and_bad_ids() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let vidx =
            ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![0]));
        assert!(vidx
            .translate(&scope, &mut input, TableId(2), 4096)
            .is_err());

        let kidx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![99]));
        assert!(kidx
            .translate(&scope, &mut input, TableId(2), 4096)
            .is_err());
    }

    #[test]
    fn level_of_rejects_off_path_tables() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        let idx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        assert!(idx.level_of(TableId(0)).is_err()); // Doctor below Visit
        assert!(idx.level_of(TableId(2)).is_ok());
    }

    #[test]
    fn direct_posting_stream_blocks_and_seeks() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        let spain = enc
            .key_of(
                TableId(0),
                ghostdb_types::ColumnId(1),
                &Value::Text("Spain".into()),
            )
            .unwrap();
        let range = KeyRange {
            lo: spain,
            hi: spain,
        };
        // Single-key probe = Direct stream; Prescription level has
        // postings {1,4,7,10,13,16,19,22}.
        let mut s = idx.lookup(&scope, range, TableId(2), 4096).unwrap();
        assert!(matches!(s, PostingStream::Direct { .. }));
        let mut b = IdBlock::new();
        s.next_block(&mut b).unwrap();
        assert_eq!(b.as_slice(), &ids(vec![1, 4, 7, 10, 13, 16, 19, 22])[..]);

        // Galloping seek on flash skips ids without yielding them, and
        // lands on the same answers as the scalar fallback.
        for (target, expect) in [
            (0u32, Some(1u32)),
            (1, Some(1)),
            (2, Some(4)),
            (11, Some(13)),
            (22, Some(22)),
            (23, None),
        ] {
            let mut fast = idx.lookup(&scope, range, TableId(2), 4096).unwrap();
            let got = fast.seek_at_least(RowId(target)).unwrap();
            assert_eq!(got, expect.map(RowId), "seek {target}");
            let mut slow =
                ghostdb_types::ScalarFallback(idx.lookup(&scope, range, TableId(2), 4096).unwrap());
            assert_eq!(slow.seek_at_least(RowId(target)).unwrap(), got);
            // After an in-range seek, the stream resumes past the hit.
            if got.is_some() {
                assert_eq!(fast.next_id().unwrap(), slow.next_id().unwrap());
            }
        }
        // Seeking an exhausted/empty stream stays None.
        let mut s = PostingStream::empty();
        assert_eq!(s.seek_at_least(RowId(0)).unwrap(), None);
    }

    #[test]
    fn value_index_delta_union_and_flush() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let mut idx =
            ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        // Simulate inserting visit 12 under a Spain doctor, and visit 13
        // under a doctor whose country the base dictionary lacks.
        idx.insert_delta_value(&Value::Text("Spain".into()), TableId(1), RowId(12))
            .unwrap();
        idx.insert_delta_value(&Value::Text("Atlantis".into()), TableId(1), RowId(13))
            .unwrap();
        assert_eq!(idx.delta_entries(), 2);
        // Base ∪ delta through the value-exact probe.
        let spain = KeyRange { lo: 1, hi: 1 };
        let mut s = idx
            .lookup_pred(
                &scope,
                ghostdb_types::ScalarOp::Eq,
                &Value::Text("Spain".into()),
                Some(spain),
                TableId(1),
                4096,
            )
            .unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![1, 4, 7, 10, 12]));
        // Delta-only string: no base range at all.
        let mut s = idx
            .lookup_pred(
                &scope,
                ghostdb_types::ScalarOp::Eq,
                &Value::Text("Atlantis".into()),
                None,
                TableId(1),
                4096,
            )
            .unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![13]));

        // Flush under a rebuilt dictionary [Atlantis, France, Spain, USA]:
        // base codes shift by one, Atlantis takes rank 0.
        let remap = |k: u64| Some(k + 1);
        let encode = |v: &Value| -> Result<Option<u64>> {
            Ok(Some(match v.as_text().unwrap() {
                "Atlantis" => 0,
                "France" => 1,
                "Spain" => 2,
                "USA" => 3,
                other => panic!("unexpected {other}"),
            }))
        };
        idx.flush(&scope, &remap, &encode, &|_, id| Some(id))
            .unwrap();
        assert_eq!(idx.entry_count(), 4);
        assert_eq!(idx.delta_entries(), 0);
        let mut s = idx
            .lookup(&scope, KeyRange { lo: 2, hi: 2 }, TableId(1), 4096)
            .unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![1, 4, 7, 10, 12]));
        let mut s = idx
            .lookup(&scope, KeyRange { lo: 0, hi: 0 }, TableId(1), 4096)
            .unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![13]));
    }

    #[test]
    fn key_index_delta_translate_and_flush() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        // Key index on Visit: levels Vis -> Pre; 12 base entries.
        let mut idx =
            ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        // New prescription 24 references base visit 5; new visit 12
        // creates a fresh dense entry.
        idx.insert_delta_key(5, TableId(2), RowId(24)).unwrap();
        idx.insert_delta_key(12, TableId(1), RowId(12)).unwrap();
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![5, 12]));
        let mut out = idx.translate(&scope, &mut input, TableId(2), 4096).unwrap();
        // Base postings of visit 5 ({5, 17}) plus the delta posting 24;
        // visit 12 is delta-only and contributes nothing at Pre level.
        assert_eq!(collect_ids(&mut out).unwrap(), ids(vec![5, 17, 24]));

        idx.flush(
            &scope,
            &Some,
            &|_| panic!("no values in key index"),
            &|_, id| Some(id),
        )
        .unwrap();
        assert_eq!(idx.entry_count(), 13);
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![5, 12]));
        let mut out = idx.translate(&scope, &mut input, TableId(2), 4096).unwrap();
        assert_eq!(collect_ids(&mut out).unwrap(), ids(vec![5, 17, 24]));
        // Truly unknown ids still fail.
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![99]));
        assert!(idx.translate(&scope, &mut input, TableId(2), 4096).is_err());
    }

    /// Updates: suppression + delta re-posting keeps probes exact, the
    /// ordered merge keeps streams ascending when base ids re-enter via
    /// the delta, and the flush bakes everything back in.
    #[test]
    fn value_index_reindex_after_update() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let mut idx =
            ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        // Doctor 1 (Spain) moves to France. Its subtree: visits {1,7}
        // (v%6 == 1), prescriptions {1,7,13,19} (p%12 ∈ {1,7}).
        idx.reindex_value(
            &Value::Text("Spain".into()),
            &Value::Text("France".into()),
            &[vec![1], vec![1, 7], vec![1, 7, 13, 19]],
        )
        .unwrap();
        assert!(idx.has_pending());
        // Spain keeps doctor 4 only → visits {4, 10}.
        let spain = KeyRange { lo: 1, hi: 1 };
        let mut s = idx
            .lookup_pred(
                &scope,
                ghostdb_types::ScalarOp::Eq,
                &Value::Text("Spain".into()),
                Some(spain),
                TableId(1),
                4096,
            )
            .unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![4, 10]));
        // France (doctors {0,3}: visits {0,3,6,9}) gains doctor 1's
        // {1,7}, interleaved — the ordered merge keeps the stream
        // ascending.
        let france = KeyRange { lo: 0, hi: 0 };
        let mut s = idx
            .lookup_pred(
                &scope,
                ghostdb_types::ScalarOp::Eq,
                &Value::Text("France".into()),
                Some(france),
                TableId(1),
                4096,
            )
            .unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![0, 1, 3, 6, 7, 9]));
        // Seek semantics survive the merge.
        let mut s = idx
            .lookup_pred(
                &scope,
                ghostdb_types::ScalarOp::Eq,
                &Value::Text("France".into()),
                Some(france),
                TableId(1),
                4096,
            )
            .unwrap();
        assert_eq!(s.seek_at_least(RowId(2)).unwrap(), Some(RowId(3)));
        assert_eq!(s.next_id().unwrap(), Some(RowId(6)));

        // Flush with identity remaps bakes the move into the base.
        idx.flush(
            &scope,
            &Some,
            &|v| {
                Ok(Some(match v.as_text().unwrap() {
                    "France" => 0,
                    "Spain" => 1,
                    "USA" => 2,
                    other => panic!("unexpected {other}"),
                }))
            },
            &|_, id| Some(id),
        )
        .unwrap();
        assert!(!idx.has_pending());
        let mut s = idx.lookup(&scope, france, TableId(1), 4096).unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![0, 1, 3, 6, 7, 9]));
        let mut s = idx.lookup(&scope, spain, TableId(1), 4096).unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![4, 10]));
    }

    /// Deletes at flush: dead dense keys drop their entries, dead
    /// posting ids vanish everywhere, survivors renumber.
    #[test]
    fn key_index_flush_compacts_dead_rows() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        // Key index on Visit (12 entries), levels Vis → Pre.
        let mut idx =
            ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        // Kill visit 0 and prescriptions {0, 12} (its referencing rows).
        // Visit remap: 0→dead, i→i-1; prescription remap: drop {0,12}.
        let vis_remap = |k: u64| -> Option<u64> { k.checked_sub(1) };
        let pre_map = |id: u32| -> Option<u32> {
            match id {
                0 | 12 => None,
                i if i < 12 => Some(i - 1),
                i => Some(i - 2),
            }
        };
        idx.flush(
            &scope,
            &vis_remap,
            &|_| panic!("no values in key index"),
            &|li, id| match li {
                0 => vis_remap(id as u64).map(|n| n as u32),
                _ => pre_map(id),
            },
        )
        .unwrap();
        assert_eq!(idx.entry_count(), 11);
        // Old visit 5 is now entry 4; its prescriptions {5,17} became
        // {4, 15} under the prescription remap.
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![4]));
        let mut out = idx.translate(&scope, &mut input, TableId(2), 4096).unwrap();
        assert_eq!(collect_ids(&mut out).unwrap(), ids(vec![4, 15]));
    }

    #[test]
    fn flash_accounting_nonzero() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        assert!(idx.flash_bytes() > 0);
        assert!(idx.avg_postings(0) >= 1.0);
    }
}
