//! Climbing indexes (paper §4, Figure 4).
//!
//! "The entry for 'Spain' in the Doctor.Country index is associated with
//! a list of Doctor identifiers, as usual, and also a list of Visit
//! identifiers and a list of Prescription identifiers to precompute the
//! joins with all tables in the path from Doctor to the root table."
//!
//! Layout on flash:
//!
//! * a **directory** of fixed-width entries sorted by order key —
//!   `key (8B)` then, per level on the climb path, `offset (4B)` and
//!   `length (4B)` into the postings area;
//! * a **postings** area of ascending, deduplicated 4-byte row ids.
//!
//! Two flavours share the structure:
//!
//! * **value indexes** on hidden attribute columns (keys are order keys /
//!   dictionary codes; probed by binary search over flash);
//! * **key indexes** on a table's primary key (keys are the dense row ids
//!   themselves, so the directory is direct-addressed — `dense = true`).
//!   These translate a delegated visible id list up the tree, and give
//!   Cross-filtering its "combine selectivities before climbing" step.
//!
//! Range probes over several directory entries union their postings
//! through the external sorter — bounded RAM, honest flash costs.

use ghostdb_catalog::{ColumnRef, TreeSchema};
use ghostdb_flash::{Segment, SegmentReader, Volume};
use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_storage::{Dataset, KeyRange, LoadEncoders};
use ghostdb_types::{GhostError, IdBlock, IdStream, Result, RowId, TableId, BLOCK_CAP};

use crate::sort::{ExternalSorter, SortedStream};
use crate::wide_rows;

const KEY_BYTES: usize = 8;
const PER_LEVEL_BYTES: usize = 8; // u32 offset + u32 length

/// A climbing index on flash.
#[derive(Debug)]
pub struct ClimbingIndex {
    volume: Volume,
    directory: Segment,
    postings: Segment,
    /// Climb path; `levels[0]` is the indexed table, last is the root.
    levels: Vec<TableId>,
    entries: u32,
    /// Directory is direct-addressed by key (key == entry position).
    dense: bool,
    /// Total postings per level (for cost estimation).
    level_postings: Vec<u64>,
}

impl ClimbingIndex {
    fn entry_width(levels: usize) -> usize {
        KEY_BYTES + levels * PER_LEVEL_BYTES
    }

    /// Build a value index on a (hidden) attribute column.
    pub fn build_value_index(
        volume: &Volume,
        scope: &RamScope,
        tree: &TreeSchema,
        data: &Dataset,
        encoders: &LoadEncoders,
        cref: ColumnRef,
    ) -> Result<ClimbingIndex> {
        let table = cref.table;
        let values = &data.tables[table.index()].columns[cref.column.index()];
        let keys: Vec<u64> = values
            .iter()
            .map(|v| encoders.key_of(table, cref.column, v))
            .collect::<Result<_>>()?;
        Self::build_from_keys(volume, scope, tree, data, table, &keys, false)
    }

    /// Build the key index on `table`'s primary key (dense directory).
    pub fn build_key_index(
        volume: &Volume,
        scope: &RamScope,
        tree: &TreeSchema,
        data: &Dataset,
        table: TableId,
    ) -> Result<ClimbingIndex> {
        let n = data.row_count(table) as u64;
        let keys: Vec<u64> = (0..n).collect();
        Self::build_from_keys(volume, scope, tree, data, table, &keys, true)
    }

    /// Shared builder: `keys[r]` is the order key of row `r` of `table`.
    fn build_from_keys(
        volume: &Volume,
        scope: &RamScope,
        tree: &TreeSchema,
        data: &Dataset,
        table: TableId,
        keys: &[u64],
        dense: bool,
    ) -> Result<ClimbingIndex> {
        let levels = tree.climb_path(table);
        let root = tree.root();
        // Host-side (secure load): group per key, per level.
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<u64, Vec<Vec<u32>>> = BTreeMap::new();
        let n_levels = levels.len();
        // Level 0: the table's own rows.
        for (r, &k) in keys.iter().enumerate() {
            groups
                .entry(k)
                .or_insert_with(|| vec![Vec::new(); n_levels])[0]
                .push(r as u32);
        }
        // Ancestor levels come from one pass over the root's wide rows.
        if n_levels > 1 {
            let wide = wide_rows(tree, data, data.tables.len(), root)?;
            let t_ids = wide[table.index()]
                .as_ref()
                .ok_or_else(|| GhostError::catalog("table missing from root subtree"))?;
            for (root_row, &t_id) in t_ids.iter().enumerate() {
                let k = keys[t_id as usize];
                let lists = groups.get_mut(&k).expect("level-0 pass created every key");
                for (li, lt) in levels.iter().enumerate().skip(1) {
                    let id = if *lt == root {
                        root_row as u32
                    } else {
                        wide[lt.index()]
                            .as_ref()
                            .ok_or_else(|| GhostError::catalog("level missing from subtree"))?
                            [root_row]
                    };
                    lists[li].push(id);
                }
            }
        }
        if dense {
            // Dense directories must cover every key 0..n exactly once.
            debug_assert_eq!(groups.len(), keys.len());
        }
        // Write postings + directory.
        let mut postings_w = volume.writer(scope)?;
        let mut dir_w = volume.writer(scope)?;
        let mut level_postings = vec![0u64; n_levels];
        let mut written: u32 = 0;
        for (key, mut lists) in groups {
            dir_w.write(&key.to_le_bytes())?;
            for (li, list) in lists.iter_mut().enumerate() {
                list.sort_unstable();
                list.dedup();
                dir_w.write(&written.to_le_bytes())?;
                dir_w.write(&(list.len() as u32).to_le_bytes())?;
                for id in list.iter() {
                    postings_w.write(&id.to_le_bytes())?;
                }
                written += list.len() as u32;
                level_postings[li] += list.len() as u64;
            }
        }
        let directory = dir_w.finish()?;
        let postings = postings_w.finish()?;
        let entries = (directory.len() / Self::entry_width(n_levels) as u64) as u32;
        Ok(ClimbingIndex {
            volume: volume.clone(),
            directory,
            postings,
            levels,
            entries,
            dense,
            level_postings,
        })
    }

    /// The climb path (level 0 = indexed table, last = root).
    pub fn levels(&self) -> &[TableId] {
        &self.levels
    }

    /// Position of `table` in the climb path.
    pub fn level_of(&self, table: TableId) -> Result<usize> {
        self.levels
            .iter()
            .position(|&t| t == table)
            .ok_or_else(|| GhostError::exec(format!("{table} is not on this index's climb path")))
    }

    /// Number of distinct keys.
    pub fn entry_count(&self) -> u32 {
        self.entries
    }

    /// Average postings per key at a level (cost estimation).
    pub fn avg_postings(&self, level: usize) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        self.level_postings[level] as f64 / self.entries as f64
    }

    /// Flash bytes occupied (directory + postings).
    pub fn flash_bytes(&self) -> u64 {
        self.directory.len() + self.postings.len()
    }

    fn entry_w(&self) -> usize {
        Self::entry_width(self.levels.len())
    }

    /// Read directory entry `idx` with a scratch cursor.
    fn read_entry(&self, cur: &mut DirCursor, idx: u32) -> Result<DirEntry> {
        let w = self.entry_w();
        let raw = cur.entry_bytes(self, idx)?;
        let key = u64::from_le_bytes(raw[..8].try_into().expect("8B"));
        let mut slots = Vec::with_capacity(self.levels.len());
        for li in 0..self.levels.len() {
            let base = KEY_BYTES + li * PER_LEVEL_BYTES;
            let off = u32::from_le_bytes(raw[base..base + 4].try_into().expect("4B"));
            let len = u32::from_le_bytes(raw[base + 4..base + 8].try_into().expect("4B"));
            slots.push((off, len));
        }
        debug_assert_eq!(raw.len(), w);
        Ok(DirEntry { key, slots })
    }

    /// First directory position with key >= `probe` (binary search on
    /// flash; direct computation for dense directories).
    fn lower_bound(&self, cur: &mut DirCursor, probe: u64) -> Result<u32> {
        if self.dense {
            return Ok(probe.min(self.entries as u64) as u32);
        }
        let mut lo = 0u32;
        let mut hi = self.entries;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = self.read_entry(cur, mid)?;
            if e.key < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Probe the index: stream the ascending, deduplicated ids at
    /// `level_table` for all keys in `range`.
    ///
    /// A single-key probe streams its posting list directly; a multi-key
    /// range unions the lists through the external sorter with
    /// `sort_ram` bytes of working memory.
    pub fn lookup(
        &self,
        scope: &RamScope,
        range: KeyRange,
        level_table: TableId,
        sort_ram: usize,
    ) -> Result<PostingStream> {
        let level = self.level_of(level_table)?;
        if self.entries == 0 {
            return Ok(PostingStream::empty());
        }
        let mut cur = DirCursor::new(scope, &self.volume)?;
        let start = self.lower_bound(&mut cur, range.lo)?;
        // Collect matching entries' slots.
        let mut slots: Vec<(u32, u32)> = Vec::new();
        let mut idx = start;
        while idx < self.entries {
            let e = self.read_entry(&mut cur, idx)?;
            if e.key > range.hi {
                break;
            }
            let s = e.slots[level];
            if s.1 > 0 {
                slots.push(s);
            }
            idx += 1;
        }
        drop(cur);
        match slots.len() {
            0 => Ok(PostingStream::empty()),
            1 => {
                let (off, len) = slots[0];
                let mut reader = self.volume.reader(scope, &self.postings)?;
                reader.seek(off as u64 * 4)?;
                Ok(PostingStream::Direct {
                    reader,
                    remaining: len as u64,
                })
            }
            _ => {
                // Union through the sorter; dedup while draining.
                let mut sorter: ExternalSorter<u32> =
                    ExternalSorter::new(&self.volume, scope, sort_ram)?;
                let mut reader = self.volume.reader(scope, &self.postings)?;
                let mut buf = [0u8; 4];
                for (off, len) in slots {
                    reader.seek(off as u64 * 4)?;
                    for _ in 0..len {
                        reader.read_exact(&mut buf)?;
                        sorter.push(u32::from_le_bytes(buf))?;
                    }
                }
                drop(reader);
                Ok(PostingStream::Sorted {
                    stream: sorter.finish()?,
                    last: None,
                })
            }
        }
    }

    /// Translate an ascending id stream (over this index's level-0 table)
    /// to the ascending, deduplicated ids at `level_table`.
    ///
    /// Only valid on dense key indexes: each input id addresses its
    /// directory entry directly. This is the Pre-filtering step that
    /// turns a delegated list of, say, VisIDs into PreIDs.
    pub fn translate(
        &self,
        scope: &RamScope,
        input: &mut dyn IdStream,
        level_table: TableId,
        sort_ram: usize,
    ) -> Result<PostingStream> {
        if !self.dense {
            return Err(GhostError::exec(
                "translate requires a dense key index".to_string(),
            ));
        }
        let level = self.level_of(level_table)?;
        let mut cur = DirCursor::new(scope, &self.volume)?;
        let mut reader = self.volume.reader(scope, &self.postings)?;
        let mut sorter: ExternalSorter<u32> = ExternalSorter::new(&self.volume, scope, sort_ram)?;
        let mut buf = [0u8; 4];
        let mut block = IdBlock::new();
        loop {
            input.next_block(&mut block)?;
            if block.is_empty() {
                break;
            }
            for &id in block.as_slice() {
                if id.0 >= self.entries {
                    return Err(GhostError::exec(format!(
                        "translate input id {id} out of range ({} entries)",
                        self.entries
                    )));
                }
                let e = self.read_entry(&mut cur, id.0)?;
                debug_assert_eq!(e.key, id.0 as u64);
                let (off, len) = e.slots[level];
                reader.seek(off as u64 * 4)?;
                for _ in 0..len {
                    reader.read_exact(&mut buf)?;
                    sorter.push(u32::from_le_bytes(buf))?;
                }
            }
        }
        Ok(PostingStream::Sorted {
            stream: sorter.finish()?,
            last: None,
        })
    }
}

#[derive(Debug)]
struct DirEntry {
    key: u64,
    /// Per level: (offset, length) in posting elements.
    slots: Vec<(u32, u32)>,
}

/// Page-buffered directory reader.
#[derive(Debug)]
struct DirCursor {
    buf: Vec<u8>,
    buf_page: u64,
    _ram: ScopedGuard,
}

impl DirCursor {
    fn new(scope: &RamScope, volume: &Volume) -> Result<DirCursor> {
        let page = volume.page_size();
        let guard = scope.alloc(page)?;
        Ok(DirCursor {
            buf: vec![0u8; page],
            buf_page: u64::MAX,
            _ram: guard,
        })
    }

    /// Bytes of directory entry `idx` (copied out of the buffered page).
    fn entry_bytes(&mut self, index: &ClimbingIndex, idx: u32) -> Result<Vec<u8>> {
        let w = index.entry_w();
        let start = idx as u64 * w as u64;
        let page_size = self.buf.len() as u64;
        let first = start / page_size;
        let last = (start + w as u64 - 1) / page_size;
        if first == last {
            if self.buf_page != first {
                let page_start = first * page_size;
                let len = page_size.min(index.directory.len() - page_start) as usize;
                index
                    .volume
                    .read_at(&index.directory, page_start, &mut self.buf[..len])?;
                self.buf_page = first;
            }
            let off = (start - first * page_size) as usize;
            Ok(self.buf[off..off + w].to_vec())
        } else {
            let mut raw = vec![0u8; w];
            index.volume.read_at(&index.directory, start, &mut raw)?;
            Ok(raw)
        }
    }
}

/// Ascending, deduplicated id stream out of a climbing-index probe.
#[derive(Debug)]
pub enum PostingStream {
    /// Single posting list, already sorted and deduplicated at build time.
    Direct {
        /// Reader positioned at the list start.
        reader: SegmentReader,
        /// Ids left to yield.
        remaining: u64,
    },
    /// Union of several lists (or a translation), deduplicated on the fly.
    Sorted {
        /// The merged stream.
        stream: SortedStream<u32>,
        /// Last id yielded (for dedup).
        last: Option<u32>,
    },
    /// Provably empty result.
    Empty,
}

impl PostingStream {
    /// The empty stream.
    pub fn empty() -> PostingStream {
        PostingStream::Empty
    }
}

impl IdStream for PostingStream {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        match self {
            PostingStream::Empty => Ok(None),
            PostingStream::Direct { reader, remaining } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                let mut buf = [0u8; 4];
                reader.read_exact(&mut buf)?;
                *remaining -= 1;
                Ok(Some(RowId(u32::from_le_bytes(buf))))
            }
            PostingStream::Sorted { stream, last } => {
                while let Some(v) = stream.next_rec()? {
                    if Some(v) != *last {
                        *last = Some(v);
                        return Ok(Some(RowId(v)));
                    }
                }
                Ok(None)
            }
        }
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        block.clear();
        match self {
            PostingStream::Empty => Ok(()),
            PostingStream::Direct { reader, remaining } => {
                // One chunked flash read per buffer instead of one
                // virtual call + 4-byte read per id.
                let take = (*remaining).min(BLOCK_CAP as u64) as usize;
                reader.read_ids_into(take, block)?;
                *remaining -= take as u64;
                Ok(())
            }
            PostingStream::Sorted { stream, last } => {
                while !block.is_full() {
                    match stream.next_rec()? {
                        None => break,
                        Some(v) if Some(v) == *last => continue,
                        Some(v) => {
                            *last = Some(v);
                            block.push(RowId(v));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        match self {
            PostingStream::Empty => Ok(None),
            PostingStream::Direct { reader, remaining } => {
                // The list is sorted and fixed-width on flash: gallop
                // from the cursor, then binary-search the bracketing
                // window, skipping whole posting pages.
                if *remaining == 0 {
                    return Ok(None);
                }
                let base = reader.position();
                let mut buf = [0u8; 4];
                let mut id_at = |j: u64, reader: &mut SegmentReader| -> Result<u32> {
                    reader.seek(base + j * 4)?;
                    reader.read_exact(&mut buf)?;
                    Ok(u32::from_le_bytes(buf))
                };
                // Gallop: find the first probe >= target.
                let mut step = 1u64;
                let mut lo = 0u64; // ids at [0, lo) are all < target
                let mut hi = *remaining;
                loop {
                    let probe = lo + step;
                    if probe >= *remaining {
                        break;
                    }
                    if id_at(probe - 1, reader)? < target.0 {
                        lo = probe;
                        step *= 2;
                    } else {
                        hi = probe;
                        break;
                    }
                }
                // Binary search in [lo, hi).
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if id_at(mid, reader)? < target.0 {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo >= *remaining {
                    *remaining = 0;
                    return Ok(None);
                }
                let found = id_at(lo, reader)?;
                *remaining -= lo + 1;
                Ok(Some(RowId(found)))
            }
            PostingStream::Sorted { .. } => {
                // Merge-of-runs streams cannot seek; scan forward.
                while let Some(id) = self.next_id()? {
                    if id >= target {
                        return Ok(Some(id));
                    }
                }
                Ok(None)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PostingStream::Empty => (0, Some(0)),
            PostingStream::Direct { remaining, .. } => {
                (*remaining as usize, Some(*remaining as usize))
            }
            // Duplicates collapse while draining, so only an upper bound.
            PostingStream::Sorted { stream, .. } => (0, Some(stream.len() as usize)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{Schema, SchemaBuilder, Visibility};
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_storage::HiddenStore;
    use ghostdb_types::{collect_ids, DataType, FlashConfig, SimClock, Value};

    /// Doctor <- Visit <- Prescription chain with country values.
    fn setup() -> (Volume, RamScope, Schema, TreeSchema, Dataset, LoadEncoders) {
        let mut b = SchemaBuilder::new();
        b.table("Doctor", "DocID")
            .column("Country", DataType::Char(10), Visibility::Hidden);
        b.table("Visit", "VisID")
            .foreign_key("DocID", "Doctor", Visibility::Hidden);
        b.table("Prescription", "PreID")
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        let schema = b.build().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();
        let countries = ["France", "Spain", "USA"];
        let mut data = Dataset::empty(&schema);
        for i in 0..6i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(countries[(i % 3) as usize].into()),
                ],
            )
            .unwrap();
        }
        for i in 0..12i64 {
            data.push_row(TableId(1), vec![Value::Int(i), Value::Int(i % 6)])
                .unwrap();
        }
        for i in 0..24i64 {
            data.push_row(TableId(2), vec![Value::Int(i), Value::Int(i % 12)])
                .unwrap();
        }
        let cfg = FlashConfig {
            page_size: 128,
            pages_per_block: 8,
            num_blocks: 256,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, SimClock::new()));
        let scope = RamScope::new(&RamBudget::new(64 * 1024));
        let (_store, encoders) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();
        (volume, scope, schema, tree, data, encoders)
    }

    fn ids(v: Vec<u32>) -> Vec<RowId> {
        v.into_iter().map(RowId).collect()
    }

    #[test]
    fn value_index_level0_postings() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        assert_eq!(idx.entry_count(), 3); // France, Spain, USA
                                          // Spain = doctors 1 and 4.
        let spain = enc
            .key_of(
                TableId(0),
                ghostdb_types::ColumnId(1),
                &Value::Text("Spain".into()),
            )
            .unwrap();
        let range = KeyRange {
            lo: spain,
            hi: spain,
        };
        let mut s = idx.lookup(&scope, range, TableId(0), 4096).unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![1, 4]));
    }

    #[test]
    fn value_index_climbs_to_all_levels() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        assert_eq!(idx.levels(), &[TableId(0), TableId(1), TableId(2)]);
        let spain = enc
            .key_of(
                TableId(0),
                ghostdb_types::ColumnId(1),
                &Value::Text("Spain".into()),
            )
            .unwrap();
        let range = KeyRange {
            lo: spain,
            hi: spain,
        };
        // Visits of doctors {1,4}: visit v has doctor v%6 -> {1,4,7,10}.
        let mut s = idx.lookup(&scope, range, TableId(1), 4096).unwrap();
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![1, 4, 7, 10]));
        // Prescriptions of those visits: p has visit p%12 -> {1,4,7,10,13,16,19,22}.
        let mut s = idx.lookup(&scope, range, TableId(2), 4096).unwrap();
        assert_eq!(
            collect_ids(&mut s).unwrap(),
            ids(vec![1, 4, 7, 10, 13, 16, 19, 22])
        );
    }

    #[test]
    fn range_lookup_unions_postings() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        // Range covering France + Spain (codes 0 and 1).
        let range = KeyRange { lo: 0, hi: 1 };
        let mut s = idx.lookup(&scope, range, TableId(0), 4096).unwrap();
        // France: doctors 0,3; Spain: 1,4.
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![0, 1, 3, 4]));
        // Empty range.
        let mut s = idx
            .lookup(&scope, KeyRange { lo: 99, hi: 120 }, TableId(0), 4096)
            .unwrap();
        assert!(collect_ids(&mut s).unwrap().is_empty());
    }

    #[test]
    fn key_index_translates_up_the_tree() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        // Key index on Visit: levels Vis -> Pre.
        let idx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        assert_eq!(idx.entry_count(), 12);
        // Translate visits {0, 5} to prescriptions: p%12 in {0,5} ->
        // {0,12} and {5,17}.
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![0, 5]));
        let mut out = idx.translate(&scope, &mut input, TableId(2), 4096).unwrap();
        assert_eq!(collect_ids(&mut out).unwrap(), ids(vec![0, 5, 12, 17]));
    }

    #[test]
    fn translate_dedups_outputs() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        // Key index on Doctor: levels Doc -> Vis -> Pre.
        let idx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(0)).unwrap();
        // Doctors {1,4} both map to visits {1,4,7,10}; translation must
        // dedup shared ancestors.
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![1, 4]));
        let mut out = idx.translate(&scope, &mut input, TableId(1), 4096).unwrap();
        assert_eq!(collect_ids(&mut out).unwrap(), ids(vec![1, 4, 7, 10]));
    }

    #[test]
    fn translate_rejects_value_indexes_and_bad_ids() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let vidx =
            ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![0]));
        assert!(vidx
            .translate(&scope, &mut input, TableId(2), 4096)
            .is_err());

        let kidx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        let mut input = ghostdb_types::VecIdStream::new(ids(vec![99]));
        assert!(kidx
            .translate(&scope, &mut input, TableId(2), 4096)
            .is_err());
    }

    #[test]
    fn level_of_rejects_off_path_tables() {
        let (vol, scope, _s, tree, data, _enc) = setup();
        let idx = ClimbingIndex::build_key_index(&vol, &scope, &tree, &data, TableId(1)).unwrap();
        assert!(idx.level_of(TableId(0)).is_err()); // Doctor below Visit
        assert!(idx.level_of(TableId(2)).is_ok());
    }

    #[test]
    fn direct_posting_stream_blocks_and_seeks() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        let spain = enc
            .key_of(
                TableId(0),
                ghostdb_types::ColumnId(1),
                &Value::Text("Spain".into()),
            )
            .unwrap();
        let range = KeyRange {
            lo: spain,
            hi: spain,
        };
        // Single-key probe = Direct stream; Prescription level has
        // postings {1,4,7,10,13,16,19,22}.
        let mut s = idx.lookup(&scope, range, TableId(2), 4096).unwrap();
        assert!(matches!(s, PostingStream::Direct { .. }));
        let mut b = IdBlock::new();
        s.next_block(&mut b).unwrap();
        assert_eq!(b.as_slice(), &ids(vec![1, 4, 7, 10, 13, 16, 19, 22])[..]);

        // Galloping seek on flash skips ids without yielding them, and
        // lands on the same answers as the scalar fallback.
        for (target, expect) in [
            (0u32, Some(1u32)),
            (1, Some(1)),
            (2, Some(4)),
            (11, Some(13)),
            (22, Some(22)),
            (23, None),
        ] {
            let mut fast = idx.lookup(&scope, range, TableId(2), 4096).unwrap();
            let got = fast.seek_at_least(RowId(target)).unwrap();
            assert_eq!(got, expect.map(RowId), "seek {target}");
            let mut slow =
                ghostdb_types::ScalarFallback(idx.lookup(&scope, range, TableId(2), 4096).unwrap());
            assert_eq!(slow.seek_at_least(RowId(target)).unwrap(), got);
            // After an in-range seek, the stream resumes past the hit.
            if got.is_some() {
                assert_eq!(fast.next_id().unwrap(), slow.next_id().unwrap());
            }
        }
        // Seeking an exhausted/empty stream stays None.
        let mut s = PostingStream::empty();
        assert_eq!(s.seek_at_least(RowId(0)).unwrap(), None);
    }

    #[test]
    fn flash_accounting_nonzero() {
        let (vol, scope, _s, tree, data, enc) = setup();
        let cref = ColumnRef {
            table: TableId(0),
            column: ghostdb_types::ColumnId(1),
        };
        let idx = ClimbingIndex::build_value_index(&vol, &scope, &tree, &data, &enc, cref).unwrap();
        assert!(idx.flash_bytes() > 0);
        assert!(idx.avg_postings(0) >= 1.0);
    }
}
