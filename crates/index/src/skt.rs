//! Subtree Key Tables (paper §4, Figure 3).
//!
//! `SKT_Prescription` holds, for each prescription (ascending PreID), the
//! row ids ⟨PreID, MedID, VisID, DocID, PatID⟩ — i.e. the precomputed
//! join of the whole subtree to its root. Because root ids are dense, the
//! SKT is a fixed-width array on flash: the row for root id *i* sits at
//! byte `i * width`, so a sorted id stream turns into near-sequential
//! page reads and "reaching any other table in the path... in a single
//! step" costs one partial page read.

use ghostdb_catalog::TreeSchema;
use ghostdb_flash::{Segment, SegmentManifest, Volume};
use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_storage::Dataset;
use ghostdb_types::{GhostError, Result, RowId, TableId, Wire};

use crate::wide_rows;

/// One SKT row: the ids of every subtree table for one root row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SktRow {
    /// Ids in the SKT's table order (`table_order()[0]` is the subtree
    /// root, so `ids[0]` is the row's own id).
    pub ids: Vec<RowId>,
}

impl SktRow {
    /// The subtree-root id of this row.
    pub fn root_id(&self) -> RowId {
        self.ids[0]
    }
}

/// A Subtree Key Table: a fixed-width flash base plus a RAM-resident
/// delta of rows appended by post-load inserts (flushed into a rebuilt
/// segment by [`SubtreeKeyTable::flush`]).
#[derive(Debug, Clone)]
pub struct SubtreeKeyTable {
    volume: Volume,
    segment: Segment,
    /// Tables covered, preorder; position = column within the row.
    tables: Vec<TableId>,
    /// Rows resident in the flash base.
    rows: u32,
    /// Appended wide rows (root ids `rows..rows + delta.len()`).
    delta: Vec<Vec<RowId>>,
}

impl SubtreeKeyTable {
    /// Materialize the SKT rooted at `anchor` during the secure load.
    pub fn build(
        volume: &Volume,
        scope: &RamScope,
        tree: &TreeSchema,
        data: &Dataset,
        anchor: TableId,
    ) -> Result<SubtreeKeyTable> {
        let tables = tree.subtree(anchor);
        let n_tables = data.tables.len();
        let wide = wide_rows(tree, data, n_tables, anchor)?;
        let rows = data.row_count(anchor) as u32;
        let mut w = volume.writer(scope)?;
        for r in 0..rows {
            for t in &tables {
                let ids = wide[t.index()]
                    .as_ref()
                    .ok_or_else(|| GhostError::catalog("missing wide column"))?;
                w.write(&ids[r as usize].to_le_bytes())?;
            }
        }
        Ok(SubtreeKeyTable {
            volume: volume.clone(),
            segment: w.finish()?,
            tables,
            rows,
            delta: Vec::new(),
        })
    }

    /// Append one wide row (ids in [`table_order`](Self::table_order);
    /// `ids[0]` must be the next dense root id). Post-load inserts land
    /// here; the row lives in RAM until the next [`flush`](Self::flush).
    pub fn append_row(&mut self, ids: Vec<RowId>) -> Result<()> {
        if ids.len() != self.tables.len() {
            return Err(GhostError::exec(format!(
                "SKT row arity {} != {} covered tables",
                ids.len(),
                self.tables.len()
            )));
        }
        let expect = self.rows + self.delta.len() as u32;
        if ids[0] != RowId(expect) {
            return Err(GhostError::exec(format!(
                "SKT append out of order: got root id {}, expected {expect}",
                ids[0]
            )));
        }
        self.delta.push(ids);
        Ok(())
    }

    /// Un-flushed delta rows.
    pub fn delta_rows(&self) -> u32 {
        self.delta.len() as u32
    }

    /// Merge the RAM delta into a rebuilt flash segment and free the old
    /// one. `map_id(col, id)` filters and renumbers every stored id by
    /// its column's table: `None` for the **root** column drops the whole
    /// wide row (the root row died — its bytes are what a post-delete
    /// flush reclaims); a `None` on any other column of a surviving row
    /// is a referential-integrity violation (the delete-time RESTRICT
    /// check forbids it). Identity `map_id` reproduces the old
    /// append-only merge.
    pub fn flush(
        &mut self,
        scope: &RamScope,
        map_id: &dyn Fn(usize, u32) -> Option<u32>,
    ) -> Result<()> {
        let mut w = self.volume.writer(scope)?;
        let mut reader = self.volume.reader(scope, &self.segment)?;
        let n_cols = self.tables.len();
        let mut buf = [0u8; 4];
        let mut row = vec![0u32; n_cols];
        let mut out_rows = 0u32;
        for _ in 0..self.rows {
            for slot in row.iter_mut() {
                reader.read_exact(&mut buf)?;
                *slot = u32::from_le_bytes(buf);
            }
            self.write_mapped(&mut w, &row, map_id, &mut out_rows)?;
        }
        drop(reader);
        let delta = std::mem::take(&mut self.delta);
        for drow in &delta {
            let raw: Vec<u32> = drow.iter().map(|id| id.0).collect();
            self.write_mapped(&mut w, &raw, map_id, &mut out_rows)?;
        }
        let new_seg = w.finish()?;
        let old = std::mem::replace(&mut self.segment, new_seg);
        self.volume.free(old)?;
        self.rows = out_rows;
        Ok(())
    }

    /// Write one wide row through the remap; dead roots drop the row.
    fn write_mapped(
        &self,
        w: &mut ghostdb_flash::SegmentWriter,
        row: &[u32],
        map_id: &dyn Fn(usize, u32) -> Option<u32>,
        out_rows: &mut u32,
    ) -> Result<()> {
        let Some(root) = map_id(0, row[0]) else {
            return Ok(());
        };
        w.write(&root.to_le_bytes())?;
        for (col, &id) in row.iter().enumerate().skip(1) {
            let mapped = map_id(col, id).ok_or_else(|| {
                GhostError::corrupt("live SKT row references a deleted subtree row")
            })?;
            w.write(&mapped.to_le_bytes())?;
        }
        *out_rows += 1;
        Ok(())
    }

    /// Tables covered, in column order (`[0]` is the subtree root).
    pub fn table_order(&self) -> &[TableId] {
        &self.tables
    }

    /// Column position of `table` within a row.
    pub fn column_of(&self, table: TableId) -> Result<usize> {
        self.tables
            .iter()
            .position(|&t| t == table)
            .ok_or_else(|| GhostError::exec(format!("{table} not covered by this SKT")))
    }

    /// Row width in bytes.
    pub fn row_width(&self) -> usize {
        self.tables.len() * 4
    }

    /// Number of rows including the un-flushed delta (= root-table
    /// cardinality).
    pub fn row_count(&self) -> u32 {
        self.rows + self.delta.len() as u32
    }

    /// Flash bytes occupied.
    pub fn flash_bytes(&self) -> u64 {
        self.segment.len()
    }

    /// Open a cursor for random (but ideally ascending) row access.
    ///
    /// The cursor keeps the last-touched flash page buffered (charged to
    /// `scope`), so an ascending id stream reads each page once — the
    /// access pattern the paper's "IDs sorted based on the order of IDs
    /// in the root table" is designed for.
    pub fn cursor(&self, scope: &RamScope) -> Result<SktCursor<'_>> {
        let page = self.volume.page_size();
        let guard = scope.alloc(page)?;
        Ok(SktCursor {
            skt: self,
            buf: vec![0u8; page],
            buf_page: u64::MAX,
            reads: 0,
            _ram: guard,
        })
    }
}

/// Durable description of one Subtree Key Table.
#[derive(Debug, Clone, PartialEq)]
pub struct SktManifest {
    /// The fixed-width rows segment.
    pub segment: SegmentManifest,
    /// Tables covered, preorder.
    pub tables: Vec<TableId>,
    /// Rows resident in the flash base.
    pub rows: u32,
}

impl Wire for SktManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.segment.encode(out);
        self.tables.encode(out);
        self.rows.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(SktManifest {
            segment: SegmentManifest::decode(buf)?,
            tables: Vec::<TableId>::decode(buf)?,
            rows: u32::decode(buf)?,
        })
    }
}

impl SubtreeKeyTable {
    /// Every logical flash page the SKT's base segment can read,
    /// appended to `out` (snapshot pinning; works with a pending
    /// delta, which needs no pins).
    pub fn collect_lpns(&self, out: &mut Vec<u32>) {
        out.extend(self.segment.manifest().lpns);
    }

    /// The SKT's durable manifest (requires an empty delta — seal
    /// flushes first).
    pub fn manifest(&self) -> Result<SktManifest> {
        if !self.delta.is_empty() {
            return Err(GhostError::exec(
                "SKT manifest requires a flushed delta".to_string(),
            ));
        }
        Ok(SktManifest {
            segment: self.segment.manifest(),
            tables: self.tables.clone(),
            rows: self.rows,
        })
    }

    /// Rebuild the SKT from a mounted volume and its sealed manifest.
    pub fn restore(volume: &Volume, m: &SktManifest) -> Result<SubtreeKeyTable> {
        if m.tables.is_empty() {
            return Err(GhostError::corrupt("SKT manifest covers no tables"));
        }
        let segment = volume.restore_manifest(&m.segment)?;
        if segment.len() != m.rows as u64 * (m.tables.len() * 4) as u64 {
            return Err(GhostError::corrupt(
                "SKT manifest row count disagrees with segment length",
            ));
        }
        Ok(SubtreeKeyTable {
            volume: volume.clone(),
            segment,
            tables: m.tables.clone(),
            rows: m.rows,
            delta: Vec::new(),
        })
    }
}

/// Buffered cursor over a [`SubtreeKeyTable`].
#[derive(Debug)]
pub struct SktCursor<'a> {
    skt: &'a SubtreeKeyTable,
    buf: Vec<u8>,
    buf_page: u64,
    reads: u64,
    _ram: ScopedGuard,
}

impl SktCursor<'_> {
    /// Fetch the SKT row for root id `id` (flash base or RAM delta).
    pub fn fetch(&mut self, id: RowId) -> Result<SktRow> {
        if id.0 >= self.skt.row_count() {
            return Err(GhostError::exec(format!(
                "SKT row {id} out of range ({} rows)",
                self.skt.row_count()
            )));
        }
        if id.0 >= self.skt.rows {
            return Ok(SktRow {
                ids: self.skt.delta[(id.0 - self.skt.rows) as usize].clone(),
            });
        }
        let width = self.skt.row_width();
        let page_size = self.buf.len();
        let start = id.index() as u64 * width as u64;
        let mut raw = vec![0u8; width];
        let first_page = start / page_size as u64;
        let last_page = (start + width as u64 - 1) / page_size as u64;
        if first_page == last_page {
            // Whole row within one page: serve from the buffered page.
            if self.buf_page != first_page {
                let page_start = first_page * page_size as u64;
                let len = page_size.min((self.skt.segment.len() - page_start) as usize);
                self.skt
                    .volume
                    .read_at(&self.skt.segment, page_start, &mut self.buf[..len])?;
                self.buf_page = first_page;
                self.reads += 1;
            }
            let off = (start - first_page * page_size as u64) as usize;
            raw.copy_from_slice(&self.buf[off..off + width]);
        } else {
            // Row straddles pages: read it directly (rare).
            self.skt
                .volume
                .read_at(&self.skt.segment, start, &mut raw)?;
            self.buf_page = u64::MAX;
            self.reads += 1;
        }
        let ids = raw
            .chunks_exact(4)
            .map(|c| RowId(u32::from_le_bytes(c.try_into().expect("4B"))))
            .collect();
        Ok(SktRow { ids })
    }

    /// Page-read operations issued by this cursor (observability).
    pub fn page_reads(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{FlashConfig, SimClock, Value};

    /// Figure 3 shape with tiny cardinalities and deterministic fks.
    fn setup() -> (Volume, RamScope, TreeSchema, Dataset, Vec<TableId>) {
        let mut b = SchemaBuilder::new();
        b.table("Doctor", "DocID");
        b.table("Patient", "PatID");
        b.table("Medicine", "MedID");
        b.table("Visit", "VisID")
            .foreign_key("DocID", "Doctor", Visibility::Hidden)
            .foreign_key("PatID", "Patient", Visibility::Hidden);
        b.table("Prescription", "PreID")
            .foreign_key("MedID", "Medicine", Visibility::Hidden)
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        let schema = b.build().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();

        let mut data = Dataset::empty(&schema);
        for i in 0..4i64 {
            data.push_row(TableId(0), vec![Value::Int(i)]).unwrap(); // doctors
        }
        for i in 0..6i64 {
            data.push_row(TableId(1), vec![Value::Int(i)]).unwrap(); // patients
        }
        for i in 0..5i64 {
            data.push_row(TableId(2), vec![Value::Int(i)]).unwrap(); // medicines
        }
        for i in 0..8i64 {
            // visit i -> doctor i%4, patient i%6
            data.push_row(
                TableId(3),
                vec![Value::Int(i), Value::Int(i % 4), Value::Int(i % 6)],
            )
            .unwrap();
        }
        for i in 0..20i64 {
            // prescription i -> medicine i%5, visit i%8
            data.push_row(
                TableId(4),
                vec![Value::Int(i), Value::Int(i % 5), Value::Int(i % 8)],
            )
            .unwrap();
        }
        let cfg = FlashConfig {
            page_size: 64,
            pages_per_block: 8,
            num_blocks: 128,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, SimClock::new()));
        let scope = RamScope::new(&RamBudget::new(64 * 1024));
        let ids = (0..5).map(|i| TableId(i as u16)).collect();
        (volume, scope, tree, data, ids)
    }

    #[test]
    fn prescription_skt_matches_fk_chains() {
        let (vol, scope, tree, data, t) = setup();
        let (doc, pat, med, vis, pre) = (t[0], t[1], t[2], t[3], t[4]);
        let skt = SubtreeKeyTable::build(&vol, &scope, &tree, &data, pre).unwrap();
        assert_eq!(skt.row_count(), 20);
        assert_eq!(skt.row_width(), 20); // 5 tables x 4 bytes
        let mut cur = skt.cursor(&scope).unwrap();
        for i in 0..20u32 {
            let row = cur.fetch(RowId(i)).unwrap();
            assert_eq!(row.root_id(), RowId(i));
            let med_id = row.ids[skt.column_of(med).unwrap()];
            let vis_id = row.ids[skt.column_of(vis).unwrap()];
            let doc_id = row.ids[skt.column_of(doc).unwrap()];
            let pat_id = row.ids[skt.column_of(pat).unwrap()];
            assert_eq!(med_id.0, i % 5);
            assert_eq!(vis_id.0, i % 8);
            assert_eq!(doc_id.0, (i % 8) % 4);
            assert_eq!(pat_id.0, (i % 8) % 6);
        }
    }

    #[test]
    fn visit_skt_covers_its_subtree_only() {
        let (vol, scope, tree, data, t) = setup();
        let (doc, pat, _med, vis, pre) = (t[0], t[1], t[2], t[3], t[4]);
        let skt = SubtreeKeyTable::build(&vol, &scope, &tree, &data, vis).unwrap();
        assert_eq!(skt.row_count(), 8);
        assert!(skt.column_of(pre).is_err());
        let mut cur = skt.cursor(&scope).unwrap();
        let row = cur.fetch(RowId(5)).unwrap();
        assert_eq!(row.ids[skt.column_of(doc).unwrap()].0, 1); // 5 % 4
        assert_eq!(row.ids[skt.column_of(pat).unwrap()].0, 5); // 5 % 6
    }

    #[test]
    fn ascending_access_is_page_batched() {
        let (vol, scope, tree, data, t) = setup();
        let pre = t[4];
        let skt = SubtreeKeyTable::build(&vol, &scope, &tree, &data, pre).unwrap();
        let mut cur = skt.cursor(&scope).unwrap();
        for i in 0..20u32 {
            cur.fetch(RowId(i)).unwrap();
        }
        // 20 rows x 20B = 400B over 64B pages = 7 pages; a few rows
        // straddle page boundaries and cost an extra direct read.
        assert!(
            cur.page_reads() <= 14,
            "expected page batching, got {} reads",
            cur.page_reads()
        );
    }

    #[test]
    fn delta_append_fetch_flush() {
        let (vol, scope, tree, data, t) = setup();
        let pre = t[4];
        let mut skt = SubtreeKeyTable::build(&vol, &scope, &tree, &data, pre).unwrap();
        // New prescription 20 -> medicine 2, visit 3 (doctor 3, patient 3).
        let order = skt.table_order().to_vec();
        let wide = |table: TableId| match table.0 {
            0 => RowId(3),  // doctor
            1 => RowId(3),  // patient
            2 => RowId(2),  // medicine
            3 => RowId(3),  // visit
            4 => RowId(20), // prescription
            _ => unreachable!(),
        };
        let row: Vec<RowId> = order.iter().map(|&tt| wide(tt)).collect();
        // Out-of-order root ids are rejected.
        let mut bad = row.clone();
        bad[0] = RowId(25);
        assert!(skt.append_row(bad).is_err());
        skt.append_row(row.clone()).unwrap();
        assert_eq!(skt.row_count(), 21);
        assert_eq!(skt.delta_rows(), 1);
        let mut cur = skt.cursor(&scope).unwrap();
        assert_eq!(cur.fetch(RowId(20)).unwrap().ids, row);
        assert!(cur.fetch(RowId(21)).is_err());
        drop(cur);
        skt.flush(&scope, &|_, id| Some(id)).unwrap();
        assert_eq!(skt.delta_rows(), 0);
        assert_eq!(skt.row_count(), 21);
        let mut cur = skt.cursor(&scope).unwrap();
        assert_eq!(cur.fetch(RowId(20)).unwrap().ids, row);
        // Base rows survive the segment rebuild.
        assert_eq!(cur.fetch(RowId(7)).unwrap().root_id(), RowId(7));
    }

    #[test]
    fn out_of_range_fetch_fails() {
        let (vol, scope, tree, data, t) = setup();
        let skt = SubtreeKeyTable::build(&vol, &scope, &tree, &data, t[4]).unwrap();
        let mut cur = skt.cursor(&scope).unwrap();
        assert!(cur.fetch(RowId(20)).is_err());
    }
}
