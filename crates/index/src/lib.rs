//! The paper's indexing model: Subtree Key Tables, climbing indexes, and
//! the external sorter that backs id-list translation under tiny RAM.
//!
//! Paper §4: "We propose a set of generalized join indexes known as
//! 'Subtree Key Tables' or SKT... Each SKT joins all tables in the
//! subtree to the subtree root with the IDs sorted based on the order of
//! IDs in the root table... To speed up selections, we propose an
//! additional index that we call a 'climbing index'. A climbing index on
//! a lower table T maps values to lists of identifiers from T as well as
//! lists of identifiers for each table T' that is an ancestor of T...
//! Combined together, SKTs and climbing indexes allow selecting tuples in
//! any table, reaching any other table in the path from this table to the
//! root table in a single step and projecting attributes from any other
//! table of the tree. This benefit in terms of performance and RAM usage
//! comes at an extra cost in terms of Flash storage."
//!
//! All three structures live on flash and are probed with O(1) device
//! RAM; everything is built once during the secure bulk load (flash is
//! written sequentially, respecting the no-in-place-write constraint).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod climbing;
mod skt;
mod sort;

pub use climbing::{ClimbingIndex, ClimbingManifest, PostingStream};
pub use skt::{SktCursor, SktManifest, SktRow, SubtreeKeyTable};
pub use sort::{ExternalSorter, SortRecord, SortedStream};

use std::collections::HashMap;

use ghostdb_catalog::{ColumnRef, Schema, TreeSchema, Visibility};
use ghostdb_flash::Volume;
use ghostdb_ram::RamScope;
use ghostdb_storage::{Dataset, FlushRemaps, HiddenStore, LoadEncoders};
use ghostdb_types::{
    collect_ids, ColumnId, GhostError, Result, RowId, TableId, Value, VecIdStream, Wire,
};

/// One inserted row, as the index-maintenance layer sees it.
#[derive(Debug, Clone, Copy)]
pub struct RowInsert<'a> {
    /// Table that received the row.
    pub table: TableId,
    /// The new dense row id.
    pub id: RowId,
    /// Full row values in declaration order.
    pub values: &'a [Value],
}

/// The device's full index set, as the paper prescribes:
///
/// * one SKT per internal table (Figure 3: Prescription and Visit),
/// * a climbing **value** index on every hidden non-key column,
/// * a climbing **key** index on every non-root table's primary key
///   (dense directory), used to translate delegated visible id lists and
///   to combine predicates in Cross-filtering plans.
///
/// `Clone` freezes every index for a snapshot session: flash bases are
/// shared, RAM deltas are copied — bounded by the flush threshold.
#[derive(Debug, Clone)]
pub struct IndexSet {
    skts: HashMap<u16, SubtreeKeyTable>,
    value_indexes: HashMap<(u16, u16), ClimbingIndex>,
    key_indexes: HashMap<u16, ClimbingIndex>,
}

impl IndexSet {
    /// Build every index during the secure bulk load.
    pub fn build(
        volume: &Volume,
        scope: &RamScope,
        schema: &Schema,
        tree: &TreeSchema,
        data: &Dataset,
        encoders: &LoadEncoders,
    ) -> Result<IndexSet> {
        let mut skts = HashMap::new();
        for t in tree.skt_roots() {
            let skt = SubtreeKeyTable::build(volume, scope, tree, data, t)?;
            skts.insert(t.0, skt);
        }
        let mut value_indexes = HashMap::new();
        for cref in schema.hidden_columns() {
            // Key columns get the dedicated key index below; value indexes
            // cover hidden *attribute* columns (and hidden FKs are key
            // plumbing, not selection targets).
            let def = schema.column_def(cref);
            if !matches!(def.role, ghostdb_catalog::ColumnRole::Attribute) {
                continue;
            }
            let idx = ClimbingIndex::build_value_index(volume, scope, tree, data, encoders, cref)?;
            value_indexes.insert((cref.table.0, cref.column.0), idx);
        }
        // Visible attribute columns never get climbing indexes: their
        // selections are always delegated to the PC (paper §3).
        let mut key_indexes = HashMap::new();
        for (ti, _t) in schema.tables().iter().enumerate() {
            let tid = TableId(ti as u16);
            if tid == tree.root() {
                continue; // root ids need no translation
            }
            let idx = ClimbingIndex::build_key_index(volume, scope, tree, data, tid)?;
            key_indexes.insert(tid.0, idx);
        }
        Ok(IndexSet {
            skts,
            value_indexes,
            key_indexes,
        })
    }

    /// The SKT rooted at `table` (internal tables only).
    pub fn skt(&self, table: TableId) -> Result<&SubtreeKeyTable> {
        self.skts
            .get(&table.0)
            .ok_or_else(|| GhostError::exec(format!("no Subtree Key Table rooted at {table}")))
    }

    /// Climbing value index on a hidden attribute column.
    pub fn value_index(&self, cref: ColumnRef) -> Result<&ClimbingIndex> {
        self.value_indexes
            .get(&(cref.table.0, cref.column.0))
            .ok_or_else(|| GhostError::exec(format!("no climbing index on {cref}")))
    }

    /// True if a climbing value index exists for the column.
    pub fn has_value_index(&self, cref: ColumnRef) -> bool {
        self.value_indexes
            .contains_key(&(cref.table.0, cref.column.0))
    }

    /// Climbing key index on a non-root table's primary key.
    pub fn key_index(&self, table: TableId) -> Result<&ClimbingIndex> {
        self.key_indexes
            .get(&table.0)
            .ok_or_else(|| GhostError::exec(format!("no key climbing index for {table}")))
    }

    /// Index maintenance for one inserted row: every structure whose
    /// coverage includes the new row gains a RAM-delta posting.
    ///
    /// `wide` maps each table in the row's subtree to the row id the new
    /// row joins to (`wide[row.table] == row.id`). Concretely: value
    /// indexes on any subtree table `S` gain posting `row.id` at the
    /// inserted table's level under the key of `S`'s joined row; key
    /// indexes on `S` gain the same posting under key `wide[S]` (which
    /// for `S == row.table` creates the new dense entry); and the SKT
    /// rooted at the inserted table appends the wide row.
    pub fn apply_insert(
        &mut self,
        tree: &TreeSchema,
        scope: &RamScope,
        hidden: &HiddenStore,
        row: RowInsert<'_>,
        wide: &HashMap<u16, RowId>,
    ) -> Result<()> {
        let RowInsert {
            table,
            id: new_id,
            values,
        } = row;
        let subtree = tree.subtree(table);
        for &s in &subtree {
            let s_id = *wide
                .get(&s.0)
                .ok_or_else(|| GhostError::exec(format!("wide row missing subtree table {s}")))?;
            for ((t, c), idx) in self.value_indexes.iter_mut() {
                if *t != s.0 {
                    continue;
                }
                let column = ColumnId(*c);
                let v = if s == table {
                    values
                        .get(column.index())
                        .ok_or_else(|| GhostError::exec("insert row too short for index"))?
                        .clone()
                } else {
                    hidden.value(scope, s, column, s_id)?
                };
                idx.insert_delta_value(&v, table, new_id)?;
            }
            if let Some(kidx) = self.key_indexes.get_mut(&s.0) {
                kidx.insert_delta_key(s_id.0 as u64, table, new_id)?;
            }
        }
        if let Some(skt) = self.skts.get_mut(&table.0) {
            let order = skt.table_order().to_vec();
            let ids = order
                .iter()
                .map(|t| {
                    wide.get(&t.0)
                        .copied()
                        .ok_or_else(|| GhostError::exec(format!("wide row missing SKT table {t}")))
                })
                .collect::<Result<Vec<_>>>()?;
            skt.append_row(ids)?;
        }
        Ok(())
    }

    /// Index maintenance for one `UPDATE` of a hidden attribute column:
    /// the value index on `(table, column)` — if one exists — re-homes
    /// the updated row's postings at **every** climb level from the old
    /// value's entry to the new value's. The affected ancestor ids are
    /// found by translating the updated row through `table`'s own key
    /// index (the inverse-join the climbing layout precomputes); key
    /// indexes and SKTs are untouched — updates never move key
    /// structure.
    pub fn apply_update(
        &mut self,
        scope: &RamScope,
        table: TableId,
        column: ColumnId,
        row: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()> {
        let Some(idx) = self.value_indexes.get_mut(&(table.0, column.0)) else {
            return Ok(());
        };
        let levels = idx.levels().to_vec();
        let mut per_level: Vec<Vec<u32>> = vec![vec![row.0]];
        if levels.len() > 1 {
            let kidx = self
                .key_indexes
                .get(&table.0)
                .ok_or_else(|| GhostError::exec(format!("no key climbing index for {table}")))?;
            for lt in &levels[1..] {
                let mut input = VecIdStream::new(vec![row]);
                let mut out = kidx.translate(scope, &mut input, *lt, TRANSLATE_SORT_RAM)?;
                per_level.push(collect_ids(&mut out)?.into_iter().map(|r| r.0).collect());
            }
        }
        idx.reindex_value(old_value, new_value, &per_level)
    }

    /// Merge every structure's RAM delta into rebuilt flash segments.
    /// Runs after [`HiddenStore::flush`], whose [`FlushRemaps`] carry
    /// the dictionary code maps (re-keying value-index directories over
    /// rebuilt dictionaries) and — when rows died — the per-table id
    /// remaps of the compaction, which filter and renumber every
    /// posting, dense directory key, and SKT wide row.
    pub fn flush(
        &mut self,
        scope: &RamScope,
        hidden: &HiddenStore,
        remaps: &FlushRemaps,
    ) -> Result<()> {
        let compacted = |t: TableId| {
            remaps
                .ids
                .get(t.index())
                .map(|m| m.is_some())
                .unwrap_or(false)
        };
        for ((t, c), idx) in self.value_indexes.iter_mut() {
            let dict = remaps
                .dicts
                .iter()
                .find(|r| r.table.0 == *t && r.column.0 == *c);
            let levels = idx.levels().to_vec();
            let touched =
                dict.is_some() || idx.has_pending() || levels.iter().any(|&lt| compacted(lt));
            if !touched {
                continue;
            }
            let remap_fn: Box<dyn Fn(u64) -> Option<u64>> = match dict {
                Some(r) => {
                    let map = r.map.clone();
                    // u32::MAX marks a dictionary string whose last
                    // referencing row died: its postings drop here.
                    Box::new(move |k| match map[k as usize] {
                        u32::MAX => None,
                        n => Some(n as u64),
                    })
                }
                None => Box::new(Some),
            };
            let (table, column) = (TableId(*t), ColumnId(*c));
            let encode = |v: &Value| hidden.encode_value(table, column, v);
            let map_id = |li: usize, id: u32| remaps.map_id(levels[li], id);
            idx.flush(scope, &remap_fn, &encode, &map_id)?;
        }
        for (t, idx) in self.key_indexes.iter_mut() {
            let own = TableId(*t);
            let levels = idx.levels().to_vec();
            let touched = idx.has_pending() || levels.iter().any(|&lt| compacted(lt));
            if !touched {
                continue;
            }
            let remap_key = |k: u64| remaps.map_id(own, k as u32).map(|n| n as u64);
            let map_id = |li: usize, id: u32| remaps.map_id(levels[li], id);
            idx.flush(
                scope,
                &remap_key,
                &|_| {
                    Err(GhostError::exec(
                        "key-index deltas are keyed by id, not value".to_string(),
                    ))
                },
                &map_id,
            )?;
        }
        for skt in self.skts.values_mut() {
            let order = skt.table_order().to_vec();
            let touched = skt.delta_rows() > 0 || order.iter().any(|&tt| compacted(tt));
            if !touched {
                continue;
            }
            let map_id = |col: usize, id: u32| remaps.map_id(order[col], id);
            skt.flush(scope, &map_id)?;
        }
        Ok(())
    }

    /// Un-flushed delta entries across every structure (observability;
    /// update suppressions count — they are un-flushed state too).
    pub fn delta_entries(&self) -> usize {
        let vi: usize = self
            .value_indexes
            .values()
            .map(|i| i.delta_entries().max(i.has_pending() as usize))
            .sum();
        let ki: usize = self.key_indexes.values().map(|i| i.delta_entries()).sum();
        let skt: usize = self.skts.values().map(|s| s.delta_rows() as usize).sum();
        vi + ki + skt
    }

    /// Total flash bytes occupied by the index set (the paper's "extra
    /// cost in terms of Flash storage").
    pub fn flash_bytes(&self) -> u64 {
        let skt: u64 = self.skts.values().map(|s| s.flash_bytes()).sum();
        let vi: u64 = self.value_indexes.values().map(|i| i.flash_bytes()).sum();
        let ki: u64 = self.key_indexes.values().map(|i| i.flash_bytes()).sum();
        skt + vi + ki
    }

    /// Check presence of prerequisites used by planner diagnostics.
    pub fn describe(&self) -> String {
        format!(
            "{} SKT(s), {} value index(es), {} key index(es), {} flash bytes",
            self.skts.len(),
            self.value_indexes.len(),
            self.key_indexes.len(),
            self.flash_bytes()
        )
    }

    /// Build a *wide row* helper: for every table in `tree`, the row ids
    /// of all its subtree tables per root row (used by tests and the
    /// naive reference engine).
    pub fn column_order_of_skt(&self, table: TableId) -> Result<&[TableId]> {
        Ok(self.skt(table)?.table_order())
    }

    /// Every logical flash page any index base can read, appended to
    /// `out` — the set a snapshot session pins against flush-time
    /// frees (RAM deltas need no pinning).
    pub fn collect_lpns(&self, out: &mut Vec<u32>) {
        for s in self.skts.values() {
            s.collect_lpns(out);
        }
        for i in self.value_indexes.values() {
            i.collect_lpns(out);
        }
        for i in self.key_indexes.values() {
            i.collect_lpns(out);
        }
    }

    /// The index set's durable manifest (deterministic order: sorted by
    /// table/column id so identical states seal byte-identical images).
    /// Requires every delta to be flushed first.
    pub fn manifest(&self) -> Result<IndexSetManifest> {
        let mut skts: Vec<(u16, SktManifest)> = self
            .skts
            .iter()
            .map(|(t, s)| Ok((*t, s.manifest()?)))
            .collect::<Result<_>>()?;
        skts.sort_by_key(|(t, _)| *t);
        let mut value_indexes: Vec<((u16, u16), ClimbingManifest)> = self
            .value_indexes
            .iter()
            .map(|(k, i)| Ok((*k, i.manifest()?)))
            .collect::<Result<_>>()?;
        value_indexes.sort_by_key(|(k, _)| *k);
        let mut key_indexes: Vec<(u16, ClimbingManifest)> = self
            .key_indexes
            .iter()
            .map(|(t, i)| Ok((*t, i.manifest()?)))
            .collect::<Result<_>>()?;
        key_indexes.sort_by_key(|(t, _)| *t);
        Ok(IndexSetManifest {
            skts,
            value_indexes,
            key_indexes,
        })
    }

    /// Rebuild every index from a mounted volume and the sealed
    /// manifest — the mount path's replacement for [`IndexSet::build`].
    pub fn restore(volume: &Volume, m: &IndexSetManifest) -> Result<IndexSet> {
        let mut skts = HashMap::new();
        for (t, sm) in &m.skts {
            skts.insert(*t, SubtreeKeyTable::restore(volume, sm)?);
        }
        let mut value_indexes = HashMap::new();
        for (key, cm) in &m.value_indexes {
            value_indexes.insert(*key, ClimbingIndex::restore(volume, cm)?);
        }
        let mut key_indexes = HashMap::new();
        for (t, cm) in &m.key_indexes {
            key_indexes.insert(*t, ClimbingIndex::restore(volume, cm)?);
        }
        Ok(IndexSet {
            skts,
            value_indexes,
            key_indexes,
        })
    }
}

/// Durable description of the full index set.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSetManifest {
    /// `(root table id, manifest)` per SKT, sorted by table id.
    pub skts: Vec<(u16, SktManifest)>,
    /// `((table, column), manifest)` per value index, sorted.
    pub value_indexes: Vec<((u16, u16), ClimbingManifest)>,
    /// `(table, manifest)` per key index, sorted by table id.
    pub key_indexes: Vec<(u16, ClimbingManifest)>,
}

impl IndexSetManifest {
    /// Number of flash segments the manifest references (each SKT is one
    /// segment, each climbing index two) — the `device_report`
    /// durability line counts these.
    pub fn segment_count(&self) -> usize {
        self.skts.len() + 2 * (self.value_indexes.len() + self.key_indexes.len())
    }
}

impl Wire for IndexSetManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.skts.encode(out);
        self.value_indexes.encode(out);
        self.key_indexes.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(IndexSetManifest {
            skts: Vec::<(u16, SktManifest)>::decode(buf)?,
            value_indexes: Vec::<((u16, u16), ClimbingManifest)>::decode(buf)?,
            key_indexes: Vec::<(u16, ClimbingManifest)>::decode(buf)?,
        })
    }
}

/// Compute, for each row of the SKT anchor `root`, the id of every table
/// in its subtree by following foreign keys (host-side, load-time only).
///
/// Returns `wide[table_id] = Some(vec of that table's id per root row)`
/// for tables in the subtree.
pub(crate) fn wide_rows(
    tree: &TreeSchema,
    data: &Dataset,
    schema_table_count: usize,
    root: TableId,
) -> Result<Vec<Option<Vec<u32>>>> {
    let n_rows = data.row_count(root);
    let mut wide: Vec<Option<Vec<u32>>> = vec![None; schema_table_count];
    wide[root.index()] = Some((0..n_rows as u32).collect());
    // Walk the subtree top-down: a child's ids derive from its parent's
    // ids through the parent's fk column.
    let order = tree.subtree(root);
    for &t in &order {
        if t == root {
            continue;
        }
        let (parent, fk_col) = tree
            .parent(t)
            .ok_or_else(|| GhostError::catalog("subtree table missing parent"))?;
        let parent_ids = wide[parent.index()]
            .as_ref()
            .ok_or_else(|| GhostError::catalog("parent not yet resolved"))?
            .clone();
        let fk_values = &data.tables[parent.index()].columns[fk_col.index()];
        let mut ids = Vec::with_capacity(parent_ids.len());
        for &p in &parent_ids {
            let v = fk_values[p as usize]
                .as_int()
                .ok_or_else(|| GhostError::corrupt("non-integer foreign key"))?;
            ids.push(v as u32);
        }
        wide[t.index()] = Some(ids);
    }
    Ok(wide)
}

/// Convenience: which visibility applies to a column (tests).
pub fn visibility_of(schema: &Schema, cref: ColumnRef) -> Visibility {
    schema.column_def(cref).visibility
}

/// Default RAM granted to a translation's external sort (run buffer plus
/// merge readers); the executor can lower it when the budget is tight.
pub const TRANSLATE_SORT_RAM: usize = 16 * 1024;
