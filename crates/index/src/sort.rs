//! External merge sort over flash temp segments.
//!
//! Translating a delegated visible id list through a climbing key index
//! can produce millions of root ids — far beyond 64 KB of RAM. GhostDB
//! therefore sorts id lists the classic way: bounded in-RAM runs spilled
//! to flash, then k-way merged with one page buffer per run. The flash
//! write/read asymmetry (§3) makes the spill threshold a first-class cost
//! knob, which the hardware-sweep experiment (`EXP-S3`) exercises.
//!
//! Records are fixed-width and `Copy`; the sorter is generic over
//! [`SortRecord`] (u32/u64 ids and id pairs).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ghostdb_flash::{Segment, SegmentReader, Volume};
use ghostdb_ram::{RamScope, TrackedVec};
use ghostdb_types::Result;

/// A fixed-width sortable record.
pub trait SortRecord: Copy + Ord {
    /// Encoded size in bytes.
    const WIDTH: usize;
    /// Serialize into exactly [`Self::WIDTH`] bytes.
    fn store(&self, out: &mut [u8]);
    /// Deserialize from exactly [`Self::WIDTH`] bytes.
    fn load(buf: &[u8]) -> Self;
}

impl SortRecord for u32 {
    const WIDTH: usize = 4;
    fn store(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }
    fn load(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf.try_into().expect("4B"))
    }
}

impl SortRecord for u64 {
    const WIDTH: usize = 8;
    fn store(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }
    fn load(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf.try_into().expect("8B"))
    }
}

impl SortRecord for (u32, u32) {
    const WIDTH: usize = 8;
    fn store(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.0.to_le_bytes());
        out[4..].copy_from_slice(&self.1.to_le_bytes());
    }
    fn load(buf: &[u8]) -> Self {
        (
            u32::from_le_bytes(buf[..4].try_into().expect("4B")),
            u32::from_le_bytes(buf[4..].try_into().expect("4B")),
        )
    }
}

/// Sorted output: either a small in-RAM vector (no spill happened) or a
/// stream over a flash segment.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // Ram is the common case; boxing it would cost a pointer chase per record
pub enum SortedStream<T: SortRecord> {
    /// Everything fit in the run buffer; not spilled.
    Ram {
        /// Sorted records (still RAM-charged through the TrackedVec).
        items: TrackedVec<T>,
        /// Cursor.
        pos: usize,
    },
    /// Spilled and merged; streamed back from flash.
    Flash {
        /// Reader over the final sorted segment.
        reader: SegmentReader,
        /// Segment (kept so `Drop` can free its flash space).
        segment: Segment,
        /// Volume for freeing on drop.
        volume: Volume,
        /// Records remaining.
        remaining: u64,
    },
}

impl<T: SortRecord> SortedStream<T> {
    /// Next record in ascending order.
    pub fn next_rec(&mut self) -> Result<Option<T>> {
        match self {
            SortedStream::Ram { items, pos } => {
                let r = items.as_slice().get(*pos).copied();
                *pos += 1;
                Ok(r)
            }
            SortedStream::Flash {
                reader, remaining, ..
            } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                let mut buf = [0u8; 16];
                reader.read_exact(&mut buf[..T::WIDTH])?;
                *remaining -= 1;
                Ok(Some(T::load(&buf[..T::WIDTH])))
            }
        }
    }

    /// Total number of records.
    pub fn len(&self) -> u64 {
        match self {
            SortedStream::Ram { items, .. } => items.len() as u64,
            SortedStream::Flash { segment, .. } => segment.len() / T::WIDTH as u64,
        }
    }

    /// True if the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: SortRecord> Drop for SortedStream<T> {
    fn drop(&mut self) {
        if let SortedStream::Flash {
            segment, volume, ..
        } = self
        {
            let _ = volume.free(segment.clone());
        }
    }
}

/// External merge sorter with a hard RAM allowance.
#[derive(Debug)]
pub struct ExternalSorter<T: SortRecord> {
    volume: Volume,
    scope: RamScope,
    /// In-RAM run buffer.
    run: TrackedVec<T>,
    run_capacity: usize,
    /// Spilled sorted runs.
    runs: Vec<Segment>,
    total: u64,
    spills: u64,
}

impl<T: SortRecord> ExternalSorter<T> {
    /// Create a sorter allowed ~`ram_bytes` for its run buffer. Merge-time
    /// page buffers are charged separately when `finish` runs.
    pub fn new(volume: &Volume, scope: &RamScope, ram_bytes: usize) -> Result<Self> {
        let cap = (ram_bytes / std::mem::size_of::<T>()).max(16);
        Ok(ExternalSorter {
            volume: volume.clone(),
            scope: scope.clone(),
            run: TrackedVec::with_capacity(scope, cap)?,
            run_capacity: cap,
            runs: Vec::new(),
            total: 0,
            spills: 0,
        })
    }

    /// Add a record.
    pub fn push(&mut self, rec: T) -> Result<()> {
        if self.run.len() >= self.run_capacity {
            self.spill()?;
        }
        self.run.push(rec)?;
        self.total += 1;
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.run.is_empty() {
            return Ok(());
        }
        self.run.as_mut_slice().sort_unstable();
        let mut w = self.volume.writer(&self.scope)?;
        let mut buf = vec![0u8; T::WIDTH];
        for rec in self.run.iter() {
            rec.store(&mut buf);
            w.write(&buf)?;
        }
        self.runs.push(w.finish()?);
        self.run.clear();
        self.spills += 1;
        Ok(())
    }

    /// Number of spilled runs so far (observability for tests/benches).
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Total records pushed.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sort everything and return the ascending stream.
    pub fn finish(mut self) -> Result<SortedStream<T>> {
        if self.runs.is_empty() {
            // Pure in-RAM sort.
            self.run.as_mut_slice().sort_unstable();
            let items =
                std::mem::replace(&mut self.run, TrackedVec::with_capacity(&self.scope, 0)?);
            return Ok(SortedStream::Ram { items, pos: 0 });
        }
        self.spill()?; // flush the tail run
                       // Release the run buffer before allocating merge readers.
        self.run = TrackedVec::with_capacity(&self.scope, 0)?;
        // Multi-pass merge bounded by available RAM: each input run costs
        // one page buffer, plus one writer page.
        let page = self.volume.page_size();
        let fan_in = (self.scope.budget().available() / page)
            .saturating_sub(2)
            .clamp(2, 16);
        let mut runs = std::mem::take(&mut self.runs);
        while runs.len() > 1 {
            let mut next: Vec<Segment> = Vec::new();
            for group in runs.chunks(fan_in) {
                next.push(self.merge_group(group)?);
            }
            for seg in runs {
                self.volume.free(seg)?;
            }
            runs = next;
        }
        let segment = runs.pop().expect("at least one run");
        let reader = self.volume.reader(&self.scope, &segment)?;
        let remaining = segment.len() / T::WIDTH as u64;
        Ok(SortedStream::Flash {
            reader,
            segment,
            volume: self.volume.clone(),
            remaining,
        })
    }

    fn merge_group(&self, group: &[Segment]) -> Result<Segment> {
        let mut readers: Vec<SegmentReader> = group
            .iter()
            .map(|s| self.volume.reader(&self.scope, s))
            .collect::<Result<_>>()?;
        let mut counts: Vec<u64> = group.iter().map(|s| s.len() / T::WIDTH as u64).collect();
        let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::new();
        let mut buf = vec![0u8; T::WIDTH];
        for (i, r) in readers.iter_mut().enumerate() {
            if counts[i] > 0 {
                r.read_exact(&mut buf)?;
                counts[i] -= 1;
                heap.push(Reverse((T::load(&buf), i)));
            }
        }
        let mut w = self.volume.writer(&self.scope)?;
        while let Some(Reverse((rec, i))) = heap.pop() {
            rec.store(&mut buf);
            w.write(&buf)?;
            if counts[i] > 0 {
                readers[i].read_exact(&mut buf)?;
                counts[i] -= 1;
                heap.push(Reverse((T::load(&buf), i)));
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{FlashConfig, SimClock};

    fn setup(ram: usize) -> (Volume, RamScope) {
        let cfg = FlashConfig {
            page_size: 256,
            pages_per_block: 8,
            num_blocks: 1024,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, SimClock::new()));
        let scope = RamScope::new(&RamBudget::new(ram));
        (volume, scope)
    }

    fn drain<T: SortRecord>(mut s: SortedStream<T>) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(r) = s.next_rec().unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn in_ram_sort_small() {
        let (vol, scope) = setup(64 * 1024);
        let mut sorter: ExternalSorter<u64> = ExternalSorter::new(&vol, &scope, 8 * 1024).unwrap();
        for v in [5u64, 3, 9, 1, 7] {
            sorter.push(v).unwrap();
        }
        assert_eq!(sorter.spilled_runs(), 0);
        let s = sorter.finish().unwrap();
        assert_eq!(drain(s), vec![1, 3, 5, 7, 9]);
        // No flash writes happened.
        assert_eq!(vol.nand().stats().page_programs, 0);
    }

    #[test]
    fn spilling_sort_matches_std() {
        let (vol, scope) = setup(64 * 1024);
        // Tiny run buffer forces many spills.
        let mut sorter: ExternalSorter<u64> = ExternalSorter::new(&vol, &scope, 256).unwrap();
        let mut expect: Vec<u64> = (0..5000u64).map(|i| (i * 2_654_435_761) % 10_007).collect();
        for &v in &expect {
            sorter.push(v).unwrap();
        }
        assert!(sorter.spilled_runs() > 10);
        let got = drain(sorter.finish().unwrap());
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(vol.nand().stats().page_programs > 0);
    }

    #[test]
    fn multi_pass_merge_under_tight_ram() {
        // RAM fits only a handful of page buffers -> fan-in clamp -> more
        // than one merge pass.
        let (vol, scope) = setup(2 * 1024);
        let mut sorter: ExternalSorter<u32> = ExternalSorter::new(&vol, &scope, 128).unwrap();
        let mut expect: Vec<u32> = (0..3000u32).rev().collect();
        for &v in &expect {
            sorter.push(v).unwrap();
        }
        let got = drain(sorter.finish().unwrap());
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn pairs_sort_by_first_then_second() {
        let (vol, scope) = setup(64 * 1024);
        let mut sorter: ExternalSorter<(u32, u32)> =
            ExternalSorter::new(&vol, &scope, 128).unwrap();
        let recs = [(3u32, 1u32), (1, 9), (3, 0), (1, 2), (2, 5)];
        for r in recs {
            sorter.push(r).unwrap();
        }
        let got = drain(sorter.finish().unwrap());
        assert_eq!(got, vec![(1, 2), (1, 9), (2, 5), (3, 0), (3, 1)]);
    }

    #[test]
    fn temp_segments_are_reclaimed() {
        let (vol, scope) = setup(64 * 1024);
        let live_before = vol.usage().live_pages;
        {
            let mut sorter: ExternalSorter<u64> = ExternalSorter::new(&vol, &scope, 256).unwrap();
            for v in (0..4000u64).rev() {
                sorter.push(v).unwrap();
            }
            let s = sorter.finish().unwrap();
            drop(s); // stream drop frees the final segment
        }
        assert_eq!(vol.usage().live_pages, live_before);
    }

    #[test]
    fn empty_sorter() {
        let (vol, scope) = setup(64 * 1024);
        let sorter: ExternalSorter<u64> = ExternalSorter::new(&vol, &scope, 256).unwrap();
        assert!(sorter.is_empty());
        let s = sorter.finish().unwrap();
        assert!(s.is_empty());
        assert_eq!(drain(s), Vec::<u64>::new());
    }

    #[test]
    fn duplicates_survive() {
        let (vol, scope) = setup(64 * 1024);
        let mut sorter: ExternalSorter<u32> = ExternalSorter::new(&vol, &scope, 64).unwrap();
        for _ in 0..100 {
            sorter.push(7).unwrap();
        }
        for _ in 0..50 {
            sorter.push(3).unwrap();
        }
        let got = drain(sorter.finish().unwrap());
        assert_eq!(got.len(), 150);
        assert!(got[..50].iter().all(|&v| v == 3));
        assert!(got[50..].iter().all(|&v| v == 7));
    }
}
