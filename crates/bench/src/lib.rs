//! Shared harness for the figure-regeneration binary and the Criterion
//! benches.
//!
//! Every experiment of the evaluation is driven from here: fixtures are
//! deterministic (seeded generators), measurements report **simulated
//! time** (the paper's metric — deterministic under the hardware model)
//! while Criterion additionally reports host wall time of the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gates;

use std::io::Write as _;
use std::path::Path;

use ghostdb_core::GhostDb;
use ghostdb_types::{Date, DeviceConfig, Result};
use ghostdb_workload::{generate_medical, MedicalConfig, MEDICAL_DDL};

/// A loaded database plus its generator config.
pub struct Fixture {
    /// The loaded database.
    pub db: GhostDb,
    /// Generator parameters used.
    pub cfg: MedicalConfig,
}

/// Build the medical fixture at `prescriptions` scale with the paper's
/// default hardware.
pub fn medical_fixture(prescriptions: usize) -> Result<Fixture> {
    medical_fixture_with(prescriptions, DeviceConfig::default_2007())
}

/// Build the medical fixture with custom hardware.
pub fn medical_fixture_with(prescriptions: usize, config: DeviceConfig) -> Result<Fixture> {
    let cfg = MedicalConfig::scaled(prescriptions);
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, config, &data)?;
    Ok(Fixture { db, cfg })
}

/// The dataset alongside the db (baseline experiments need raw ids).
pub fn medical_fixture_with_data(
    prescriptions: usize,
    config: DeviceConfig,
) -> Result<(Fixture, ghostdb_storage::Dataset)> {
    let cfg = MedicalConfig::scaled(prescriptions);
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, config, &data)?;
    Ok((Fixture { db, cfg }, data))
}

impl Fixture {
    /// Mid-range date cutoff (≈50% visible selectivity), as used by the
    /// Figure 6 comparison.
    pub fn mid_date(&self) -> Date {
        Date(self.cfg.date_start.0 + (self.cfg.date_span_days / 2) as i32)
    }
}

/// One measured plan execution.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Plan label.
    pub label: String,
    /// Simulated execution time, ns.
    pub sim_ns: u64,
    /// Device RAM peak, bytes.
    pub ram_peak: usize,
    /// Result rows.
    pub rows: u64,
    /// Spy-visible bytes that crossed toward the device.
    pub bus_to_device: u64,
    /// Flash page reads.
    pub flash_reads: u64,
    /// Flash page programs.
    pub flash_programs: u64,
}

/// Execute `sql` under `plan` and collect the headline numbers.
pub fn measure_plan(db: &GhostDb, sql: &str, plan: &ghostdb_exec::Plan) -> Result<Measured> {
    let out = db.query_with_plan(sql, plan)?;
    Ok(Measured {
        label: plan.label.clone(),
        sim_ns: out.report.total_ns,
        ram_peak: out.report.ram_peak,
        rows: out.report.result_rows,
        bus_to_device: out.report.bus_bytes_to_device,
        flash_reads: out.report.flash.page_reads,
        flash_programs: out.report.flash.page_programs,
    })
}

/// Append rows to `results/<name>.csv` (header written once).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

pub mod latency {
    //! Latency helpers shared by the `bench_*` runners (previously
    //! copy-pasted per binary).

    use ghostdb_core::GhostDb;
    use ghostdb_types::Result;

    /// Minimum simulated latency of `sql` over `runs` executions — the
    /// stable "how fast can this query go right now" probe the insert,
    /// mutation, and observability runners all use.
    pub fn min_query_ns(db: &GhostDb, sql: &str, runs: usize) -> Result<u64> {
        let mut best = u64::MAX;
        for _ in 0..runs.max(1) {
            best = best.min(db.query(sql)?.report.total_ns);
        }
        Ok(best)
    }

    /// The `p`-th percentile (`0.0..=1.0`) of `samples`, nearest-rank on
    /// the sorted values (the index truncates, matching the concurrency
    /// runner's original closure). Sorts in place.
    pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
        assert!(!samples.is_empty(), "percentile of an empty sample set");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        samples[((samples.len() - 1) as f64 * p.clamp(0.0, 1.0)) as usize]
    }

    #[cfg(test)]
    mod tests {
        use super::percentile;

        #[test]
        fn percentile_matches_nearest_rank() {
            let mut s = vec![4.0, 1.0, 3.0, 2.0];
            assert_eq!(percentile(&mut s, 0.0), 1.0);
            assert_eq!(percentile(&mut s, 0.5), 2.0); // (4-1)*0.5 = 1.5 → idx 1
            assert_eq!(percentile(&mut s, 0.99), 3.0);
            assert_eq!(percentile(&mut s, 1.0), 4.0);
        }
    }
}

/// A unicode bar for quick terminal charts (Figure 6 style).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let w = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    "#".repeat(w.min(width))
}

pub mod vectorized {
    //! Shared payloads for the scalar-vs-blocked pipeline benchmarks
    //! (`benches/vectorized.rs` and the `bench_vectorized` runner that
    //! records the perf trajectory in `BENCH_PR1.json`). Both measure
    //! exactly these functions, so the JSON numbers and the criterion
    //! output can be cross-checked.

    use ghostdb_bloom::{BlockedBloomFilter, BloomFilter};
    use ghostdb_exec::{MergeIntersect, ScalarMergeIntersect};
    use ghostdb_ram::{RamBudget, RamScope};
    use ghostdb_types::{IdStream, Result, RowId, ScalarFallback, SimClock, SliceIdStream};

    /// Two ascending `n`-id lists sharing `overlap` of their ids.
    ///
    /// The unique ids come in alternating runs (~97 ids per list between
    /// shared ids), the shape climbing-index postings take in practice:
    /// children of one parent cluster, so one list's ids arrive in
    /// stretches the other list skips entirely. This is the layout
    /// `seek_at_least` galloping exists for.
    pub fn overlapping_lists(n: usize, overlap: f64) -> (Vec<RowId>, Vec<RowId>) {
        let shared = (((n as f64) * overlap.clamp(0.0, 1.0)).round() as usize).min(n);
        let unique = n - shared;
        let mut a: Vec<RowId> = Vec::with_capacity(n);
        let mut b: Vec<RowId> = Vec::with_capacity(n);
        let run = 97usize;
        let mut next_id = 0u32;
        let (mut ua, mut ub, mut s) = (0usize, 0usize, 0usize);
        // Interleave: run of A-only, run of B-only, one shared id, …
        while ua < unique || ub < unique || s < shared {
            for _ in 0..run.min(unique - ua) {
                a.push(RowId(next_id));
                next_id += 1;
                ua += 1;
            }
            for _ in 0..run.min(unique - ub) {
                b.push(RowId(next_id));
                next_id += 1;
                ub += 1;
            }
            if s < shared {
                a.push(RowId(next_id));
                b.push(RowId(next_id));
                next_id += 1;
                s += 1;
            }
        }
        (a, b)
    }

    /// Intersect with the blocked, galloping merge; returns the match
    /// count. Streams borrow the slices (O(1) setup), so the timing is
    /// pure merge cost.
    pub fn merge_blocked(a: &[RowId], b: &[RowId]) -> Result<u64> {
        let inputs: Vec<Box<dyn IdStream + '_>> = vec![
            Box::new(SliceIdStream::new(a)),
            Box::new(SliceIdStream::new(b)),
        ];
        let mut m = MergeIntersect::new(inputs, SimClock::new(), 1);
        let mut block = ghostdb_types::IdBlock::new();
        let mut count = 0u64;
        loop {
            m.next_block(&mut block)?;
            if block.is_empty() {
                return Ok(count);
            }
            count += block.len() as u64;
        }
    }

    /// Intersect with the seed's id-at-a-time merge; returns the match
    /// count.
    pub fn merge_scalar(a: &[RowId], b: &[RowId]) -> Result<u64> {
        let inputs: Vec<Box<dyn IdStream + '_>> = vec![
            Box::new(ScalarFallback(SliceIdStream::new(a))),
            Box::new(ScalarFallback(SliceIdStream::new(b))),
        ];
        let mut m = ScalarMergeIntersect::new(inputs, SimClock::new(), 1);
        let mut count = 0u64;
        while m.next_id()?.is_some() {
            count += 1;
        }
        Ok(count)
    }

    /// Keys for the Bloom benchmarks: `n` members plus `n` probes with a
    /// 50/50 hit/miss mix.
    pub fn bloom_keys(n: usize) -> (Vec<u64>, Vec<u64>) {
        let members: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
        let probes: Vec<u64> = (0..n as u64)
            .map(|i| if i % 2 == 0 { i * 7 + 3 } else { i * 7 + 4 })
            .collect();
        (members, probes)
    }

    /// Build a classic bit-array filter at 1% target fpr (k = 7, the
    /// textbook probe cost) holding `members`.
    pub fn bloom_scalar_filter(members: &[u64], scope: &RamScope) -> Result<BloomFilter> {
        let mut f = BloomFilter::for_capacity(scope, members.len(), 0.01)?;
        for &k in members {
            f.insert(k);
        }
        Ok(f)
    }

    /// Build a cache-line-blocked filter with the same sizing, filled
    /// through `insert_batch`.
    pub fn bloom_blocked_filter(members: &[u64], scope: &RamScope) -> Result<BlockedBloomFilter> {
        let mut f = BlockedBloomFilter::for_capacity(scope, members.len(), 0.01)?;
        f.insert_batch(members);
        Ok(f)
    }

    /// Probe key-at-a-time (the seed's executor inner loop); returns the
    /// hit count.
    pub fn probe_scalar(f: &BloomFilter, probes: &[u64]) -> u64 {
        probes.iter().filter(|&&k| f.contains(k)).count() as u64
    }

    /// Probe through `probe_batch`; `hits` is the reusable result
    /// buffer. Returns the hit count.
    pub fn probe_blocked(f: &BlockedBloomFilter, probes: &[u64], hits: &mut Vec<bool>) -> u64 {
        f.probe_batch(probes, hits);
        hits.iter().filter(|&&h| h).count() as u64
    }

    /// A scratch RAM scope big enough for the bench filters (1.2 MB per
    /// filter at 10^6 keys).
    pub fn bloom_scope() -> RamScope {
        RamScope::new(&RamBudget::new(16 * 1024 * 1024))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn list_shapes_are_as_specified() {
            let (a, b) = overlapping_lists(100_000, 0.01);
            assert_eq!(a.len(), 100_000);
            assert_eq!(b.len(), 100_000);
            assert!(a.windows(2).all(|w| w[0] < w[1]));
            assert!(b.windows(2).all(|w| w[0] < w[1]));
            let bs: std::collections::HashSet<_> = b.iter().collect();
            let shared = a.iter().filter(|id| bs.contains(id)).count();
            assert_eq!(shared, 1_000);
        }

        #[test]
        fn merges_agree_on_the_bench_payload() {
            for &n in &[1_000usize, 10_000] {
                let (a, b) = overlapping_lists(n, 0.01);
                let expect = (n as f64 * 0.01).round() as u64;
                assert_eq!(merge_blocked(&a, &b).unwrap(), expect);
                assert_eq!(merge_scalar(&a, &b).unwrap(), expect);
            }
        }

        #[test]
        fn blooms_count_all_members() {
            let scope = bloom_scope();
            let (members, probes) = bloom_keys(10_000);
            let scalar_f = bloom_scalar_filter(&members, &scope).unwrap();
            let blocked_f = bloom_blocked_filter(&members, &scope).unwrap();
            let scalar = probe_scalar(&scalar_f, &probes);
            let mut hits = Vec::new();
            let blocked = probe_blocked(&blocked_f, &probes, &mut hits);
            // Every even probe is a member: at least half must hit, and
            // the 1% target fpr keeps both counts close to n/2.
            assert!(scalar >= 5_000);
            assert!(blocked >= 5_000);
            assert!(scalar <= 5_600 && blocked <= 5_600, "{scalar} {blocked}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_queries() {
        let f = medical_fixture(1_000).unwrap();
        let sql = ghostdb_workload::paper_query(f.mid_date());
        let spec = f.db.bind(&sql).unwrap();
        let p1 = f.db.plan_pre(&spec);
        let m = measure_plan(&f.db, &sql, &p1).unwrap();
        assert!(m.sim_ns > 0);
        assert_eq!(m.label, "P1");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
