//! Shared harness for the figure-regeneration binary and the Criterion
//! benches.
//!
//! Every experiment in EXPERIMENTS.md is driven from here: fixtures are
//! deterministic (seeded generators), measurements report **simulated
//! time** (the paper's metric — deterministic under the hardware model)
//! while Criterion additionally reports host wall time of the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::Path;

use ghostdb_core::GhostDb;
use ghostdb_types::{Date, DeviceConfig, Result};
use ghostdb_workload::{generate_medical, MedicalConfig, MEDICAL_DDL};

/// A loaded database plus its generator config.
pub struct Fixture {
    /// The loaded database.
    pub db: GhostDb,
    /// Generator parameters used.
    pub cfg: MedicalConfig,
}

/// Build the medical fixture at `prescriptions` scale with the paper's
/// default hardware.
pub fn medical_fixture(prescriptions: usize) -> Result<Fixture> {
    medical_fixture_with(prescriptions, DeviceConfig::default_2007())
}

/// Build the medical fixture with custom hardware.
pub fn medical_fixture_with(prescriptions: usize, config: DeviceConfig) -> Result<Fixture> {
    let cfg = MedicalConfig::scaled(prescriptions);
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, config, &data)?;
    Ok(Fixture { db, cfg })
}

/// The dataset alongside the db (baseline experiments need raw ids).
pub fn medical_fixture_with_data(
    prescriptions: usize,
    config: DeviceConfig,
) -> Result<(Fixture, ghostdb_storage::Dataset)> {
    let cfg = MedicalConfig::scaled(prescriptions);
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, config, &data)?;
    Ok((Fixture { db, cfg }, data))
}

impl Fixture {
    /// Mid-range date cutoff (≈50% visible selectivity), as used by the
    /// Figure 6 comparison.
    pub fn mid_date(&self) -> Date {
        Date(self.cfg.date_start.0 + (self.cfg.date_span_days / 2) as i32)
    }
}

/// One measured plan execution.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Plan label.
    pub label: String,
    /// Simulated execution time, ns.
    pub sim_ns: u64,
    /// Device RAM peak, bytes.
    pub ram_peak: usize,
    /// Result rows.
    pub rows: u64,
    /// Spy-visible bytes that crossed toward the device.
    pub bus_to_device: u64,
    /// Flash page reads.
    pub flash_reads: u64,
    /// Flash page programs.
    pub flash_programs: u64,
}

/// Execute `sql` under `plan` and collect the headline numbers.
pub fn measure_plan(
    db: &GhostDb,
    sql: &str,
    plan: &ghostdb_exec::Plan,
) -> Result<Measured> {
    let out = db.query_with_plan(sql, plan)?;
    Ok(Measured {
        label: plan.label.clone(),
        sim_ns: out.report.total_ns,
        ram_peak: out.report.ram_peak,
        rows: out.report.result_rows,
        bus_to_device: out.report.bus_bytes_to_device,
        flash_reads: out.report.flash.page_reads,
        flash_programs: out.report.flash.page_programs,
    })
}

/// Append rows to `results/<name>.csv` (header written once).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// A unicode bar for quick terminal charts (Figure 6 style).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let w = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    "#".repeat(w.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_queries() {
        let f = medical_fixture(1_000).unwrap();
        let sql = ghostdb_workload::paper_query(f.mid_date());
        let spec = f.db.bind(&sql).unwrap();
        let p1 = f.db.plan_pre(&spec);
        let m = measure_plan(&f.db, &sql, &p1).unwrap();
        assert!(m.sim_ns > 0);
        assert_eq!(m.label, "P1");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
