//! Perf-trajectory gate checking over the `BENCH_PR*.json` files.
//!
//! Every perf PR records its headline numbers in a `BENCH_PR<n>.json`
//! at the repo root, with an `"acceptance"` object naming the measured
//! values and their gates. The `check_bench` binary (CI's bench-smoke
//! job) parses every file with this module and fails the build if any
//! recorded gate regressed — the trajectory is enforced, not
//! aspirational.
//!
//! Gate naming convention inside `"acceptance"`:
//!
//! * `<name>_gate_min`: the sibling key `<name>` must be **≥** the gate
//!   (throughputs, speedups).
//! * `<name>_gate_max`: the sibling key `<name>` must be **≤** the gate
//!   (write amplification, wear spread).
//! * `<prefix>_gate` (legacy, PR 1): the measured key is the one
//!   starting with `<prefix>` (e.g. `merge_gate` gates
//!   `merge_speedup_100k`), and must be **≥** the gate.
//! * `pass`: must be present and `true` (the runner's own verdict).
//!
//! The parser handles exactly the flat number/bool acceptance objects
//! our runners emit — no external JSON crate (the build is offline).

/// A value in an acceptance object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateValue {
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
}

/// Extract the flat `"acceptance": { ... }` object from a bench JSON
/// file as `(key, value)` pairs. Errors on a missing or malformed
/// object.
pub fn parse_acceptance(json: &str) -> Result<Vec<(String, GateValue)>, String> {
    let start = json
        .find("\"acceptance\"")
        .ok_or_else(|| "no \"acceptance\" object".to_string())?;
    let open = json[start..]
        .find('{')
        .map(|i| start + i)
        .ok_or_else(|| "no '{' after \"acceptance\"".to_string())?;
    let close = json[open..]
        .find('}')
        .map(|i| open + i)
        .ok_or_else(|| "unterminated acceptance object".to_string())?;
    let body = &json[open + 1..close];

    let mut entries = Vec::new();
    for field in body.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("malformed acceptance field {field:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        let parsed = match value {
            "true" => GateValue::Bool(true),
            "false" => GateValue::Bool(false),
            num => GateValue::Num(
                num.parse::<f64>()
                    .map_err(|_| format!("non-numeric acceptance value {num:?} for {key}"))?,
            ),
        };
        entries.push((key, parsed));
    }
    Ok(entries)
}

fn num_of(entries: &[(String, GateValue)], key: &str) -> Option<f64> {
    entries.iter().find_map(|(k, v)| match v {
        GateValue::Num(n) if k == key => Some(*n),
        _ => None,
    })
}

/// Apply the gate rules to one parsed acceptance object; returns the
/// list of violations (empty = all gates hold).
pub fn check_gates(entries: &[(String, GateValue)]) -> Vec<String> {
    let mut violations = Vec::new();

    match entries.iter().find(|(k, _)| k == "pass") {
        Some((_, GateValue::Bool(true))) => {}
        Some((_, v)) => violations.push(format!("\"pass\" is {v:?}, expected true")),
        None => violations.push("acceptance object has no \"pass\" verdict".to_string()),
    }

    for (key, value) in entries {
        let GateValue::Num(gate) = *value else {
            continue;
        };
        if let Some(name) = key.strip_suffix("_gate_min") {
            match num_of(entries, name) {
                Some(measured) if measured >= gate => {}
                Some(measured) => {
                    violations.push(format!("{name} = {measured} regressed below gate {gate}"))
                }
                None => violations.push(format!("gate {key} has no measured sibling {name}")),
            }
        } else if let Some(name) = key.strip_suffix("_gate_max") {
            match num_of(entries, name) {
                Some(measured) if measured <= gate => {}
                Some(measured) => {
                    violations.push(format!("{name} = {measured} regressed above gate {gate}"))
                }
                None => violations.push(format!("gate {key} has no measured sibling {name}")),
            }
        } else if let Some(prefix) = key.strip_suffix("_gate") {
            // Legacy form: gate the measured key sharing the prefix.
            let measured = entries.iter().find_map(|(k, v)| match v {
                GateValue::Num(n) if k != key && k.starts_with(prefix) && !k.contains("_gate") => {
                    Some((k.clone(), *n))
                }
                _ => None,
            });
            match measured {
                Some((_, m)) if m >= gate => {}
                Some((name, m)) => {
                    violations.push(format!("{name} = {m} regressed below gate {gate}"))
                }
                None => violations.push(format!(
                    "gate {key} has no measured sibling starting with {prefix:?}"
                )),
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const PR1_STYLE: &str = r#"{
  "pr": 1,
  "results": [],
  "acceptance": {
    "merge_speedup_100k": 34.42,
    "merge_gate": 3.0,
    "bloom_speedup_100k": 2.11,
    "bloom_gate": 2.0,
    "pass": true
  }
}"#;

    #[test]
    fn pr1_file_parses_and_passes() {
        let entries = parse_acceptance(PR1_STYLE).unwrap();
        assert_eq!(entries.len(), 5);
        assert_eq!(num_of(&entries, "merge_speedup_100k"), Some(34.42));
        assert!(check_gates(&entries).is_empty());
    }

    #[test]
    fn legacy_gate_regression_is_caught() {
        let json = PR1_STYLE.replace("34.42", "2.9");
        let entries = parse_acceptance(&json).unwrap();
        let v = check_gates(&entries);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("merge_speedup_100k"), "{v:?}");
    }

    #[test]
    fn min_and_max_gates() {
        let json = r#"{"acceptance": {
            "gc_reclaim_mb_per_s": 120.5,
            "gc_reclaim_mb_per_s_gate_min": 10.0,
            "write_amp": 1.4,
            "write_amp_gate_max": 2.0,
            "pass": true
        }}"#;
        let entries = parse_acceptance(json).unwrap();
        assert!(check_gates(&entries).is_empty());

        let worse = json.replace("1.4", "2.5");
        let v = check_gates(&parse_acceptance(&worse).unwrap());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("write_amp"), "{v:?}");

        let slower = json.replace("120.5", "3.0");
        let v = check_gates(&parse_acceptance(&slower).unwrap());
        assert!(v[0].contains("gc_reclaim_mb_per_s"), "{v:?}");
    }

    #[test]
    fn pass_false_or_missing_fails() {
        let json = PR1_STYLE.replace("\"pass\": true", "\"pass\": false");
        assert!(!check_gates(&parse_acceptance(&json).unwrap()).is_empty());
        let json = r#"{"acceptance": {"x": 1.0}}"#;
        assert!(!check_gates(&parse_acceptance(json).unwrap()).is_empty());
    }

    #[test]
    fn pr8_style_concurrency_gates() {
        // The shape bench_concurrency emits: a min-gated scaling
        // factor, a min-gated overlap count, and a max-gated p99.
        let json = r#"{"acceptance": {
            "read_scaling_4t": 3.91,
            "read_scaling_4t_gate_min": 2.0,
            "flush_overlap_reads": 2036,
            "flush_overlap_reads_gate_min": 1.0,
            "flush_p99_ms": 0.06,
            "flush_p99_ms_gate_max": 500.0,
            "pass": true
        }}"#;
        let entries = parse_acceptance(json).unwrap();
        assert!(check_gates(&entries).is_empty());

        let flat = json.replace("3.91", "1.3");
        let v = check_gates(&parse_acceptance(&flat).unwrap());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("read_scaling_4t"), "{v:?}");

        let stalled = json.replace("0.06", "1200.0");
        let v = check_gates(&parse_acceptance(&stalled).unwrap());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("flush_p99_ms"), "{v:?}");
    }

    #[test]
    fn missing_acceptance_is_an_error() {
        assert!(parse_acceptance("{\"pr\": 9}").is_err());
        assert!(parse_acceptance("{\"acceptance\": 3}").is_err());
    }

    #[test]
    fn dangling_gate_is_a_violation() {
        let json = r#"{"acceptance": {"lonely_gate_min": 5.0, "pass": true}}"#;
        let v = check_gates(&parse_acceptance(json).unwrap());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("lonely"), "{v:?}");
    }
}
