//! Perf-trajectory runner for the device-RAM page cache at scale,
//! written to `BENCH_PR10.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_scale`
//! (full, paper-scale run) or `... -- --smoke` (small-N CI canary that
//! asserts the same gates scaled down and does **not** rewrite the
//! committed JSON).
//!
//! Two phases:
//!
//! 1. **Cached-read speedup**: the scale dataset is loaded twice —
//!    creation is fully deterministic, so both instances lay out
//!    byte-identical flash — once with `page_cache_pages = 0` and once
//!    with the default cache, and both run an identical script of
//!    bursty zipfian hidden
//!    point queries (which key is probed follows the zipfian law; a
//!    drawn key is probed a few times in a row while it is hot). The
//!    metric is total simulated device time (the repo's perf
//!    currency): cache hits skip the NAND transfer and its clock
//!    charge entirely, so a burst's repeats stop costing anything
//!    after its first probe. Gate: `cold_sim_ns / warm_sim_ns ≥ 3`.
//! 2. **Mixed churn at scale**: a zipfian read/insert/update/delete
//!    stream (`ScaleMix::read_heavy`) runs against a million-row table
//!    (smoke: thousands) with periodic full delta flushes, while a
//!    reader on a pre-churn snapshot hammers skewed point queries
//!    through the shared cache. Gates: sustained mixed-op throughput,
//!    and the reader's p99 latency stays bounded under the interleaved
//!    flushes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use ghostdb_core::GhostDb;
use ghostdb_types::{ColumnId, DeviceConfig, Result, TableId, Value};
use ghostdb_workload::{
    generate_scale, scale_point_query, scale_row, OpStream, ScaleConfig, ScaleMix, ScaleOp,
    Zipfian, SCALE_DDL,
};

/// `Event` is the only table; `Payload` is its third column.
const EVENT: TableId = TableId(0);
const PAYLOAD: ColumnId = ColumnId(2);

struct Dials {
    rows: usize,
    speedup_queries: usize,
    mixed_ops: usize,
    flush_every: usize,
    write_json: bool,
}

impl Dials {
    fn full() -> Dials {
        Dials {
            rows: 1_000_000,
            speedup_queries: 256,
            mixed_ops: 1_200,
            flush_every: 200,
            write_json: true,
        }
    }

    fn smoke() -> Dials {
        Dials {
            rows: 20_000,
            speedup_queries: 64,
            mixed_ops: 200,
            flush_every: 50,
            write_json: false,
        }
    }
}

struct SpeedupOut {
    cold_sim_ns: u64,
    warm_sim_ns: u64,
    speedup: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

/// Run the query script and return total simulated ns.
fn run_script(db: &GhostDb, queries: &[String]) -> Result<u64> {
    let mut total = 0u64;
    for sql in queries {
        total += db.query(sql)?.report.total_ns;
    }
    Ok(total)
}

/// Phase 1: identical deterministic loads, cache-off vs cache-on,
/// identical zipfian point-query script, compared in simulated device
/// time.
fn speedup_phase(cfg: &ScaleConfig, n_queries: usize) -> Result<SpeedupOut> {
    let data = generate_scale(cfg)?;

    // Bursty zipfian: *which* key is probed follows the zipfian law,
    // and a drawn key is probed `BURST` times in a row (a hot row is
    // re-read while it is hot — retry loops, polling, pagination).
    // One clustered point query touches ~6 pages, so the burst's
    // repeats are exactly what a 8-page mirror can serve; cache-off
    // pays the NAND transfer for every probe, cache-on once per burst.
    const BURST: usize = 8;
    let mut z = Zipfian::new(cfg.payload_cardinality as u64, cfg.theta, 0xfeed_f00d);
    let queries: Vec<String> = (0..n_queries.div_ceil(BURST))
        .flat_map(|_| {
            let q = scale_point_query(z.next() as i64);
            std::iter::repeat_n(q, BURST)
        })
        .collect();

    let mut cache_off = DeviceConfig::default_2007();
    cache_off.flash.page_cache_pages = 0;
    let cold_db = GhostDb::create(SCALE_DDL, cache_off, &data)?;
    assert_eq!(
        cold_db.volume().page_cache_stats().capacity_pages,
        0,
        "cache-off create must not configure a mirror"
    );
    let cold_sim_ns = run_script(&cold_db, &queries)?;
    let cold_pages = cold_db.volume().usage().live_pages;
    drop(cold_db);

    let warm_db = GhostDb::create(SCALE_DDL, DeviceConfig::default_2007(), &data)?;
    assert_eq!(
        warm_db.volume().usage().live_pages,
        cold_pages,
        "deterministic creation must lay out identical flash"
    );
    // Drop whatever residency the load left behind so the script
    // starts from a cold mirror; the counters are measured as deltas.
    let cap = warm_db.volume().page_cache_stats().capacity_pages;
    warm_db.volume().configure_page_cache(cap, warm_db.ram())?;
    let s0 = warm_db.volume().page_cache_stats();
    let warm_sim_ns = run_script(&warm_db, &queries)?;
    let stats = warm_db.volume().page_cache_stats();
    // The registry scrape and the volume's own view must agree.
    let snap = warm_db.metrics();
    assert_eq!(snap.counter("ghostdb_page_cache_hits_total"), stats.hits);
    assert_eq!(
        snap.counter("ghostdb_page_cache_misses_total"),
        stats.misses
    );

    let (hits, misses) = (stats.hits - s0.hits, stats.misses - s0.misses);
    Ok(SpeedupOut {
        cold_sim_ns,
        warm_sim_ns,
        speedup: cold_sim_ns as f64 / warm_sim_ns.max(1) as f64,
        hits,
        misses,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
    })
}

struct MixedOut {
    ops: usize,
    flushes: usize,
    host_secs: f64,
    ops_per_sec: f64,
    sim_ms: f64,
    reader_queries: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// Phase 2: mixed zipfian churn with periodic full flushes under a
/// hammering snapshot reader.
fn mixed_phase(cfg: &ScaleConfig, dials: &Dials) -> Result<MixedOut> {
    let data = generate_scale(cfg)?;
    let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
    let mut db = GhostDb::create(SCALE_DDL, config, &data)?;

    // The frozen-answer canary: one fixed hot query whose snapshot
    // result must never change while the table churns underneath.
    let canary = scale_point_query(
        Zipfian::new(cfg.payload_cardinality as u64, cfg.theta, 0xfeed_f00d).next() as i64,
    );
    let snap = db.snapshot()?;
    let frozen_rows = snap.query(&canary)?.rows.rows.len();
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let done = done.clone();
        let cfg = cfg.clone();
        let canary = canary.clone();
        thread::spawn(move || -> Vec<f64> {
            let mut z = Zipfian::new(cfg.payload_cardinality as u64, cfg.theta, 0xbeef);
            let mut ms = Vec::new();
            let mut i = 0usize;
            while !done.load(Ordering::Relaxed) {
                // Mostly skewed probes through the shared cache, with a
                // periodic canary whose answer must stay frozen.
                let sql = if i.is_multiple_of(16) {
                    canary.clone()
                } else {
                    scale_point_query(z.next() as i64)
                };
                let t0 = Instant::now();
                let out = snap.query(&sql).expect("snapshot read");
                ms.push(t0.elapsed().as_secs_f64() * 1e3);
                if i.is_multiple_of(16) {
                    assert_eq!(
                        out.rows.rows.len(),
                        frozen_rows,
                        "snapshot answer changed under churn"
                    );
                }
                i += 1;
            }
            ms
        })
    };

    let mut ops = OpStream::new(cfg, ScaleMix::read_heavy(), 0x0ddba11);
    let mut sim_ns = 0u64;
    let mut flushes = 0usize;
    let t0 = Instant::now();
    for i in 0..dials.mixed_ops {
        match ops.next_op() {
            ScaleOp::Read(v) => {
                sim_ns += db.query(&scale_point_query(v))?.report.total_ns;
            }
            ScaleOp::Insert => {
                let id = db.stats().rows(EVENT) as i64;
                sim_ns += db.insert_rows(EVENT, vec![scale_row(cfg, id)])?.sim_ns;
            }
            ScaleOp::Update(row, val) => {
                sim_ns += db
                    .update_rows(
                        EVENT,
                        vec![ghostdb_types::RowId(row)],
                        vec![(PAYLOAD, Value::Int(val))],
                    )?
                    .sim_ns;
            }
            ScaleOp::Delete(row) => {
                sim_ns += db
                    .delete_rows(EVENT, vec![ghostdb_types::RowId(row)])?
                    .sim_ns;
            }
        }
        if (i + 1) % dials.flush_every == 0 {
            db.flush_deltas()?;
            flushes += 1;
        }
    }
    let host_secs = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Relaxed);
    let mut ms = reader.join().expect("reader panicked");
    assert_eq!(db.open_snapshots(), 0, "bench leaked snapshots");

    let p50 = ghostdb_bench::latency::percentile(&mut ms, 0.5);
    let p99 = ghostdb_bench::latency::percentile(&mut ms, 0.99);
    Ok(MixedOut {
        ops: dials.mixed_ops,
        flushes,
        host_secs,
        ops_per_sec: dials.mixed_ops as f64 / host_secs,
        sim_ms: sim_ns as f64 / 1e6,
        reader_queries: ms.len(),
        p50_ms: p50,
        p99_ms: p99,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dials = if smoke { Dials::smoke() } else { Dials::full() };
    let cfg = ScaleConfig::scaled(dials.rows);
    eprintln!(
        "scale: {} rows, {} speedup queries, {} mixed ops{}",
        dials.rows,
        dials.speedup_queries,
        dials.mixed_ops,
        if smoke { " (smoke)" } else { "" }
    );

    let s = speedup_phase(&cfg, dials.speedup_queries).expect("speedup phase");
    eprintln!(
        "speedup:  cold {:.2} sim ms, warm {:.2} sim ms -> {:.2}x \
         ({} hits / {} misses, {:.0}% hit rate)",
        s.cold_sim_ns as f64 / 1e6,
        s.warm_sim_ns as f64 / 1e6,
        s.speedup,
        s.hits,
        s.misses,
        s.hit_rate * 100.0,
    );

    let m = mixed_phase(&cfg, &dials).expect("mixed phase");
    eprintln!(
        "mixed:    {} ops + {} flushes in {:.2}s host ({:.1} ops/s, {:.1} sim ms device), \
         reader {} queries p50 {:.2} ms p99 {:.2} ms",
        m.ops,
        m.flushes,
        m.host_secs,
        m.ops_per_sec,
        m.sim_ms,
        m.reader_queries,
        m.p50_ms,
        m.p99_ms,
    );

    // Smoke keeps the same gate *shape* at friendlier levels: the tiny
    // dataset still shows the cache working, without paper-scale churn.
    let speedup_gate_min = if smoke { 1.5 } else { 3.0 };
    let ops_gate_min = if smoke { 5.0 } else { 2.0 };
    let p99_gate_max = 500.0;
    let pass =
        s.speedup >= speedup_gate_min && m.ops_per_sec >= ops_gate_min && m.p99_ms <= p99_gate_max;

    let body = format!(
        "{{\n  \"pr\": 10,\n  \"title\": \"RAM-budgeted NAND page cache + million-row zipfian \
         workload harness\",\n  \
         \"workload\": \"scale({}) bursty zipfian(theta 0.99, burst 8) hidden point queries; \
         identical deterministic loads, cache-off vs cache-on ({} queries); read-heavy mixed \
         stream ({} ops, flush every {}) under a pinned snapshot reader\",\n  \
         \"results\": [\n    \
         {{\"name\": \"cached_reads\", \"cold_sim_ms\": {:.2}, \"warm_sim_ms\": {:.2}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.3}}},\n    \
         {{\"name\": \"mixed_churn\", \"ops\": {}, \"flushes\": {}, \"host_secs\": {:.2}, \
         \"device_sim_ms\": {:.1}, \"reader_queries\": {}, \"reader_p50_ms\": {:.2}}}\n  ],\n  \
         \"acceptance\": {{\n    \"cached_read_speedup\": {:.2},\n    \
         \"cached_read_speedup_gate_min\": {speedup_gate_min:.1},\n    \
         \"mixed_ops_per_sec\": {:.1},\n    \
         \"mixed_ops_per_sec_gate_min\": {ops_gate_min:.1},\n    \
         \"reader_p99_ms\": {:.2},\n    \
         \"reader_p99_ms_gate_max\": {p99_gate_max:.1},\n    \
         \"pass\": {pass}\n  }}\n}}\n",
        dials.rows,
        dials.speedup_queries,
        dials.mixed_ops,
        dials.flush_every,
        s.cold_sim_ns as f64 / 1e6,
        s.warm_sim_ns as f64 / 1e6,
        s.hits,
        s.misses,
        s.hit_rate,
        m.ops,
        m.flushes,
        m.host_secs,
        m.sim_ms,
        m.reader_queries,
        m.p50_ms,
        s.speedup,
        m.ops_per_sec,
        m.p99_ms,
    );
    if dials.write_json {
        std::fs::write("BENCH_PR10.json", &body).expect("write BENCH_PR10.json");
        eprintln!("wrote BENCH_PR10.json");
    } else {
        eprintln!("smoke run: BENCH_PR10.json left untouched");
    }
    println!("{body}");
    assert!(pass, "acceptance gates failed");
}
