//! Perf-trajectory gate checker: reads every `BENCH_PR*.json` at the
//! repo root and fails (exit 1) if any recorded gate regressed.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin check_bench`
//! (CI's bench-smoke job). Gate semantics live in
//! [`ghostdb_bench::gates`].

use ghostdb_bench::gates::{check_gates, parse_acceptance};

fn main() {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .expect("read repo root")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_PR") && n.ends_with(".json"))
        .collect();
    files.sort();

    if files.is_empty() {
        eprintln!("check_bench: no BENCH_PR*.json files found in the current directory");
        std::process::exit(1);
    }

    let mut failed = false;
    for name in &files {
        let body = match std::fs::read_to_string(name) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL {name}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match parse_acceptance(&body) {
            Err(e) => {
                eprintln!("FAIL {name}: {e}");
                failed = true;
            }
            Ok(entries) => {
                let violations = check_gates(&entries);
                if violations.is_empty() {
                    let gates = entries
                        .iter()
                        .filter(|(k, _)| k.contains("_gate") || k == "pass")
                        .count();
                    println!("OK   {name}: {gates} gate(s) hold");
                } else {
                    failed = true;
                    for v in violations {
                        eprintln!("FAIL {name}: {v}");
                    }
                }
            }
        }
    }

    if failed {
        eprintln!("check_bench: perf trajectory regressed");
        std::process::exit(1);
    }
    println!("check_bench: all {} file(s) pass", files.len());
}
