//! Regenerate every table and figure of the GhostDB evaluation.
//!
//! ```text
//! figures [--exp f6|d1|d2a|d2b|s3|b1|b2|scale|game|all] [--scale N]
//! ```
//!
//! Experiment ids follow the paper's figures (f6, d1, ...). Default scale is
//! 100,000 prescriptions; pass `--scale 1000000` for the paper's scale
//! (the load takes a few seconds of host time). Results are printed as
//! paper-style tables and written as CSV under `results/`.

use ghostdb_bench::{bar, measure_plan, medical_fixture, medical_fixture_with};
use ghostdb_bloom::BloomFilter;
use ghostdb_catalog::TreeSchema;
use ghostdb_exec::{climbing_translate_count, grace_hash_join_count, join_index_count};
use ghostdb_flash::{Nand, Volume};
use ghostdb_index::IndexSet;
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_storage::split_dataset;
use ghostdb_types::{format_ns, BusConfig, DeviceConfig, Result, RowId, SimClock, Value};
use ghostdb_workload::{
    game_queries, generate_medical, paper_query, selectivity_query, MedicalConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp = flag(&args, "--exp").unwrap_or_else(|| "all".to_string());
    let scale: usize = flag(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let run = |name: &str| exp == "all" || exp == name;
    let mut failed = false;
    {
        let mut go = |name: &str, f: &dyn Fn() -> Result<()>| {
            if run(name) {
                println!(
                    "\n================ EXP-{} ================",
                    name.to_uppercase()
                );
                if let Err(e) = f() {
                    eprintln!("experiment {name} failed: {e}");
                    failed = true;
                }
            }
        };
        go("f6", &|| exp_f6(scale));
        go("d2a", &|| exp_d2a(scale));
        go("d2b", &|| exp_d2b(scale));
        go("d1", &|| exp_d1(scale.min(50_000)));
        go("s3", &|| exp_s3(scale.min(100_000)));
        go("b1", &|| exp_b1(scale.min(200_000)));
        go("b2", &exp_b2);
        go("scale", &|| exp_scale(scale));
        go("game", &|| exp_game(scale.min(50_000)));
    }
    if failed {
        std::process::exit(1);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn csv_err(e: std::io::Error) -> ghostdb_types::GhostError {
    ghostdb_types::GhostError::exec(e.to_string())
}

/// Figure 6: execution time of the ad-hoc plans P1 (pre-filtering) and
/// P2 (post-filtering) for the §4 example query.
fn exp_f6(scale: usize) -> Result<()> {
    println!("Figure 6 — execution time of plans P1/P2, {scale} prescriptions");
    let f = medical_fixture(scale)?;
    let sql = paper_query(f.mid_date());
    let spec = f.db.bind(&sql)?;
    let plans = [f.db.plan_pre(&spec), f.db.plan_post(&spec), {
        let mut p = f.db.plans(&sql)?.remove(0).plan;
        p.label = "best".into();
        p
    }];
    let mut measured = Vec::new();
    for p in &plans {
        measured.push(measure_plan(&f.db, &sql, p)?);
    }
    let max = measured.iter().map(|m| m.sim_ns).max().unwrap_or(1) as f64;
    println!("\n  plan  time         ram      rows   chart (execution time)");
    let mut csv = Vec::new();
    for m in &measured {
        println!(
            "  {:<5} {:<12} {:<8} {:<6} {}",
            m.label,
            format_ns(m.sim_ns),
            m.ram_peak,
            m.rows,
            bar(m.sim_ns as f64, max, 40)
        );
        csv.push(format!(
            "{},{},{},{}",
            m.label, m.sim_ns, m.ram_peak, m.rows
        ));
    }
    ghostdb_bench::write_csv("f6_plans", "plan,sim_ns,ram_peak,rows", &csv).map_err(csv_err)?;
    println!("\n  shape check: both plans return identical rows; the spread between");
    println!("  P1 and P2 at ~50% visible selectivity mirrors the demo's bar chart.");
    Ok(())
}

/// Demo phase 2: Pre vs Post vs best across visible selectivity — the
/// crossover chart.
fn exp_d2a(scale: usize) -> Result<()> {
    println!("Pre/Post/Cross-filtering vs visible selectivity, {scale} prescriptions");
    let f = medical_fixture(scale)?;
    let fracs = [0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90];
    println!("\n  vis.sel   P1(pre)       P2(post)      best          winner  P1.ram   P2.ram");
    let mut csv = Vec::new();
    for &frac in &fracs {
        let sql = selectivity_query(f.cfg.date_start, f.cfg.date_span_days, frac);
        let spec = f.db.bind(&sql)?;
        let p1 = measure_plan(&f.db, &sql, &f.db.plan_pre(&spec))?;
        let p2 = measure_plan(&f.db, &sql, &f.db.plan_post(&spec))?;
        let best_plan = f.db.plans(&sql)?.remove(0).plan;
        let best = measure_plan(&f.db, &sql, &best_plan)?;
        let winner = if p1.sim_ns <= p2.sim_ns {
            "pre"
        } else {
            "post"
        };
        println!(
            "  {:<9} {:<13} {:<13} {:<13} {:<7} {:<8} {:<8}",
            frac,
            format_ns(p1.sim_ns),
            format_ns(p2.sim_ns),
            format_ns(best.sim_ns),
            winner,
            p1.ram_peak,
            p2.ram_peak,
        );
        csv.push(format!(
            "{frac},{},{},{},{},{}",
            p1.sim_ns, p2.sim_ns, best.sim_ns, p1.ram_peak, p2.ram_peak
        ));
    }
    ghostdb_bench::write_csv(
        "d2a_filtering_sweep",
        "visible_selectivity,p1_ns,p2_ns,best_ns,p1_ram,p2_ram",
        &csv,
    )
    .map_err(csv_err)?;
    println!("\n  shape check: pre-filtering wins at low visible selectivity,");
    println!("  post-filtering wins as the visible predicate becomes unselective.");
    Ok(())
}

/// Demo phase 2: the per-operator statistics popup for the Figure 5 plan.
fn exp_d2b(scale: usize) -> Result<()> {
    println!("Per-operator statistics (Figure 5 post-filtering plan), {scale} prescriptions");
    let f = medical_fixture(scale)?;
    let sql = paper_query(f.mid_date());
    let spec = f.db.bind(&sql)?;
    let p2 = f.db.plan_post(&spec);
    println!("\n{}", p2.describe(f.db.schema(), &spec));
    let out = f.db.query_with_plan(&sql, &p2)?;
    println!("{}", out.report.render());
    let csv: Vec<String> = out
        .report
        .ops
        .iter()
        .map(|o| {
            format!(
                "{},{},{},{},{},{}",
                o.name,
                o.detail.replace(',', ";"),
                o.tuples_in,
                o.tuples_out,
                o.ram_peak,
                o.sim_ns
            )
        })
        .collect();
    ghostdb_bench::write_csv(
        "d2b_operator_stats",
        "operator,detail,tuples_in,tuples_out,ram_peak,sim_ns",
        &csv,
    )
    .map_err(csv_err)?;
    Ok(())
}

/// Demo phase 1: the spy's ledger — bytes per channel per query, zero
/// hidden leakage.
fn exp_d1(scale: usize) -> Result<()> {
    println!("Security trace — bytes observed per channel, {scale} prescriptions");
    let f = medical_fixture(scale)?;
    let queries = [
        (
            "hidden-only",
            "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'".to_string(),
        ),
        (
            "visible-only",
            "SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'Spain'".to_string(),
        ),
        ("mixed", paper_query(f.mid_date())),
        (
            "projection-heavy",
            format!(
                "SELECT Pat.Name, Vis.Date FROM Patient Pat, Visit Vis, Prescription Pre \
                 WHERE Vis.Date > '{}' AND Vis.PatID = Pat.PatID AND Vis.VisID = Pre.VisID",
                f.mid_date()
            ),
        ),
    ];
    println!("\n  query             spy frames  spy bytes   display bytes  hidden leaks");
    let mut csv = Vec::new();
    for (name, sql) in &queries {
        f.db.clear_trace();
        let out = f.db.query(sql)?;
        let frames = f.db.trace().spy_frames().len();
        let bytes = f.db.trace().spy_bytes();
        let spec = f.db.bind(sql)?;
        let mut leaks = 0;
        for row in out.rows.rows.iter().take(200) {
            for (v, cref) in row.iter().zip(&spec.projections) {
                if f.db.schema().is_hidden(*cref) && f.db.spy_sees_value(v) {
                    leaks += 1;
                }
            }
        }
        let display: u64 =
            f.db.trace()
                .events()
                .iter()
                .filter(|e| !e.spy_visible())
                .map(|e| e.bytes as u64)
                .sum();
        println!(
            "  {:<17} {:<11} {:<11} {:<14} {}",
            name, frames, bytes, display, leaks
        );
        csv.push(format!("{name},{frames},{bytes},{display},{leaks}"));
        assert_eq!(leaks, 0, "hidden data leaked!");
    }
    ghostdb_bench::write_csv(
        "d1_security_trace",
        "query,spy_frames,spy_bytes,display_bytes,hidden_leaks",
        &csv,
    )
    .map_err(csv_err)?;
    Ok(())
}

/// §3 hardware sensitivity: flash write/read ratio × bus speed.
fn exp_s3(scale: usize) -> Result<()> {
    println!("Hardware sweep — flash write/read ratio x link speed, {scale} prescriptions");
    println!("\n  ratio  link        P1(pre)        P2(post)      winner");
    let mut csv = Vec::new();
    for ratio in [3.0, 5.0, 10.0] {
        for (link_name, bus) in [
            ("full12M", BusConfig::usb_full_speed()),
            ("high480M", BusConfig::usb_high_speed()),
        ] {
            let mut config = DeviceConfig::default_2007().with_bus(bus);
            config.flash = config.flash.with_write_read_ratio(ratio);
            let f = medical_fixture_with(scale, config)?;
            let sql = selectivity_query(f.cfg.date_start, f.cfg.date_span_days, 0.5);
            let spec = f.db.bind(&sql)?;
            let p1 = measure_plan(&f.db, &sql, &f.db.plan_pre(&spec))?;
            let p2 = measure_plan(&f.db, &sql, &f.db.plan_post(&spec))?;
            let winner = if p1.sim_ns <= p2.sim_ns {
                "pre"
            } else {
                "post"
            };
            println!(
                "  {:<6} {:<11} {:<14} {:<13} {}",
                ratio,
                link_name,
                format_ns(p1.sim_ns),
                format_ns(p2.sim_ns),
                winner
            );
            csv.push(format!("{ratio},{link_name},{},{}", p1.sim_ns, p2.sim_ns));
        }
    }
    ghostdb_bench::write_csv("s3_hardware_sweep", "ratio,link,p1_ns,p2_ns", &csv)
        .map_err(csv_err)?;
    println!("\n  shape check: higher write cost penalizes spill-heavy pre-filtering;");
    println!("  a faster link helps post-filtering (bulk visible transfer) most.");
    Ok(())
}

/// §4 / ref \[1\]: last-resort joins vs the climbing index.
fn exp_b1(scale: usize) -> Result<()> {
    println!("Baselines — climbing index vs join index vs Grace hash, {scale} prescriptions");
    // Build the device stack directly so the baselines can use internals.
    let cfg = MedicalConfig::scaled(scale);
    let data = generate_medical(&cfg)?;
    let schema = ghostdb_workload::medical_schema()?;
    let tree = TreeSchema::analyze(&schema)?;
    let device = DeviceConfig::default_2007();
    let clock = SimClock::new();
    let volume = Volume::new(Nand::new(device.flash.clone(), clock.clone()));
    let ram = RamBudget::new(device.ram_bytes);
    let scope = RamScope::new(&ram);
    let (hidden, _visible, _stats, encoders) = split_dataset(&volume, &scope, &schema, &data)?;
    let indexes = IndexSet::build(&volume, &scope, &schema, &tree, &data, &encoders)?;
    drop(scope);

    let visit = schema.resolve_table("Visit")?;
    let pre = schema.resolve_table("Prescription")?;
    let doctor = schema.resolve_table("Doctor")?;
    // The join task: all prescriptions of Sclerosis visits.
    let vis_tbl = &data.tables[visit.index()];
    let matching: Vec<RowId> = (0..vis_tbl.rows())
        .filter(|&i| vis_tbl.columns[2][i] == Value::Text("Sclerosis".into()))
        .map(|i| RowId(i as u32))
        .collect();
    println!(
        "  task: join {} matching visits up to prescriptions\n",
        matching.len()
    );

    let fk_col = schema.resolve_column(pre, "VisID")?.column;
    let climb = climbing_translate_count(
        &volume, &ram, &clock, &device, &indexes, visit, &matching, pre,
    )?;
    let jidx = join_index_count(
        &volume, &ram, &clock, &device, &indexes, &tree, visit, &matching, pre,
    )?;
    let grace = grace_hash_join_count(
        &volume, &ram, &clock, &device, &hidden, pre, fk_col, &matching,
    )?;
    assert_eq!(climb.result_count, jidx.result_count);
    assert_eq!(climb.result_count, grace.result_count);

    // Deep task: doctors -> prescriptions (2 hops vs 1 climb).
    let doc_matching: Vec<RowId> = (0..data.tables[doctor.index()].rows() / 4)
        .map(|i| RowId(i as u32))
        .collect();
    let climb2 = climbing_translate_count(
        &volume,
        &ram,
        &clock,
        &device,
        &indexes,
        doctor,
        &doc_matching,
        pre,
    )?;
    let jidx2 = join_index_count(
        &volume,
        &ram,
        &clock,
        &device,
        &indexes,
        &tree,
        doctor,
        &doc_matching,
        pre,
    )?;
    assert_eq!(climb2.result_count, jidx2.result_count);

    println!("  method            matches   time          flash rd  flash wr  ram");
    let rows = [
        ("climbing (1 hop)", &climb),
        ("join-index chain", &jidx),
        ("grace hash join", &grace),
        ("climbing (deep)", &climb2),
        ("join-index (deep)", &jidx2),
    ];
    let mut csv = Vec::new();
    for (name, r) in rows {
        println!(
            "  {:<17} {:<9} {:<13} {:<9} {:<9} {}",
            name,
            r.result_count,
            format_ns(r.sim_ns),
            r.flash_reads,
            r.flash_programs,
            r.ram_peak
        );
        csv.push(format!(
            "{name},{},{},{},{},{}",
            r.result_count, r.sim_ns, r.flash_reads, r.flash_programs, r.ram_peak
        ));
    }
    ghostdb_bench::write_csv(
        "b1_baselines",
        "method,matches,sim_ns,flash_reads,flash_programs,ram_peak",
        &csv,
    )
    .map_err(csv_err)?;
    println!("\n  shape check: grace hash pays the flash write storm (programs >> 0);");
    println!("  the climbing index needs no writes and the fewest reads.");
    Ok(())
}

/// §4 Bloom filter claims: compactness and false-positive rates.
fn exp_b2() -> Result<()> {
    println!("Bloom filters — bytes and observed fpr vs keys and budget");
    println!("\n  keys      budget   bits/key  k   target-fpr  observed-fpr");
    let mut csv = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        for &budget_bytes in &[2 * 1024usize, 8 * 1024, 32 * 1024] {
            let ram = RamBudget::new(budget_bytes + 1024);
            let scope = RamScope::new(&ram);
            let mut f = BloomFilter::within_ram(&scope, n, budget_bytes)?;
            for i in 0..n as u64 {
                f.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            let probes = 200_000u64;
            let fp = (0..probes)
                .filter(|i| f.contains(i.wrapping_mul(0xD1B5_4A32_D192_ED03).wrapping_add(7)))
                .count();
            let observed = fp as f64 / probes as f64;
            let bits_per_key = f.m_bits() as f64 / n as f64;
            println!(
                "  {:<9} {:<8} {:<9.2} {:<3} {:<11.5} {:<12.5}",
                n,
                budget_bytes,
                bits_per_key,
                f.k(),
                f.estimated_fpr(),
                observed
            );
            csv.push(format!(
                "{n},{budget_bytes},{bits_per_key:.3},{},{:.6},{observed:.6}",
                f.k(),
                f.estimated_fpr()
            ));
        }
    }
    ghostdb_bench::write_csv(
        "b2_bloom",
        "keys,budget_bytes,bits_per_key,k,estimated_fpr,observed_fpr",
        &csv,
    )
    .map_err(csv_err)?;
    println!("\n  shape check: a few KB keep fpr low up to ~10k keys (the demo's");
    println!("  delegated id lists); million-key sets saturate small filters —");
    println!("  which is exactly why the exact temp verification exists.");
    Ok(())
}

/// Scaling with root cardinality (the paper's 'arbitrarily large tables').
fn exp_scale(max_scale: usize) -> Result<()> {
    println!("Scaling — paper query vs root cardinality (up to {max_scale})");
    let mut scales = vec![10_000usize, 50_000, 100_000, 250_000, 500_000, 1_000_000];
    scales.retain(|&s| s <= max_scale);
    if scales.is_empty() {
        scales.push(max_scale);
    }
    println!("\n  prescriptions  P1(pre)       P2(post)      best          rows");
    let mut csv = Vec::new();
    for &n in &scales {
        let f = medical_fixture(n)?;
        let sql = paper_query(f.mid_date());
        let spec = f.db.bind(&sql)?;
        let p1 = measure_plan(&f.db, &sql, &f.db.plan_pre(&spec))?;
        let p2 = measure_plan(&f.db, &sql, &f.db.plan_post(&spec))?;
        let best_plan = f.db.plans(&sql)?.remove(0).plan;
        let best = measure_plan(&f.db, &sql, &best_plan)?;
        println!(
            "  {:<14} {:<13} {:<13} {:<13} {}",
            n,
            format_ns(p1.sim_ns),
            format_ns(p2.sim_ns),
            format_ns(best.sim_ns),
            best.rows
        );
        csv.push(format!(
            "{n},{},{},{},{}",
            p1.sim_ns, p2.sim_ns, best.sim_ns, best.rows
        ));
    }
    ghostdb_bench::write_csv("scale", "prescriptions,p1_ns,p2_ns,best_ns,rows", &csv)
        .map_err(csv_err)?;
    println!("\n  shape check: time grows with matching volume, not raw table size —");
    println!("  selections never scan the root table.");
    Ok(())
}

/// Demo phase 3: the plan game's search space.
fn exp_game(scale: usize) -> Result<()> {
    println!("Plan game — plan-space size and best/worst spread, {scale} prescriptions");
    let f = medical_fixture(scale)?;
    println!("\n  query                 plans  best          worst         spread  optimizer");
    let mut csv = Vec::new();
    for gq in game_queries(f.cfg.date_start, f.cfg.date_span_days) {
        let plans = f.db.plans(&gq.sql)?;
        let mut times = Vec::new();
        for cp in &plans {
            times.push(measure_plan(&f.db, &gq.sql, &cp.plan)?.sim_ns);
        }
        let best = *times.iter().min().unwrap_or(&0);
        let worst = *times.iter().max().unwrap_or(&0);
        let picked = times[0]; // optimizer's choice = cheapest estimate
        let spread = worst as f64 / best.max(1) as f64;
        let good = picked as f64 <= best as f64 * 1.2;
        println!(
            "  {:<21} {:<6} {:<13} {:<13} {:<7.1} {}",
            gq.name,
            plans.len(),
            format_ns(best),
            format_ns(worst),
            spread,
            if good { "good" } else { "beaten" }
        );
        csv.push(format!(
            "{},{},{best},{worst},{picked},{spread:.2},{good}",
            gq.name,
            plans.len()
        ));
    }
    ghostdb_bench::write_csv(
        "game",
        "query,plans,best_ns,worst_ns,optimizer_ns,spread,optimizer_good",
        &csv,
    )
    .map_err(csv_err)?;
    println!("\n  shape check: order-of-magnitude spreads justify the game — picking");
    println!("  plans by intuition is genuinely hard on this hardware.");
    Ok(())
}
