//! Perf-trajectory runner for the flash garbage collector: measures
//! reclaim throughput, write amplification, and wear spread under the
//! fragmentation workload the GC exists to fix, and writes
//! `BENCH_PR2.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_flash_gc`
//!
//! Two phases on a 32 MiB part (2 KiB pages, 64 pages/block, 256
//! blocks):
//!
//! 1. **Reclaim**: fragment the whole part (1 persistent page : 7 temp
//!    pages interleaved per block, temps freed), then time explicit
//!    [`Volume::gc`] passes until nothing is left to reclaim. Reports
//!    reclaimed MB per host second.
//! 2. **Churn**: steady-state rounds of the same interleaving with the
//!    allocation-time watermark trigger doing all the work. Reports
//!    write amplification (total programs / user programs) and the
//!    final wear spread.

use std::time::Instant;

use ghostdb_flash::{Nand, Volume};
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_types::{FlashConfig, Result, SimClock};

const PAGE: usize = 2048;
const PPB: usize = 64;
const BLOCKS: usize = 256;

fn volume(watermark: usize) -> Volume {
    let cfg = FlashConfig {
        page_size: PAGE,
        pages_per_block: PPB,
        num_blocks: BLOCKS,
        gc_low_watermark_blocks: watermark,
        ..FlashConfig::default_2007()
    };
    Volume::new(Nand::new(cfg, SimClock::new()))
}

/// Write `blocks` erase blocks' worth of pages, interleaving one
/// persistent page with seven temp pages; frees the temp segment and
/// returns the persistent one.
fn fragment(
    vol: &Volume,
    scope: &RamScope,
    blocks: usize,
    tag: u8,
) -> Result<ghostdb_flash::Segment> {
    let keeper_page = vec![tag; PAGE];
    let temp_pages = vec![0xEE; PAGE * 7];
    let mut keeper = vol.writer(scope)?;
    let mut temp = vol.writer(scope)?;
    for _ in 0..blocks * PPB / 8 {
        keeper.write(&keeper_page)?;
        temp.write(&temp_pages)?;
    }
    let kseg = keeper.finish()?;
    vol.free(temp.finish()?)?;
    Ok(kseg)
}

/// One churn round: three lifetimes interleaved into the same blocks —
/// per 8 pages, one long-lived page, one medium-lived page, six temp
/// pages (freed immediately). Returns the (medium, long) segments.
fn fragment_mixed(
    vol: &Volume,
    scope: &RamScope,
    blocks: usize,
    tag: u8,
) -> Result<(ghostdb_flash::Segment, ghostdb_flash::Segment)> {
    let page = vec![tag; PAGE];
    let temp_pages = vec![0xEE; PAGE * 6];
    let mut long = vol.writer(scope)?;
    let mut medium = vol.writer(scope)?;
    let mut temp = vol.writer(scope)?;
    for _ in 0..blocks * PPB / 8 {
        long.write(&page)?;
        medium.write(&page)?;
        temp.write(&temp_pages)?;
    }
    let mseg = medium.finish()?;
    let lseg = long.finish()?;
    vol.free(temp.finish()?)?;
    Ok((mseg, lseg))
}

/// Phase 1: reclaim throughput of explicit GC passes over a maximally
/// fragmented part. Returns (MB/s, pages reclaimed, pages migrated).
fn reclaim_phase() -> Result<(f64, u64, u64)> {
    let vol = volume(0); // explicit GC only
    let scope = RamScope::new(&RamBudget::new(64 * 1024));
    // Fragment 240 of 256 blocks; the rest stage migrations.
    let keepers: Vec<_> = (0..24)
        .map(|i| fragment(&vol, &scope, 10, i as u8))
        .collect::<Result<_>>()?;

    let t0 = Instant::now();
    let mut reclaimed = 0u64;
    let mut migrated = 0u64;
    loop {
        let report = vol.gc(&scope)?;
        if report.blocks_reclaimed == 0 {
            break;
        }
        reclaimed += report.pages_reclaimed;
        migrated += report.pages_migrated;
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    for k in keepers {
        vol.free(k)?;
    }
    let mb = (reclaimed * PAGE as u64) as f64 / (1024.0 * 1024.0);
    Ok((mb / secs, reclaimed, migrated))
}

/// Phase 2: steady-state churn with the watermark trigger. A 64-block
/// slice of the part keeps space pressure real: medium-lived segments
/// retire after 4 rounds, long-lived ones after 24, temps immediately —
/// so every block mixes lifetimes and only the GC can reclaim it.
/// Returns (write amplification, wear spread, GC blocks reclaimed).
fn churn_phase(rounds: usize) -> Result<(f64, u32, u64)> {
    let cfg = FlashConfig {
        page_size: PAGE,
        pages_per_block: PPB,
        num_blocks: 64, // 8 MiB: full enough that the watermark bites
        gc_low_watermark_blocks: 16,
        ..FlashConfig::default_2007()
    };
    let vol = Volume::new(Nand::new(cfg, SimClock::new()));
    let scope = RamScope::new(&RamBudget::new(64 * 1024));
    let mut medium = std::collections::VecDeque::new();
    let mut long = std::collections::VecDeque::new();
    for round in 0..rounds {
        let (mseg, lseg) = fragment_mixed(&vol, &scope, 4, (round % 251) as u8)?;
        medium.push_back(mseg);
        long.push_back(lseg);
        if medium.len() > 4 {
            vol.free(medium.pop_front().expect("non-empty"))?;
        }
        if long.len() > 24 {
            vol.free(long.pop_front().expect("non-empty"))?;
        }
    }
    let stats = vol.nand().stats();
    let gc = vol.gc_stats();
    let user_programs = stats.page_programs - gc.pages_migrated;
    let write_amp = stats.page_programs as f64 / user_programs as f64;
    let (min_wear, max_wear) = vol.nand().wear_spread();
    Ok((write_amp, max_wear - min_wear, gc.blocks_reclaimed))
}

fn main() {
    let (reclaim_mb_s, pages_reclaimed, reclaim_migrated) = reclaim_phase().expect("reclaim phase");
    eprintln!(
        "reclaim: {reclaim_mb_s:.1} MB/s ({pages_reclaimed} dead pages freed, \
         {reclaim_migrated} live pages moved)"
    );

    let rounds = 200;
    let (write_amp, wear_spread, gc_blocks) = churn_phase(rounds).expect("churn phase");
    eprintln!(
        "churn:   {rounds} rounds, write amplification {write_amp:.3}, \
         wear spread {wear_spread}, {gc_blocks} blocks GC-reclaimed"
    );

    let reclaim_gate_min = 10.0;
    let write_amp_gate_max = 2.0;
    let wear_spread_gate_max = 8.0;
    let pass = reclaim_mb_s >= reclaim_gate_min
        && write_amp <= write_amp_gate_max
        && f64::from(wear_spread) <= wear_spread_gate_max;

    let body = format!(
        "{{\n  \"pr\": 2,\n  \"title\": \"Flash garbage collection, wear-aware allocation, \
         and a CI pipeline that gates on the perf trajectory\",\n  \
         \"geometry\": \"2 KiB pages, 64 pages/block; 256-block part for reclaim, 64-block \
         part for steady churn\",\n  \
         \"payload\": \"persistent pages interleaved with temp spills in every block; churn \
         mixes 4-round, 24-round, and immediate lifetimes so only the GC can reclaim\",\n  \
         \"results\": [\n    \
         {{\"name\": \"gc_reclaim\", \"mb_per_s\": {reclaim_mb_s:.1}, \
         \"pages_reclaimed\": {pages_reclaimed}, \"pages_migrated\": {reclaim_migrated}}},\n    \
         {{\"name\": \"steady_churn\", \"rounds\": {rounds}, \"write_amp\": {write_amp:.3}, \
         \"wear_spread\": {wear_spread}, \"gc_blocks_reclaimed\": {gc_blocks}}}\n  ],\n  \
         \"acceptance\": {{\n    \"gc_reclaim_mb_per_s\": {reclaim_mb_s:.1},\n    \
         \"gc_reclaim_mb_per_s_gate_min\": {reclaim_gate_min:.1},\n    \
         \"write_amp\": {write_amp:.3},\n    \
         \"write_amp_gate_max\": {write_amp_gate_max:.1},\n    \
         \"wear_spread\": {wear_spread},\n    \
         \"wear_spread_gate_max\": {wear_spread_gate_max:.1},\n    \
         \"pass\": {pass}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_PR2.json", &body).expect("write BENCH_PR2.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR2.json");
    assert!(pass, "GC bench gates failed");
}
