//! Perf-trajectory runner: measures the scalar vs blocked device
//! pipeline (merge-intersect and Bloom probe) on host wall time and
//! writes `BENCH_PR1.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_vectorized`
//!
//! The acceptance gates for PR 1 are ≥3x on the 10^5-id merge with 1%
//! overlap and ≥2x on the 10^5-key Bloom probe, both against the seed's
//! scalar operators measured in the same run.

use std::time::Instant;

use ghostdb_bench::vectorized::{
    bloom_blocked_filter, bloom_keys, bloom_scalar_filter, bloom_scope, merge_blocked,
    merge_scalar, overlapping_lists, probe_blocked, probe_scalar,
};

/// Median wall-ns of one payload execution (repeats until the sample
/// set cost ~0.2 s, at least 5 samples).
fn measure<F: FnMut() -> u64>(mut f: F) -> f64 {
    // Warmup + cost estimate.
    let t0 = Instant::now();
    let mut guard = std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let samples = ((0.2 / once) as usize).clamp(5, 1_000);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        guard ^= std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64() * 1e9);
    }
    std::hint::black_box(guard);
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    times[times.len() / 2]
}

struct Row {
    name: &'static str,
    n: usize,
    scalar_ns: f64,
    blocked_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.blocked_ns
    }

    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"scalar_ns\": {:.0}, \"blocked_ns\": {:.0}, \
             \"scalar_ns_per_item\": {:.2}, \"blocked_ns_per_item\": {:.2}, \"speedup\": {:.2}}}",
            self.name,
            self.n,
            self.scalar_ns,
            self.blocked_ns,
            self.scalar_ns / self.n as f64,
            self.blocked_ns / self.n as f64,
            self.speedup(),
        )
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    for &n in &[10_000usize, 100_000, 1_000_000] {
        let (a, b) = overlapping_lists(n, 0.01);
        let scalar_ns = measure(|| merge_scalar(&a, &b).expect("merge"));
        let blocked_ns = measure(|| merge_blocked(&a, &b).expect("merge"));
        let row = Row {
            name: "merge_intersect_1pct_overlap",
            n,
            scalar_ns,
            blocked_ns,
        };
        eprintln!(
            "merge   n={n:>8}: scalar {:>10.0} ns, blocked {:>10.0} ns, {:>5.2}x",
            row.scalar_ns,
            row.blocked_ns,
            row.speedup()
        );
        rows.push(row);
    }

    let scope = bloom_scope();
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let (members, probes) = bloom_keys(n);
        // Both filters sized for 1% fpr (k = 7): the comparison isolates
        // probe cost at equal quality — k scattered cache lines for the
        // bit array vs one line for the blocked layout.
        let scalar_f = bloom_scalar_filter(&members, &scope).expect("bloom");
        let blocked_f = bloom_blocked_filter(&members, &scope).expect("bloom");
        let mut hits = Vec::new();
        let scalar_ns = measure(|| probe_scalar(&scalar_f, &probes));
        let blocked_ns = measure(|| probe_blocked(&blocked_f, &probes, &mut hits));
        let row = Row {
            name: "bloom_probe_1pct_fpr",
            n,
            scalar_ns,
            blocked_ns,
        };
        eprintln!(
            "bloom   n={n:>8}: scalar {:>10.0} ns, blocked {:>10.0} ns, {:>5.2}x",
            row.scalar_ns,
            row.blocked_ns,
            row.speedup()
        );
        rows.push(row);
    }

    let merge_100k = rows
        .iter()
        .find(|r| r.name.starts_with("merge") && r.n == 100_000)
        .expect("merge row");
    let bloom_100k = rows
        .iter()
        .find(|r| r.name.starts_with("bloom") && r.n == 100_000)
        .expect("bloom row");

    let body = format!(
        "{{\n  \"pr\": 1,\n  \"title\": \"Vectorize the device pipeline: block-based id streams, \
         galloping merge-intersect, and a cache-blocked Bloom filter\",\n  \
         \"block_cap\": {},\n  \"payload\": \"run-structured posting lists (~97-id runs), \
         50/50 hit-miss bloom probes\",\n  \"results\": [\n{}\n  ],\n  \
         \"acceptance\": {{\n    \"merge_speedup_100k\": {:.2},\n    \
         \"merge_gate\": 3.0,\n    \"bloom_speedup_100k\": {:.2},\n    \
         \"bloom_gate\": 2.0,\n    \"pass\": {}\n  }}\n}}\n",
        ghostdb_types::BLOCK_CAP,
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n"),
        merge_100k.speedup(),
        bloom_100k.speedup(),
        merge_100k.speedup() >= 3.0 && bloom_100k.speedup() >= 2.0,
    );
    std::fs::write("BENCH_PR1.json", &body).expect("write BENCH_PR1.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR1.json");
}
