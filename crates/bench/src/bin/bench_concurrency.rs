//! Perf-trajectory runner for the concurrent snapshot read path,
//! written to `BENCH_PR8.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_concurrency`
//!
//! Two phases:
//!
//! 1. **Read scaling**: the paper's deployment is a PC driving a smart
//!    USB key, so a query's cost is dominated by the device round-trip
//!    — time the host spends *waiting*, not computing. Each reader
//!    session therefore models that round-trip by sleeping its query's
//!    simulated device time (the repo's perf currency, measured clean
//!    in a single-threaded calibration pass) scaled to a
//!    modern-device budget. One session issuing Q queries serially is
//!    the baseline; four sessions on four `std::thread`s, each with
//!    its own epoch-stamped snapshot, overlap their waits. The gate:
//!    aggregate 4-thread throughput ≥ 2× the single-session baseline.
//!    (On a multi-core host the host-CPU half of each query scales
//!    too; this container is single-core, so the wait-overlap is the
//!    honest measurable win.)
//! 2. **Flush overlap**: a reader holding a pre-mutation snapshot
//!    hammers queries while the writer inserts and runs full delta
//!    flushes (segment rewrites + deferred frees) underneath it. Every
//!    result must equal the snapshot's frozen answer, at least one
//!    read must complete strictly inside a flush window, and the
//!    reader's p99 latency must stay bounded — a reader blocked on a
//!    writer-held lock for a whole flush would blow the gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ghostdb_core::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};
use ghostdb_workload::{generate_medical, selectivity_query, MedicalConfig, MEDICAL_DDL};

const READERS: usize = 4;
const QUERIES_PER_SESSION: usize = 24;

/// Host nanoseconds of modeled device round-trip per simulated device
/// nanosecond: the 2007-era part is charged in full microseconds; a
/// thousandth of that approximates a modern key while keeping the
/// bench under a minute.
const DEVICE_SCALE: u64 = 1000;

fn build_read_db() -> Result<GhostDb> {
    let cfg = MedicalConfig::scaled(8_000);
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data)?;
    Ok(db)
}

/// Single-threaded calibration: the clean per-query simulated device
/// time, host CPU time, and the modeled round-trip sleep derived from
/// it.
fn calibrate(db: &GhostDb, sql: &str) -> Result<(u64, f64, Duration)> {
    let spec = db.bind(sql)?;
    let plan = db.plan_pre(&spec);
    let snap = db.snapshot()?;
    snap.run(&spec, &plan)?; // warm-up
    let mut sim_ns = 0u64;
    let t0 = Instant::now();
    for _ in 0..4 {
        sim_ns = snap.run(&spec, &plan)?.report.total_ns;
    }
    let host_secs = t0.elapsed().as_secs_f64() / 4.0;
    let sleep = Duration::from_nanos((sim_ns / DEVICE_SCALE).clamp(1_000_000, 20_000_000));
    Ok((sim_ns, host_secs, sleep))
}

/// Aggregate queries/second for `threads` sessions, each owning one
/// snapshot and running `QUERIES_PER_SESSION` queries, sleeping the
/// modeled device round-trip after each.
fn throughput(db: &GhostDb, sql: &str, threads: usize, round_trip: Duration) -> Result<f64> {
    let mut snaps = Vec::new();
    for _ in 0..threads {
        snaps.push(db.snapshot()?);
    }
    let sql = sql.to_string();
    let t0 = Instant::now();
    let handles: Vec<_> = snaps
        .into_iter()
        .map(|snap| {
            let sql = sql.clone();
            thread::spawn(move || {
                let spec = snap.bind(&sql).expect("bind");
                let plan = snap.plan_pre(&spec);
                for _ in 0..QUERIES_PER_SESSION {
                    snap.run(&spec, &plan).expect("snapshot read");
                    thread::sleep(round_trip);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader panicked");
    }
    Ok((threads * QUERIES_PER_SESSION) as f64 / t0.elapsed().as_secs_f64())
}

const DDL: &str = "\
    CREATE TABLE Child (
      cid INTEGER PRIMARY KEY,
      vis INTEGER,
      hid INTEGER HIDDEN,
      tag CHAR(12) HIDDEN);";

/// Phase 2: one reader on a frozen snapshot races a writer running
/// insert + full-flush rounds. Returns (reads completed, reads that
/// finished strictly inside a flush window, p50 ms, p99 ms).
fn flush_overlap_phase() -> Result<(usize, usize, f64, f64)> {
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    for i in 0..8192i64 {
        data.push_row(
            TableId(0),
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Int(i % 97),
                Value::Text(format!("tag-{}", i % 8)),
            ],
        )?;
    }
    let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
    let mut db = GhostDb::create(DDL, config, &data)?;

    // A cheap value-index probe, so one read is much shorter than one
    // flush window and can land entirely inside it.
    let sql = "SELECT Child.cid FROM Child WHERE Child.hid = 3";
    let snap = db.snapshot()?;
    let frozen_rows = snap.query(sql)?.rows.rows.len();
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let done = done.clone();
        thread::spawn(move || -> Vec<(Instant, Instant)> {
            let spec = snap.bind(sql).expect("bind");
            let plan = snap.plan_pre(&spec);
            let mut windows = Vec::new();
            while !done.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                let out = snap.run(&spec, &plan).expect("snapshot read");
                assert_eq!(
                    out.rows.rows.len(),
                    frozen_rows,
                    "snapshot answer changed under a concurrent flush"
                );
                windows.push((t0, Instant::now()));
            }
            windows
        })
    };

    // The writer: 8 rounds of a 1024-row insert followed by a full
    // delta flush — each flush rewrites the whole (growing) table's
    // segments, with the frees of the old ones deferred by the
    // reader's pins.
    let mut flushes = Vec::new();
    let mut next_id = 8192i64;
    for _ in 0..8 {
        let batch: Vec<Vec<Value>> = (0..1024)
            .map(|k| {
                let i = next_id + k;
                vec![
                    Value::Int(i),
                    Value::Int(i % 50),
                    Value::Int(i % 97),
                    Value::Text(format!("tag-{}", i % 8)),
                ]
            })
            .collect();
        next_id += 1024;
        db.insert_rows(TableId(0), batch)?;
        let f0 = Instant::now();
        db.flush_deltas()?;
        flushes.push((f0, Instant::now()));
    }
    done.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader panicked");

    let overlapped = reads
        .iter()
        .filter(|(s, e)| flushes.iter().any(|(fs, fe)| s >= fs && e <= fe))
        .count();
    let mut ms: Vec<f64> = reads
        .iter()
        .map(|(s, e)| e.duration_since(*s).as_secs_f64() * 1e3)
        .collect();
    let p50 = ghostdb_bench::latency::percentile(&mut ms, 0.5);
    let p99 = ghostdb_bench::latency::percentile(&mut ms, 0.99);
    Ok((reads.len(), overlapped, p50, p99))
}

fn main() {
    let db = build_read_db().expect("build");
    let cfg = MedicalConfig::scaled(8_000);
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.3);
    let (sim_ns, host_secs, round_trip) = calibrate(&db, &sql).expect("calibrate");
    eprintln!(
        "calibration: {sim_ns} sim ns/query, {:.2} host ms/query, modeled round-trip {:?}",
        host_secs * 1e3,
        round_trip
    );

    let serial_qps = throughput(&db, &sql, 1, round_trip).expect("serial");
    let parallel_qps = throughput(&db, &sql, READERS, round_trip).expect("parallel");
    let read_scaling_4t = parallel_qps / serial_qps;
    eprintln!(
        "scaling:  1 session {serial_qps:.1} q/s, {READERS} sessions {parallel_qps:.1} q/s \
         ({read_scaling_4t:.2}x)"
    );
    assert_eq!(db.open_snapshots(), 0, "bench leaked snapshots");

    let (reads, overlap_reads, p50_ms, p99_ms) = flush_overlap_phase().expect("flush overlap");
    eprintln!(
        "overlap:  {reads} reads against a frozen snapshot, {overlap_reads} entirely inside \
         a flush window, p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms"
    );

    let scaling_gate_min = 2.0;
    let overlap_gate_min = 1.0;
    let p99_gate_max = 500.0;
    let pass = read_scaling_4t >= scaling_gate_min
        && overlap_reads as f64 >= overlap_gate_min
        && p99_ms <= p99_gate_max;

    let body = format!(
        "{{\n  \"pr\": 8,\n  \"title\": \"Concurrent snapshot reads: MVCC epochs and a \
         multi-threaded read executor\",\n  \
         \"workload\": \"medical(8000) 30%-selectivity probe per session, device round-trip \
         modeled as sim_ns/{DEVICE_SCALE} host sleep; 8192-row Child table + 8 1024-row \
         insert/flush rounds under a pinned reader\",\n  \
         \"results\": [\n    \
         {{\"name\": \"calibration\", \"sim_ns_per_query\": {sim_ns}, \
         \"host_ms_per_query\": {:.3}, \"round_trip_ms\": {:.1}}},\n    \
         {{\"name\": \"read_throughput\", \"serial_qps\": {serial_qps:.1}, \
         \"parallel_qps\": {parallel_qps:.1}, \"threads\": {READERS}}},\n    \
         {{\"name\": \"flush_overlap\", \"reads\": {reads}, \"p50_ms\": {p50_ms:.2}}}\n  ],\n  \
         \"acceptance\": {{\n    \"read_scaling_4t\": {read_scaling_4t:.2},\n    \
         \"read_scaling_4t_gate_min\": {scaling_gate_min:.1},\n    \
         \"flush_overlap_reads\": {overlap_reads},\n    \
         \"flush_overlap_reads_gate_min\": {overlap_gate_min:.1},\n    \
         \"flush_p99_ms\": {p99_ms:.2},\n    \
         \"flush_p99_ms_gate_max\": {p99_gate_max:.1},\n    \
         \"pass\": {pass}\n  }}\n}}\n",
        host_secs * 1e3,
        round_trip.as_secs_f64() * 1e3,
    );
    std::fs::write("BENCH_PR8.json", &body).expect("write BENCH_PR8.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR8.json");
    assert!(pass, "acceptance gates failed");
}
