//! Perf-trajectory runner for the reliability subsystem: the read-path
//! cost of the per-page ECC codeword, scrub throughput, and recovery
//! success under combined power-cut + bit-rot injection, written to
//! `BENCH_PR6.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_reliability`
//!
//! Three phases:
//!
//! 1. **ECC read overhead**: the PR 1 baseline read workload — the
//!    medical dataset under a RAM budget tight enough that every query
//!    re-reads its working set from flash — with the codeword verified
//!    on every page fault vs. the raw part. The gate is on simulated
//!    device time (the repo's perf currency, bit-for-bit reproducible):
//!    the `ecc_byte_ns` charge plus the extra GC pressure from the
//!    8-byte-smaller usable page must stay ≤ 1.5×. Host-side query
//!    times and raw segment-scan throughputs on both parts are
//!    reported alongside as context.
//! 2. **Scrub**: every programmed page gets one retention flip, reads
//!    push the corrected-read counters past `scrub_threshold`, and one
//!    explicit [`Volume::scrub`] pass relocates them all. Reports
//!    rewritten MB per host second.
//! 3. **Recovery**: torn power cuts spread across an insert + flush
//!    workload, with one bit rotted in every seventh programmed page
//!    while the key sits unplugged. Each mount must recover a
//!    whole-batch prefix; reports the success rate (gated at 1.0 —
//!    recovery is correctness, not a best effort).

use std::time::Instant;

use ghostdb_core::GhostDb;
use ghostdb_flash::{Nand, PageAddr, PageState, Segment, Volume};
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, FlashConfig, Result, SimClock, TableId, Value};
use ghostdb_workload::{generate_medical, selectivity_query, MedicalConfig, MEDICAL_DDL};

const PAGE: usize = 2048;
const PPB: usize = 64;
const BLOCKS: usize = 256;

fn volume(ecc: bool) -> Volume {
    let cfg = FlashConfig {
        page_size: PAGE,
        pages_per_block: PPB,
        num_blocks: BLOCKS,
        ecc_enabled: ecc,
        ..FlashConfig::default_2007()
    };
    Volume::new(Nand::new(cfg, SimClock::new()))
}

/// Fill `blocks` erase blocks' worth of pages and return the segments.
fn load(vol: &Volume, scope: &RamScope, blocks: usize) -> Result<Vec<Segment>> {
    let ps = vol.page_size();
    let mut segments = Vec::new();
    for tag in 0..blocks {
        let mut w = vol.writer(scope)?;
        w.write(&vec![(tag % 251) as u8; ps * PPB])?;
        segments.push(w.finish()?);
    }
    Ok(segments)
}

/// Host seconds to read every segment back `passes` times, and the MB
/// actually read.
fn read_all(
    vol: &Volume,
    scope: &RamScope,
    segments: &[Segment],
    passes: usize,
) -> Result<(f64, f64)> {
    let mut buf = vec![0u8; vol.page_size() * PPB];
    let mut bytes = 0u64;
    let t0 = Instant::now();
    for _ in 0..passes {
        for seg in segments {
            let mut r = vol.reader(scope, seg)?;
            r.read_exact(&mut buf)?;
            bytes += buf.len() as u64;
        }
    }
    Ok((t0.elapsed().as_secs_f64(), bytes as f64 / (1024.0 * 1024.0)))
}

/// Raw segment-scan throughput (MB/s) on a part with or without the
/// codeword — informational context for the engine-level overhead.
/// Best-of-3 to shave scheduler noise.
fn scan_mb_per_s(ecc: bool) -> Result<f64> {
    let vol = volume(ecc);
    let scope = RamScope::new(&RamBudget::new(PAGE * PPB + 64 * 1024));
    let segments = load(&vol, &scope, 128)?;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (secs, mb) = read_all(&vol, &scope, &segments, 4)?;
        best = best.max(mb / secs);
    }
    Ok(best)
}

/// Phase 1: the engine-level read overhead of the codeword. The PR 1
/// baseline workload (medical dataset, 80%-selectivity query) runs
/// under a 16 KiB RAM budget, so sort runs spill and every repetition
/// re-reads its working set from flash through the verified read path.
/// Returns (simulated-time overhead, host-time overhead); the gate is
/// on the simulated ratio, which is deterministic. Host times are
/// best-of-5 per part, after a warm-up run.
fn ecc_overhead_phase() -> Result<(f64, f64)> {
    let cfg = MedicalConfig::scaled(30_000);
    let data = generate_medical(&cfg)?;
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.8);
    let mut sim_ns = [0u64; 2];
    let mut secs = [f64::MAX; 2];
    for (slot, ecc) in [(0usize, false), (1usize, true)] {
        let mut device = DeviceConfig::default_2007();
        device.flash.ecc_enabled = ecc;
        device.ram_bytes = 16 * 1024;
        let db = GhostDb::create(MEDICAL_DDL, device, &data)?;
        let spec = db.bind(&sql)?;
        let plan = db.plan_pre(&spec);
        db.run(&spec, &plan)?;
        for _ in 0..5 {
            let t0 = Instant::now();
            let out = db.run(&spec, &plan)?;
            secs[slot] = secs[slot].min(t0.elapsed().as_secs_f64());
            sim_ns[slot] = out.report.total_ns;
        }
    }
    Ok((sim_ns[1] as f64 / sim_ns[0] as f64, secs[1] / secs[0]))
}

/// Phase 2: rot one bit in every programmed page, cross the
/// corrected-read threshold, and time the scrub pass that relocates
/// them. Returns (MB rewritten per host second, pages rewritten).
fn scrub_phase() -> Result<(f64, u64)> {
    let vol = volume(true);
    let nand = vol.nand().clone();
    let scope = RamScope::new(&RamBudget::new(PAGE * PPB + 64 * 1024));
    let segments = load(&vol, &scope, 128)?;

    let cfg = nand.config().clone();
    for p in 0..cfg.num_blocks * cfg.pages_per_block {
        let addr = PageAddr(p as u32);
        if nand.page_state(addr)? == PageState::Programmed {
            nand.corrupt_page(addr, (p as u32).wrapping_mul(131) % (PAGE as u32 * 8))?;
        }
    }
    // Each read of a rotted page counts one correction; two passes push
    // every page to the default threshold of 2.
    read_all(&vol, &scope, &segments, cfg.scrub_threshold as usize)?;

    let t0 = Instant::now();
    let report = vol.scrub(&scope)?;
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let mb = (report.pages_rewritten * PAGE as u64) as f64 / (1024.0 * 1024.0);
    let rel = vol.reliability();
    assert_eq!(
        rel.uncorrectable, 0,
        "single flips must all correct: {rel:?}"
    );
    assert!(report.pages_rewritten > 0, "scrub found nothing to do");
    Ok((mb / secs, report.pages_rewritten))
}

const DDL: &str = "\
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(40),
  Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Severity INTEGER,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);";

const DOCTORS: i64 = 4;
const BASE_VISITS: i64 = 48;
const BATCHES: usize = 6;
const BATCH: i64 = 2;
const FLUSH_AFTER: usize = 2;

fn visit(i: i64) -> Vec<Value> {
    let purposes = ["Checkup", "Sclerosis", "Migraine"];
    vec![
        Value::Int(i),
        Value::Int(i % 8),
        Value::Text(purposes[(i % 3) as usize].into()),
        Value::Int(i % DOCTORS),
    ]
}

fn recovery_config() -> DeviceConfig {
    let mut config = DeviceConfig::default_2007();
    config.flash.page_size = 256;
    config.flash.pages_per_block = 8;
    config.flash.num_blocks = 512;
    config.flash.meta_slot_blocks = 4;
    config.flash.wal_blocks = 2;
    config.delta_flush_rows = 0;
    config
}

fn build_sealed() -> GhostDb {
    let stmts = ghostdb_sql::parse_statements(DDL).expect("parse");
    let schema = ghostdb_sql::bind_schema(&stmts).expect("bind");
    let mut data = Dataset::empty(&schema);
    for i in 0..DOCTORS {
        data.push_row(
            TableId(0),
            vec![
                Value::Int(i),
                Value::Text(format!("doc{i}")),
                Value::Text(if i % 2 == 0 { "France" } else { "Spain" }.into()),
            ],
        )
        .expect("doctor");
    }
    for i in 0..BASE_VISITS {
        data.push_row(TableId(1), visit(i)).expect("visit");
    }
    let mut db = GhostDb::create(DDL, recovery_config(), &data).expect("create");
    db.seal().expect("seal");
    db
}

fn run_workload(db: &mut GhostDb) -> Result<()> {
    for k in 0..BATCHES {
        let first = BASE_VISITS + (k as i64) * BATCH;
        db.insert_rows(TableId(1), (first..first + BATCH).map(visit).collect())?;
        if k == FLUSH_AFTER {
            db.flush_deltas()?;
        }
    }
    Ok(())
}

const PROBE: &str = "SELECT Vis.VisID, Vis.Purpose FROM Visit Vis WHERE Vis.Severity >= 3";

/// Phase 3: torn cuts spread across the workload, plus one rotted bit
/// in every seventh programmed page before each mount. Returns
/// (success rate, trials).
fn recovery_phase(trials: u64) -> (f64, u64) {
    // Reference probe rows after each whole-batch prefix.
    let references: Vec<Vec<Vec<Value>>> = (0..=BATCHES)
        .map(|k| {
            let stmts = ghostdb_sql::parse_statements(DDL).expect("parse");
            let schema = ghostdb_sql::bind_schema(&stmts).expect("bind");
            let mut data = Dataset::empty(&schema);
            for i in 0..DOCTORS {
                data.push_row(
                    TableId(0),
                    vec![
                        Value::Int(i),
                        Value::Text(format!("doc{i}")),
                        Value::Text(if i % 2 == 0 { "France" } else { "Spain" }.into()),
                    ],
                )
                .expect("doctor");
            }
            for i in 0..BASE_VISITS + (k as i64) * BATCH {
                data.push_row(TableId(1), visit(i)).expect("visit");
            }
            let db = GhostDb::create(DDL, recovery_config(), &data).expect("reference");
            db.query(PROBE).expect("reference probe").rows.rows
        })
        .collect();

    // Ops the uninterrupted run issues, to spread the cut points.
    let total = {
        let mut db = build_sealed();
        let before = db.nand().stats();
        run_workload(&mut db).expect("uninterrupted run");
        let d = db.nand().stats().since(&before);
        d.page_programs + d.block_erases
    };

    let mut successes = 0u64;
    for t in 0..trials {
        let n = 1 + t * (total - 2) / trials.max(1);
        let mut db = build_sealed();
        let nand = db.nand().clone();
        nand.arm_power_cut(n, true);
        if run_workload(&mut db).is_ok() {
            eprintln!("recovery trial {t}: cut at op {n} never tripped");
            continue;
        }
        drop(db);
        nand.disarm_power_cut();

        let cfg = nand.config().clone();
        for p in (0..cfg.num_blocks * cfg.pages_per_block).step_by(7) {
            let addr = PageAddr(p as u32);
            if nand.page_state(addr).expect("state") == PageState::Programmed {
                let bit = (p as u32).wrapping_mul(131) % (cfg.page_size as u32 * 8);
                nand.corrupt_page(addr, bit).expect("rot");
            }
        }

        let recovered = GhostDb::mount(nand, recovery_config())
            .ok()
            .and_then(|db| {
                let visits = db.stats().rows(TableId(1));
                let probed = db.query(PROBE).ok()?.rows.rows;
                (0..=BATCHES).find(|&k| {
                    visits == (BASE_VISITS + (k as i64) * BATCH) as u64 && references[k] == probed
                })
            })
            .is_some();
        if recovered {
            successes += 1;
        } else {
            eprintln!("recovery trial {t}: cut at op {n} recovered no whole-batch prefix");
        }
    }
    (successes as f64 / trials as f64, trials)
}

fn main() {
    let (ecc_read_overhead, host_overhead) = ecc_overhead_phase().expect("ecc phase");
    let raw_mb_s = scan_mb_per_s(false).expect("raw scan");
    let ecc_mb_s = scan_mb_per_s(true).expect("protected scan");
    eprintln!(
        "ecc:      {ecc_read_overhead:.3}x simulated query overhead, {host_overhead:.3}x host \
         (raw scan {raw_mb_s:.0} MB/s, protected scan {ecc_mb_s:.0} MB/s)"
    );

    let (scrub_mb_per_s, scrub_pages) = scrub_phase().expect("scrub phase");
    eprintln!("scrub:    {scrub_mb_per_s:.1} MB/s ({scrub_pages} rotted pages relocated)");

    let trials = 24;
    let (recovery_success_rate, _) = recovery_phase(trials);
    eprintln!("recovery: {trials} torn cuts + rot, success rate {recovery_success_rate:.3}");

    let overhead_gate_max = 1.5;
    let scrub_gate_min = 10.0;
    let recovery_gate_min = 1.0;
    let pass = ecc_read_overhead <= overhead_gate_max
        && scrub_mb_per_s >= scrub_gate_min
        && recovery_success_rate >= recovery_gate_min;

    let body = format!(
        "{{\n  \"pr\": 6,\n  \"title\": \"Dying-flash reliability: ECC, grown bad blocks, \
         scrubbing, and recovery under fault injection\",\n  \
         \"geometry\": \"2 KiB pages, 64 pages/block, 256-block part for ECC/scrub; \
         256 B pages, 8 pages/block, 512-block part for recovery\",\n  \
         \"payload\": \"medical 80%-selectivity query under a 16 KiB RAM budget on raw vs \
         protected parts; one retention flip per programmed page before scrub; torn power \
         cuts plus rot in every seventh page before each recovery mount\",\n  \
         \"results\": [\n    \
         {{\"name\": \"ecc_read\", \"host_overhead\": {host_overhead:.3}, \
         \"raw_scan_mb_per_s\": {raw_mb_s:.0}, \
         \"protected_scan_mb_per_s\": {ecc_mb_s:.0}}},\n    \
         {{\"name\": \"scrub\", \"pages_relocated\": {scrub_pages}}},\n    \
         {{\"name\": \"recovery\", \"trials\": {trials}}}\n  ],\n  \
         \"acceptance\": {{\n    \"ecc_read_overhead\": {ecc_read_overhead:.3},\n    \
         \"ecc_read_overhead_gate_max\": {overhead_gate_max:.1},\n    \
         \"scrub_mb_per_s\": {scrub_mb_per_s:.1},\n    \
         \"scrub_mb_per_s_gate_min\": {scrub_gate_min:.1},\n    \
         \"recovery_success_rate\": {recovery_success_rate:.3},\n    \
         \"recovery_success_rate_gate_min\": {recovery_gate_min:.1},\n    \
         \"pass\": {pass}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_PR6.json", &body).expect("write BENCH_PR6.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR6.json");
    assert!(pass, "reliability bench gates failed");
}
