//! Perf-trajectory runner for the flight recorder: proves the
//! observability layer is free where it must be and fast where it is
//! used, then writes `BENCH_PR9.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_observability`
//!
//! Two claims are gated:
//!
//! * **Recorder-off overhead** — the instrumentation is compiled in
//!   unconditionally (metric counters, per-operator meters), so the
//!   simulated device time of a query with the recorder off must stay
//!   within 1.10x of the same query fully traced. The hooks never touch
//!   the simulated clock, so the ratio is 1.00 by construction — the
//!   gate catches anyone who later puts instrumentation on the device
//!   clock.
//! * **Scrape throughput** — snapshotting the whole registry and
//!   rendering the Prometheus text must sustain ≥ 1 000 scrapes/s
//!   host-side, so polling the engine is never the bottleneck.

use std::time::Instant;

use ghostdb_bench::{latency::min_query_ns, medical_fixture};
use ghostdb_workload::paper_query;

const PRESCRIPTIONS: usize = 2_000;
const SCRAPES: usize = 2_000;

fn main() {
    let f = medical_fixture(PRESCRIPTIONS).expect("build medical fixture");
    let db = f.db;
    let sql = paper_query(f.cfg.date_start);

    // Phase 1: simulated device time, recorder off vs. fully traced.
    let off_ns = min_query_ns(&db, &sql, 5).expect("recorder-off query");
    db.set_tracing(true);
    let on_ns = min_query_ns(&db, &sql, 5).expect("recorder-on query");
    assert!(
        db.last_trace().is_some(),
        "tracing was on but recorded nothing"
    );
    db.set_tracing(false);
    let recorder_off_overhead = off_ns as f64 / on_ns.max(1) as f64;
    eprintln!(
        "device time: recorder off {off_ns} sim ns, traced {on_ns} sim ns, \
         off/on ratio {recorder_off_overhead:.3}"
    );

    // Host-side cost of the same toggle (informational, not gated:
    // wall-clock of a simulated device is dominated by the simulator).
    let host = |traced: bool| {
        db.set_tracing(traced);
        let t0 = Instant::now();
        for _ in 0..20 {
            db.query(&sql).expect("host-timing query");
        }
        db.set_tracing(false);
        t0.elapsed().as_secs_f64() / 20.0
    };
    let host_off_s = host(false);
    let host_on_s = host(true);

    // Phase 2: metrics scrape throughput (snapshot + Prometheus text).
    let t0 = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..SCRAPES {
        bytes += db.metrics_text().len();
    }
    let scrape_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let metrics_scrape_per_s = SCRAPES as f64 / scrape_secs;
    eprintln!(
        "scrapes: {SCRAPES} in {scrape_secs:.3}s = {metrics_scrape_per_s:.0}/s \
         ({} B average exposition)",
        bytes / SCRAPES
    );

    let recorder_off_overhead_gate_max = 1.10;
    let metrics_scrape_per_s_gate_min = 1_000.0;
    let pass = recorder_off_overhead <= recorder_off_overhead_gate_max
        && metrics_scrape_per_s >= metrics_scrape_per_s_gate_min;

    let body = format!(
        "{{\n  \"pr\": 9,\n  \"title\": \"Flight recorder: query tracing, EXPLAIN ANALYZE, \
         and an engine-wide metrics registry\",\n  \
         \"workload\": \"medical({PRESCRIPTIONS} prescriptions), paper query; \
         {SCRAPES} Prometheus scrapes\",\n  \
         \"results\": [\n    \
         {{\"name\": \"query_sim_ns\", \"recorder_off\": {off_ns}, \
         \"recorder_on\": {on_ns}}},\n    \
         {{\"name\": \"query_host_secs\", \"recorder_off\": {host_off_s:.6}, \
         \"recorder_on\": {host_on_s:.6}}},\n    \
         {{\"name\": \"metrics_scrape\", \"count\": {SCRAPES}, \
         \"host_secs\": {scrape_secs:.3}, \"per_s\": {metrics_scrape_per_s:.0}}}\n  ],\n  \
         \"acceptance\": {{\n    \
         \"recorder_off_overhead\": {recorder_off_overhead:.3},\n    \
         \"recorder_off_overhead_gate_max\": {recorder_off_overhead_gate_max:.2},\n    \
         \"metrics_scrape_per_s\": {metrics_scrape_per_s:.0},\n    \
         \"metrics_scrape_per_s_gate_min\": {metrics_scrape_per_s_gate_min:.0},\n    \
         \"pass\": {pass}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_PR9.json", &body).expect("write BENCH_PR9.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR9.json");
    assert!(pass, "observability bench gates failed");
}
