//! Perf-trajectory runner for the analytic surface (PR 7): how much the
//! histogram-costed plan choice buys on range queries, device-side
//! GROUP BY fold throughput, and the RAM bound of the top-k epilogue —
//! then writes `BENCH_PR7.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_analytics`
//!
//! Workload: the two-table tree of `bench_mutations`
//! (Customer ← Purchase), 12 000 purchases, merged and sealed before
//! measuring. Three probes:
//!
//! 1. **Range plan spread** — a `BETWEEN` on a hidden column plus a
//!    visible range, timed (simulated ns) under every enumerated plan;
//!    `range_speedup` is worst/best, and the optimizer's own pick must
//!    not be the worst.
//! 2. **Grouped fold** — a join + `GROUP BY` + `ORDER BY` aggregate
//!    over every purchase; throughput is input rows per host second.
//! 3. **Top-k RAM** — `ORDER BY … LIMIT 10` over all purchases must
//!    peak far below the 64 KB device budget (the bounded buffer), even
//!    though an un-LIMITed sort of the same rows would not fit.

use std::time::Instant;

use ghostdb_core::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Customer (
  CustID INTEGER PRIMARY KEY,
  Region CHAR(12));
CREATE TABLE Purchase (
  OrdID INTEGER PRIMARY KEY,
  Day INTEGER,
  Item CHAR(16) HIDDEN,
  Amount INTEGER HIDDEN,
  CustID REFERENCES Customer(CustID) HIDDEN);";

const CUSTOMERS: i64 = 64;
const ROWS: i64 = 12_000;

fn build() -> Result<GhostDb> {
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    let regions = ["north", "south", "east", "west"];
    for i in 0..CUSTOMERS {
        data.push_row(
            TableId(0),
            vec![Value::Int(i), Value::Text(regions[(i % 4) as usize].into())],
        )?;
    }
    // Amount cycles 10..1000, Day cycles the year: both range targets
    // have smooth equi-depth histograms with plenty of distinct keys.
    for i in 0..ROWS {
        data.push_row(
            TableId(1),
            vec![
                Value::Int(i),
                Value::Int(i % 365),
                Value::Text(format!("item-{:03}", i % 40)),
                Value::Int(10 + i % 990),
                Value::Int(i % CUSTOMERS),
            ],
        )?;
    }
    GhostDb::create(DDL, DeviceConfig::default_2007(), &data)
}

fn main() {
    let db = build().expect("build");

    // Probe 1: range plan spread. A selective hidden BETWEEN (~2% of
    // rows) and a visible tail cut give the enumerator real choices.
    let range_sql = "SELECT Pur.OrdID FROM Purchase Pur \
                     WHERE Pur.Amount BETWEEN 100 AND 120 AND Pur.Day >= 300";
    let plans = db.plans(range_sql).expect("plans");
    assert!(plans.len() >= 2, "range query enumerated only one plan");
    let mut best_ns = u64::MAX;
    let mut worst_ns = 0u64;
    let mut expect_rows = None;
    for cp in &plans {
        let out = db.query_with_plan(range_sql, &cp.plan).expect("range plan");
        let rows = out.rows.rows.len();
        match expect_rows {
            None => expect_rows = Some(rows),
            Some(n) => assert_eq!(n, rows, "plans disagree on the result"),
        }
        best_ns = best_ns.min(out.report.total_ns);
        worst_ns = worst_ns.max(out.report.total_ns);
    }
    let chosen_ns = db.query(range_sql).expect("range best").report.total_ns;
    let range_speedup = worst_ns as f64 / best_ns as f64;
    let chosen_vs_best = chosen_ns as f64 / best_ns as f64;
    eprintln!(
        "range: {} plans, best {best_ns} ns, worst {worst_ns} ns \
         (spread {range_speedup:.2}x), optimizer pick {chosen_ns} ns",
        plans.len(),
    );

    // Probe 2: grouped fold throughput over every purchase.
    let group_sql = "SELECT Cust.Region, COUNT(*), SUM(Pur.Amount) \
                     FROM Purchase Pur, Customer Cust \
                     WHERE Pur.CustID = Cust.CustID \
                     GROUP BY Cust.Region ORDER BY 2 DESC, 1";
    let mut group_secs = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = db.query(group_sql).expect("group query");
        group_secs = group_secs.min(t0.elapsed().as_secs_f64().max(1e-9));
        assert_eq!(out.rows.rows.len(), 4, "one row per region");
        let total: i64 = out
            .rows
            .rows
            .iter()
            .map(|r| r[1].as_int().expect("count"))
            .sum();
        assert_eq!(total, ROWS, "grouped counts must cover every purchase");
    }
    let group_rows_per_s = ROWS as f64 / group_secs;
    eprintln!("group: {ROWS} rows folded in {group_secs:.3}s = {group_rows_per_s:.0} rows/s");

    // Probe 3: top-k RAM bound. 12 000 qualifying rows would blow the
    // 64 KB budget if the epilogue buffered them all; LIMIT 10 keeps it
    // to a bounded buffer.
    let topk_sql = "SELECT Pur.OrdID, Pur.Amount FROM Purchase Pur \
                    ORDER BY 2 DESC, 1 LIMIT 10";
    db.ram().reset_peak();
    let out = db.query(topk_sql).expect("top-k query");
    let topk_peak_bytes = db.ram().peak() as u64;
    assert_eq!(out.rows.rows.len(), 10);
    assert_eq!(out.rows.rows[0][1], Value::Int(999), "max amount first");
    eprintln!(
        "top-k: peak {topk_peak_bytes} B of {} B budget",
        db.ram().cap()
    );

    // Gates. The plan spread on this workload is >2x in practice (index
    // probe vs delegated scan); the fold runs tens of thousands of rows
    // per host second even on slow CI; the top-k peak (dominated by the base
    // operators' buffers, not the bounded epilogue) stays comfortably
    // inside the device budget.
    let range_speedup_gate_min = 1.2;
    let group_rows_per_s_gate_min = 2_000.0;
    let topk_peak_bytes_gate_max = 40_960.0;
    let pass = range_speedup >= range_speedup_gate_min
        && chosen_vs_best < range_speedup.max(1.01)
        && group_rows_per_s >= group_rows_per_s_gate_min
        && (topk_peak_bytes as f64) <= topk_peak_bytes_gate_max;

    let body = format!(
        "{{\n  \"pr\": 7,\n  \"title\": \"Analytic query surface: aggregates, GROUP BY, \
         ORDER BY/LIMIT, range predicates\",\n  \
         \"workload\": \"Customer(64) <- Purchase(12000), merged; range BETWEEN probe, \
         4-region grouped fold, top-10\",\n  \
         \"results\": [\n    \
         {{\"name\": \"range_plan_spread_sim_ns\", \"plans\": {}, \
         \"best\": {best_ns}, \"worst\": {worst_ns}, \"optimizer_pick\": {chosen_ns}}},\n    \
         {{\"name\": \"grouped_fold\", \"rows\": {ROWS}, \
         \"host_secs\": {group_secs:.4}, \"rows_per_s\": {group_rows_per_s:.0}}},\n    \
         {{\"name\": \"topk_ram\", \"limit\": 10, \"peak_bytes\": {topk_peak_bytes}, \
         \"budget_bytes\": {}}}\n  ],\n  \
         \"acceptance\": {{\n    \"range_speedup\": {range_speedup:.2},\n    \
         \"range_speedup_gate_min\": {range_speedup_gate_min:.1},\n    \
         \"group_rows_per_s\": {group_rows_per_s:.0},\n    \
         \"group_rows_per_s_gate_min\": {group_rows_per_s_gate_min:.0},\n    \
         \"topk_peak_bytes\": {topk_peak_bytes},\n    \
         \"topk_peak_bytes_gate_max\": {topk_peak_bytes_gate_max:.0},\n    \
         \"pass\": {pass}\n  }}\n}}\n",
        plans.len(),
        db.ram().cap(),
    );
    std::fs::write("BENCH_PR7.json", &body).expect("write BENCH_PR7.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR7.json");
    assert!(pass, "analytics bench gates failed");
}
