//! Perf-trajectory runner for the mutation path (PR 5): measures delete
//! and update throughput, query latency while tombstones are resident
//! vs. the compacted layout, and — the headline — how much flash a
//! post-delete flush actually reclaims, then writes `BENCH_PR5.json`
//! at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_mutations`
//!
//! Workload: the same two-table tree as `bench_inserts`
//! (Customer ← Purchase), base-loaded with 8 000 purchases and merged.
//! Then: delete 2 000 purchases in batches of 100, update 1 000 more
//! (rewriting a dict string and a fixed column), query against the
//! tombstone-resident state, and finally force the compacting flush —
//! measuring the live-page footprint before/after and driving the GC
//! until the freed segments are erased back to the free list.

use std::time::Instant;

use ghostdb_core::GhostDb;
use ghostdb_ram::RamScope;
use ghostdb_storage::Dataset;
use ghostdb_types::{ColumnId, DeviceConfig, Result, RowId, TableId, Value};

const DDL: &str = "\
CREATE TABLE Customer (
  CustID INTEGER PRIMARY KEY,
  Region CHAR(12));
CREATE TABLE Purchase (
  OrdID INTEGER PRIMARY KEY,
  Day INTEGER,
  Item CHAR(16) HIDDEN,
  Amount INTEGER HIDDEN,
  CustID REFERENCES Customer(CustID) HIDDEN);";

const CUSTOMERS: i64 = 64;
const BASE_ROWS: i64 = 8_000;
const DELETE_ROWS: i64 = 2_000;
const UPDATE_ROWS: i64 = 1_000;
const BATCH: usize = 100;
/// Hidden bytes one purchase holds in the store (4 B item code + 8 B
/// amount key + 8 B custid key) — the per-row payload a delete retires.
const HIDDEN_ROW_BYTES: u64 = 20;

fn purchase(i: i64, item_pool: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Int(i % 365),
        Value::Text(format!("item-{:03}", i % item_pool)),
        Value::Int(10 + i % 990),
        Value::Int(i % CUSTOMERS),
    ]
}

fn build() -> Result<GhostDb> {
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    let regions = ["north", "south", "east", "west"];
    for i in 0..CUSTOMERS {
        data.push_row(
            TableId(0),
            vec![Value::Int(i), Value::Text(regions[(i % 4) as usize].into())],
        )?;
    }
    for i in 0..BASE_ROWS {
        data.push_row(TableId(1), purchase(i, 40))?;
    }
    // Manual flush only: the bench controls the compaction point.
    let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
    GhostDb::create(DDL, config, &data)
}

/// Minimum simulated latency of the probe query over a few runs.
fn query_ns(db: &GhostDb, sql: &str) -> Result<u64> {
    ghostdb_bench::latency::min_query_ns(db, sql, 3)
}

fn main() {
    let mut db = build().expect("build");
    let sql = "SELECT Pur.OrdID, Cust.Region FROM Purchase Pur, Customer Cust \
               WHERE Pur.Item = 'item-007' AND Pur.CustID = Cust.CustID";
    let merged_ns = query_ns(&db, sql).expect("merged query");

    // Phase 1: delete throughput (host wall time). Purchases are the
    // tree root, so nothing references them — RESTRICT never fires.
    // Each batch removes the current tail [6000, 6100): the logical id
    // space re-densifies after every batch, so the same range empties
    // the last 2 000 rows overall.
    let t0 = Instant::now();
    for _ in 0..(DELETE_ROWS as usize / BATCH) {
        let start = (BASE_ROWS - DELETE_ROWS) as u32;
        let batch: Vec<RowId> = (start..start + BATCH as u32).map(RowId).collect();
        db.delete_rows(TableId(1), batch).expect("delete batch");
    }
    let delete_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let deletes_per_s = DELETE_ROWS as f64 / delete_secs;
    assert_eq!(
        db.stats().rows(TableId(1)),
        (BASE_ROWS - DELETE_ROWS) as u64
    );
    eprintln!("deletes: {DELETE_ROWS} rows in {delete_secs:.3}s = {deletes_per_s:.0} rows/s");

    // Phase 2: update throughput (dict rewrite + fixed rewrite; ~half
    // the items land outside every dictionary seen so far, so the
    // suppression/delta-repost path is on the measured path).
    let t0 = Instant::now();
    for b in 0..(UPDATE_ROWS as usize / BATCH) {
        let start = (b * BATCH) as u32;
        let rows: Vec<RowId> = (start..start + BATCH as u32).map(RowId).collect();
        db.update_rows(
            TableId(1),
            rows,
            vec![
                (ColumnId(2), Value::Text(format!("patched-{b:03}"))),
                (ColumnId(3), Value::Int(5)),
            ],
        )
        .expect("update batch");
    }
    let update_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let updates_per_s = UPDATE_ROWS as f64 / update_secs;
    eprintln!("updates: {UPDATE_ROWS} rows in {update_secs:.3}s = {updates_per_s:.0} rows/s");

    // Phase 3: query latency with tombstones + overlays resident.
    let tombstone_ns = query_ns(&db, sql).expect("tombstone query");
    let tombstone_query_slowdown = tombstone_ns as f64 / merged_ns as f64;

    // Phase 4: the compacting flush — dead rows physically dropped —
    // then drive the GC until the freed segments are erased.
    let live_before = db.volume().usage();
    let t0 = Instant::now();
    db.flush_deltas().expect("flush");
    let flush_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let scope = RamScope::new(db.ram());
    let mut gc_pages_reclaimed = 0u64;
    loop {
        let gc = db.volume().gc(&scope).expect("gc pass");
        if gc.blocks_reclaimed == 0 {
            break;
        }
        gc_pages_reclaimed += gc.pages_reclaimed;
    }
    drop(scope);
    let live_after = db.volume().usage();
    let page = db.config().flash.page_size as u64;
    let reclaimed_bytes = live_before.live_pages.saturating_sub(live_after.live_pages) * page;
    let deleted_bytes = DELETE_ROWS as u64 * HIDDEN_ROW_BYTES;
    eprintln!(
        "flush: {flush_secs:.3}s, live pages {} -> {} (reclaimed {} B of {} B deleted), \
         GC erased {gc_pages_reclaimed} dead pages, free blocks {} -> {}",
        live_before.live_pages,
        live_after.live_pages,
        reclaimed_bytes,
        deleted_bytes,
        live_before.free_blocks,
        live_after.free_blocks,
    );

    // Phase 5: query latency on the compacted layout (sanity: the
    // smaller store must not be slower than the tombstoned one).
    let compacted_ns = query_ns(&db, sql).expect("compacted query");

    // Gates. Throughputs have wide margin on any host; tombstone-
    // resident queries must stay within 4x of the merged layout; a
    // post-delete flush must hand back at least half the deleted rows'
    // bytes (in practice it reclaims far more — postings and SKT rows
    // die with their rows).
    let deletes_per_s_gate_min = 2_000.0;
    let updates_per_s_gate_min = 500.0;
    let tombstone_query_slowdown_gate_max = 4.0;
    let reclaimed_bytes_gate_min = (deleted_bytes / 2) as f64;
    let pass = deletes_per_s >= deletes_per_s_gate_min
        && updates_per_s >= updates_per_s_gate_min
        && tombstone_query_slowdown <= tombstone_query_slowdown_gate_max
        && reclaimed_bytes as f64 >= reclaimed_bytes_gate_min;

    let body = format!(
        "{{\n  \"pr\": 5,\n  \"title\": \"Full DML: tombstone-aware DELETE/UPDATE with \
         flush-time compaction\",\n  \
         \"workload\": \"Customer(64) <- Purchase(8000 base, merged; 2000 deleted, 1000 \
         updated in batches of {BATCH})\",\n  \
         \"results\": [\n    \
         {{\"name\": \"delete_throughput\", \"rows\": {DELETE_ROWS}, \
         \"host_secs\": {delete_secs:.3}, \"rows_per_s\": {deletes_per_s:.0}}},\n    \
         {{\"name\": \"update_throughput\", \"rows\": {UPDATE_ROWS}, \
         \"host_secs\": {update_secs:.3}, \"rows_per_s\": {updates_per_s:.0}}},\n    \
         {{\"name\": \"query_latency_sim_ns\", \"merged\": {merged_ns}, \
         \"tombstone_resident\": {tombstone_ns}, \"compacted\": {compacted_ns}}},\n    \
         {{\"name\": \"post_delete_flush\", \"host_secs\": {flush_secs:.3}, \
         \"live_pages_before\": {}, \"live_pages_after\": {}, \
         \"gc_pages_erased\": {gc_pages_reclaimed}, \
         \"free_blocks_before\": {}, \"free_blocks_after\": {}}}\n  ],\n  \
         \"acceptance\": {{\n    \"deletes_per_s\": {deletes_per_s:.0},\n    \
         \"deletes_per_s_gate_min\": {deletes_per_s_gate_min:.0},\n    \
         \"updates_per_s\": {updates_per_s:.0},\n    \
         \"updates_per_s_gate_min\": {updates_per_s_gate_min:.0},\n    \
         \"tombstone_query_slowdown\": {tombstone_query_slowdown:.2},\n    \
         \"tombstone_query_slowdown_gate_max\": {tombstone_query_slowdown_gate_max:.1},\n    \
         \"reclaimed_bytes\": {reclaimed_bytes},\n    \
         \"reclaimed_bytes_gate_min\": {reclaimed_bytes_gate_min:.0},\n    \
         \"pass\": {pass}\n  }}\n}}\n",
        live_before.live_pages,
        live_after.live_pages,
        live_before.free_blocks,
        live_after.free_blocks,
    );
    std::fs::write("BENCH_PR5.json", &body).expect("write BENCH_PR5.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR5.json");
    assert!(pass, "mutation bench gates failed");
}
