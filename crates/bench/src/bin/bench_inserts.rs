//! Perf-trajectory runner for the post-load write path: measures insert
//! throughput, query latency on un-flushed deltas vs. after the merge,
//! and the flash write amplification of a delta flush, then writes
//! `BENCH_PR3.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_inserts`
//!
//! Workload: a two-table tree (Customer ← Purchase) with hidden CHAR +
//! INTEGER columns. Base-load 8 000 purchases, trickle-insert 2 000 more
//! (some carrying item strings outside the base dictionary, so the
//! delta-dictionary path is on the measured path), query against the
//! RAM delta, then force the LSM merge and query again.

use std::time::Instant;

use ghostdb_core::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Customer (
  CustID INTEGER PRIMARY KEY,
  Region CHAR(12));
CREATE TABLE Purchase (
  OrdID INTEGER PRIMARY KEY,
  Day INTEGER,
  Item CHAR(16) HIDDEN,
  Amount INTEGER HIDDEN,
  CustID REFERENCES Customer(CustID) HIDDEN);";

const CUSTOMERS: i64 = 64;
const BASE_ROWS: i64 = 8_000;
const INSERT_ROWS: i64 = 2_000;
const BATCH: usize = 100;
/// Hidden bytes one purchase adds to the store (4 B item code + 8 B
/// amount key + 8 B custid key) — the denominator of the merge's write
/// amplification.
const HIDDEN_ROW_BYTES: u64 = 20;

fn purchase(i: i64, item_pool: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Int(i % 365),
        Value::Text(format!("item-{:03}", i % item_pool)),
        Value::Int(10 + i % 990),
        Value::Int(i % CUSTOMERS),
    ]
}

fn build() -> Result<GhostDb> {
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    let regions = ["north", "south", "east", "west"];
    for i in 0..CUSTOMERS {
        data.push_row(
            TableId(0),
            vec![Value::Int(i), Value::Text(regions[(i % 4) as usize].into())],
        )?;
    }
    for i in 0..BASE_ROWS {
        data.push_row(TableId(1), purchase(i, 40))?;
    }
    // Manual flush only: the bench controls the merge point.
    let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
    GhostDb::create(DDL, config, &data)
}

/// Minimum simulated latency of the probe query over a few runs.
fn query_ns(db: &GhostDb, sql: &str) -> Result<u64> {
    ghostdb_bench::latency::min_query_ns(db, sql, 3)
}

fn main() {
    let mut db = build().expect("build");
    // Probe mixes a base-dictionary item with the hidden join.
    let sql = "SELECT Pur.OrdID, Cust.Region FROM Purchase Pur, Customer Cust \
               WHERE Pur.Item = 'item-007' AND Pur.CustID = Cust.CustID";
    let base_ns = query_ns(&db, sql).expect("base query");

    // Phase 1: insert throughput (host wall time; the simulated clock
    // tracks device/bus costs separately).
    let t0 = Instant::now();
    let mut i = BASE_ROWS;
    while i < BASE_ROWS + INSERT_ROWS {
        // Pool of 50 > base pool of 40: ~20% of inserted rows carry
        // strings the base dictionary has never seen.
        let batch: Vec<Vec<Value>> = (i..i + BATCH as i64).map(|j| purchase(j, 50)).collect();
        db.insert_rows(TableId(1), batch).expect("insert batch");
        i += BATCH as i64;
    }
    let insert_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let inserts_per_s = INSERT_ROWS as f64 / insert_secs;
    assert_eq!(db.delta_rows(), INSERT_ROWS as u64);
    eprintln!("inserts: {INSERT_ROWS} rows in {insert_secs:.3}s = {inserts_per_s:.0} rows/s");

    // Phase 2: query latency on the un-flushed delta.
    let delta_ns = query_ns(&db, sql).expect("delta query");

    // Phase 3: the merge, and its flash write amplification.
    let before = db.volume().nand().stats();
    let t0 = Instant::now();
    let merged = db.flush_deltas().expect("flush");
    let flush_secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(merged, INSERT_ROWS as u64);
    let flush_stats = db.volume().nand().stats().since(&before);
    let merge_write_amp = flush_stats.bytes_programmed as f64 / (merged * HIDDEN_ROW_BYTES) as f64;
    eprintln!(
        "flush: {merged} rows merged in {flush_secs:.3}s, {} B programmed, amp {merge_write_amp:.1}x",
        flush_stats.bytes_programmed
    );

    // Phase 4: query latency after the merge.
    let flushed_ns = query_ns(&db, sql).expect("flushed query");
    let delta_query_slowdown = delta_ns as f64 / flushed_ns as f64;
    eprintln!(
        "query: base {base_ns} ns, delta {delta_ns} ns, flushed {flushed_ns} ns \
         (delta/flushed = {delta_query_slowdown:.2}x)"
    );

    // Gates. Throughput has wide margin over any host this runs on;
    // querying a RAM delta must stay within 4x of the merged layout;
    // the merge rewrites base + delta + indexes, so amplification is
    // bounded but not tiny — the gate catches runaway rewrites.
    let inserts_per_s_gate_min = 2_000.0;
    let delta_query_slowdown_gate_max = 4.0;
    let merge_write_amp_gate_max = 30.0;
    let pass = inserts_per_s >= inserts_per_s_gate_min
        && delta_query_slowdown <= delta_query_slowdown_gate_max
        && merge_write_amp <= merge_write_amp_gate_max;

    let body = format!(
        "{{\n  \"pr\": 3,\n  \"title\": \"Mutable GhostDB: post-load write path with LSM-style \
         delta indexes\",\n  \
         \"workload\": \"Customer(64) <- Purchase(8000 base + 2000 inserted, 20% fresh dict \
         strings), batches of {BATCH}\",\n  \
         \"results\": [\n    \
         {{\"name\": \"insert_throughput\", \"rows\": {INSERT_ROWS}, \
         \"host_secs\": {insert_secs:.3}, \"rows_per_s\": {inserts_per_s:.0}}},\n    \
         {{\"name\": \"query_latency_sim_ns\", \"base\": {base_ns}, \"delta\": {delta_ns}, \
         \"flushed\": {flushed_ns}}},\n    \
         {{\"name\": \"delta_merge\", \"rows_merged\": {merged}, \
         \"bytes_programmed\": {}, \"host_secs\": {flush_secs:.3}}}\n  ],\n  \
         \"acceptance\": {{\n    \"inserts_per_s\": {inserts_per_s:.0},\n    \
         \"inserts_per_s_gate_min\": {inserts_per_s_gate_min:.0},\n    \
         \"delta_query_slowdown\": {delta_query_slowdown:.2},\n    \
         \"delta_query_slowdown_gate_max\": {delta_query_slowdown_gate_max:.1},\n    \
         \"merge_write_amp\": {merge_write_amp:.1},\n    \
         \"merge_write_amp_gate_max\": {merge_write_amp_gate_max:.1},\n    \
         \"pass\": {pass}\n  }}\n}}\n",
        flush_stats.bytes_programmed
    );
    std::fs::write("BENCH_PR3.json", &body).expect("write BENCH_PR3.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR3.json");
    assert!(pass, "insert bench gates failed");
}
