//! Perf-trajectory runner for the durability subsystem: mount latency
//! vs. a fresh bulk load, WAL replay throughput, and the flash overhead
//! of the sealed image, written to `BENCH_PR4.json` at the repo root.
//!
//! Usage: `cargo run --release -p ghostdb-bench --bin bench_mount`
//!
//! Workload: the write-path bench's two-table tree (Customer ←
//! Purchase), 20 000 base purchases. The base is sealed once; mounts
//! are then timed against repeated fresh `GhostDb::create` loads of the
//! same dataset. A second phase appends 2 000 post-seal rows (WAL-only)
//! and times the mount that must replay them.

use std::time::Instant;

use ghostdb_core::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Customer (
  CustID INTEGER PRIMARY KEY,
  Region CHAR(12));
CREATE TABLE Purchase (
  OrdID INTEGER PRIMARY KEY,
  Day INTEGER,
  Item CHAR(16) HIDDEN,
  Amount INTEGER HIDDEN,
  CustID REFERENCES Customer(CustID) HIDDEN);";

const CUSTOMERS: i64 = 64;
const BASE_ROWS: i64 = 20_000;
const WAL_ROWS: i64 = 2_000;
const BATCH: usize = 100;

fn purchase(i: i64, item_pool: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Int(i % 365),
        Value::Text(format!("item-{:03}", i % item_pool)),
        Value::Int(10 + i % 990),
        Value::Int(i % CUSTOMERS),
    ]
}

fn config() -> DeviceConfig {
    let mut config = DeviceConfig::default_2007().with_delta_flush_rows(0);
    // A 256 MiB part keeps the mount-time free-block scan proportionate
    // to the dataset (a 1 GiB part would mostly scan blank blocks).
    config.flash.num_blocks = 2048;
    config
}

fn dataset() -> Result<Dataset> {
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    let regions = ["north", "south", "east", "west"];
    for i in 0..CUSTOMERS {
        data.push_row(
            TableId(0),
            vec![Value::Int(i), Value::Text(regions[(i % 4) as usize].into())],
        )?;
    }
    for i in 0..BASE_ROWS {
        data.push_row(TableId(1), purchase(i, 40))?;
    }
    Ok(data)
}

const PROBE: &str = "SELECT Pur.OrdID, Cust.Region FROM Purchase Pur, Customer Cust \
                     WHERE Pur.Item = 'item-007' AND Pur.CustID = Cust.CustID";

fn main() {
    let data = dataset().expect("dataset");

    // Phase 1: fresh-load cost (min of 3, host wall time).
    let mut fresh_secs = f64::MAX;
    let mut db = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let built = GhostDb::create(DDL, config(), &data).expect("create");
        fresh_secs = fresh_secs.min(t0.elapsed().as_secs_f64());
        db = Some(built);
    }
    let mut db = db.expect("built");
    let expect = db.query(PROBE).expect("probe").rows.rows;

    // Phase 2: seal, then time image-only mounts of the same part.
    let seal = db.seal().expect("seal");
    let payload_bytes = db.volume().usage().live_pages * db.config().flash.page_size as u64;
    let image_overhead = seal.image_bytes as f64 / payload_bytes as f64;
    eprintln!(
        "seal: epoch {}, image {} B over {} B of live payload (overhead {:.3})",
        seal.epoch, seal.image_bytes, payload_bytes, image_overhead
    );
    let nand = db.nand().clone();
    drop(db);
    let mut mount_secs = f64::MAX;
    let mut mounted = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let m = GhostDb::mount(nand.clone(), config()).expect("mount");
        mount_secs = mount_secs.min(t0.elapsed().as_secs_f64());
        mounted = Some(m);
    }
    let mounted_db = mounted.expect("mounted");
    assert_eq!(
        mounted_db.query(PROBE).expect("mounted probe").rows.rows,
        expect,
        "mounted image must answer like the fresh load"
    );
    let mount_speedup = fresh_secs / mount_secs.max(1e-9);
    eprintln!("mount: {mount_secs:.3}s vs fresh load {fresh_secs:.3}s = {mount_speedup:.1}x");

    // Phase 3: WAL replay throughput — append post-seal batches, then
    // time the mount that replays them.
    let mut db = mounted_db;
    let mut i = BASE_ROWS;
    while i < BASE_ROWS + WAL_ROWS {
        let batch: Vec<Vec<Value>> = (i..i + BATCH as i64).map(|j| purchase(j, 50)).collect();
        db.insert_rows(TableId(1), batch).expect("insert");
        i += BATCH as i64;
    }
    let nand = db.nand().clone();
    drop(db);
    let t0 = Instant::now();
    let replayed = GhostDb::mount(nand, config()).expect("replay mount");
    let replay_secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(replayed.delta_rows(), WAL_ROWS as u64);
    let wal_replay_rows_per_s = WAL_ROWS as f64 / replay_secs;
    eprintln!("replay: {WAL_ROWS} rows in {replay_secs:.3}s = {wal_replay_rows_per_s:.0} rows/s");

    // Gates: a mount must never be slower than rebuilding from the
    // plaintext dataset (it skips validation, encoding, and index
    // construction); replay keeps a wide margin over any host; the
    // image must stay a fraction of the payload it describes.
    let mount_speedup_gate_min = 1.0;
    let wal_replay_rows_per_s_gate_min = 1_000.0;
    let image_overhead_gate_max = 1.0;
    let pass = mount_speedup >= mount_speedup_gate_min
        && wal_replay_rows_per_s >= wal_replay_rows_per_s_gate_min
        && image_overhead <= image_overhead_gate_max;

    let body = format!(
        "{{\n  \"pr\": 4,\n  \"title\": \"Durable device images: seal/mount from flash, an \
         insert WAL, and crash-injection recovery\",\n  \
         \"workload\": \"Customer({CUSTOMERS}) <- Purchase({BASE_ROWS} sealed + {WAL_ROWS} \
         WAL-only), 256 MiB part, batches of {BATCH}\",\n  \
         \"results\": [\n    \
         {{\"name\": \"fresh_load\", \"host_secs\": {fresh_secs:.4}}},\n    \
         {{\"name\": \"mount\", \"host_secs\": {mount_secs:.4}, \
         \"image_bytes\": {}, \"payload_bytes\": {payload_bytes}}},\n    \
         {{\"name\": \"wal_replay\", \"rows\": {WAL_ROWS}, \"host_secs\": {replay_secs:.4}}}\n  ],\n  \
         \"acceptance\": {{\n    \"mount_speedup\": {mount_speedup:.2},\n    \
         \"mount_speedup_gate_min\": {mount_speedup_gate_min:.1},\n    \
         \"wal_replay_rows_per_s\": {wal_replay_rows_per_s:.0},\n    \
         \"wal_replay_rows_per_s_gate_min\": {wal_replay_rows_per_s_gate_min:.0},\n    \
         \"image_overhead\": {image_overhead:.3},\n    \
         \"image_overhead_gate_max\": {image_overhead_gate_max:.1},\n    \
         \"pass\": {pass}\n  }}\n}}\n",
        seal.image_bytes
    );
    std::fs::write("BENCH_PR4.json", &body).expect("write BENCH_PR4.json");
    println!("{body}");
    eprintln!("wrote BENCH_PR4.json");
    assert!(pass, "mount bench gates failed");
}
