//! EXP-B1 — the "last resort" joins the paper rules out, vs the climbing
//! index, on the same join task under identical hardware.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use ghostdb_catalog::TreeSchema;
use ghostdb_exec::{climbing_translate_count, grace_hash_join_count, join_index_count};
use ghostdb_flash::{Nand, Volume};
use ghostdb_index::IndexSet;
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_storage::{split_dataset, HiddenStore};
use ghostdb_types::{ColumnId, DeviceConfig, RowId, SimClock, TableId, Value};
use ghostdb_workload::{generate_medical, medical_schema, MedicalConfig};

const SCALE: usize = 20_000;

struct Stack {
    volume: Volume,
    ram: RamBudget,
    clock: SimClock,
    device: DeviceConfig,
    hidden: HiddenStore,
    indexes: IndexSet,
    tree: TreeSchema,
    visit: TableId,
    pre: TableId,
    fk_col: ColumnId,
    matching: Vec<RowId>,
}

fn stack() -> &'static Stack {
    static S: OnceLock<Stack> = OnceLock::new();
    S.get_or_init(|| {
        let cfg = MedicalConfig::scaled(SCALE);
        let data = generate_medical(&cfg).expect("gen");
        let schema = medical_schema().expect("schema");
        let tree = TreeSchema::analyze(&schema).expect("tree");
        let device = DeviceConfig::default_2007();
        let clock = SimClock::new();
        let volume = Volume::new(Nand::new(device.flash.clone(), clock.clone()));
        let ram = RamBudget::new(device.ram_bytes);
        let scope = RamScope::new(&ram);
        let (hidden, _v, _s, enc) = split_dataset(&volume, &scope, &schema, &data).expect("split");
        let indexes = IndexSet::build(&volume, &scope, &schema, &tree, &data, &enc).expect("idx");
        let visit = schema.resolve_table("Visit").expect("t");
        let pre = schema.resolve_table("Prescription").expect("t");
        let fk_col = schema.resolve_column(pre, "VisID").expect("c").column;
        let vis_tbl = &data.tables[visit.index()];
        let matching: Vec<RowId> = (0..vis_tbl.rows())
            .filter(|&i| vis_tbl.columns[2][i] == Value::Text("Sclerosis".into()))
            .map(|i| RowId(i as u32))
            .collect();
        drop(scope);
        Stack {
            volume,
            ram,
            clock,
            device,
            hidden,
            indexes,
            tree,
            visit,
            pre,
            fk_col,
            matching,
        }
    })
}

fn bench_baselines(c: &mut Criterion) {
    let s = stack();
    let mut g = c.benchmark_group("join_baselines");
    g.sample_size(10);
    g.bench_function("climbing_index", |b| {
        b.iter(|| {
            climbing_translate_count(
                &s.volume,
                &s.ram,
                &s.clock,
                &s.device,
                &s.indexes,
                s.visit,
                &s.matching,
                s.pre,
            )
            .expect("climb")
        })
    });
    g.bench_function("join_index_chain", |b| {
        b.iter(|| {
            join_index_count(
                &s.volume,
                &s.ram,
                &s.clock,
                &s.device,
                &s.indexes,
                &s.tree,
                s.visit,
                &s.matching,
                s.pre,
            )
            .expect("jidx")
        })
    });
    g.bench_function("grace_hash_join", |b| {
        b.iter(|| {
            grace_hash_join_count(
                &s.volume,
                &s.ram,
                &s.clock,
                &s.device,
                &s.hidden,
                s.pre,
                s.fk_col,
                &s.matching,
            )
            .expect("grace")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
