//! Ablations for the design decisions DESIGN.md §5 calls out:
//!
//! 1. **Cross-filtering on/off** — the optimizer's best plan vs the best
//!    plan that may not combine predicates before climbing.
//! 2. **Climbing value index vs column scan** — the same hidden
//!    predicate resolved through the index and through the fallback scan
//!    (+ translation).
//! 3. **Shared pair-temp vs id-only verification** — a Bloom post-filter
//!    whose predicate column is projected (the verify temp rides along
//!    with the projection fetch) vs one that verifies through a private
//!    id-only temp.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use ghostdb_bench::{medical_fixture, Fixture};
use ghostdb_exec::Source;
use ghostdb_workload::selectivity_query;

const SCALE: usize = 20_000;

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| medical_fixture(SCALE).expect("fixture"))
}

fn bench_cross_filtering(c: &mut Criterion) {
    let f = fixture();
    // Two predicates on Visit: the cross-filterable shape.
    let sql = selectivity_query(f.cfg.date_start, f.cfg.date_span_days, 0.3);
    let plans = f.db.plans(&sql).expect("plans");
    let with_cross = plans
        .iter()
        .find(|p| {
            p.plan
                .sources
                .iter()
                .any(|s| matches!(s, Source::CrossGroup { .. }))
        })
        .expect("a cross plan exists")
        .plan
        .clone();
    let without_cross = plans
        .iter()
        .find(|p| {
            !p.plan
                .sources
                .iter()
                .any(|s| matches!(s, Source::CrossGroup { .. }))
        })
        .expect("a non-cross plan exists")
        .plan
        .clone();

    let mut g = c.benchmark_group("ablation_cross_filtering");
    g.sample_size(10);
    g.bench_function("cross_on", |b| {
        b.iter(|| f.db.query_with_plan(&sql, &with_cross).expect("run"))
    });
    g.bench_function("cross_off", |b| {
        b.iter(|| f.db.query_with_plan(&sql, &without_cross).expect("run"))
    });
    g.finish();
}

fn bench_index_vs_scan(c: &mut Criterion) {
    let f = fixture();
    let sql = "SELECT Pre.PreID FROM Prescription Pre, Visit Vis \
               WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID";
    let spec = f.db.bind(sql).expect("bind");
    let with_index = ghostdb_exec::plan_all_pre(&spec, f.db.schema(), |_| true);
    let with_scan = ghostdb_exec::plan_all_pre(&spec, f.db.schema(), |_| false);

    let mut g = c.benchmark_group("ablation_climbing_index");
    g.sample_size(10);
    g.bench_function("climbing_index", |b| {
        b.iter(|| f.db.query_with_plan(sql, &with_index).expect("run"))
    });
    g.bench_function("column_scan", |b| {
        b.iter(|| f.db.query_with_plan(sql, &with_scan).expect("run"))
    });
    g.finish();
}

fn bench_verify_source(c: &mut Criterion) {
    let f = fixture();
    let mid = ghostdb_types::Date(f.cfg.date_start.0 + (f.cfg.date_span_days / 2) as i32);
    // Same filter; the first query projects the predicate column (shared
    // pair-temp verification), the second does not (id-only temp).
    let shared_sql = format!(
        "SELECT Pre.PreID, Vis.Date FROM Prescription Pre, Visit Vis \
         WHERE Vis.Date > '{mid}' AND Vis.Purpose = 'Sclerosis' \
           AND Vis.VisID = Pre.VisID"
    );
    let idonly_sql = format!(
        "SELECT Pre.PreID FROM Prescription Pre, Visit Vis \
         WHERE Vis.Date > '{mid}' AND Vis.Purpose = 'Sclerosis' \
           AND Vis.VisID = Pre.VisID"
    );
    let shared_plan = {
        let spec = f.db.bind(&shared_sql).expect("bind");
        f.db.plan_post(&spec)
    };
    let idonly_plan = {
        let spec = f.db.bind(&idonly_sql).expect("bind");
        f.db.plan_post(&spec)
    };

    let mut g = c.benchmark_group("ablation_verify_source");
    g.sample_size(10);
    g.bench_function("shared_pair_temp", |b| {
        b.iter(|| {
            f.db.query_with_plan(&shared_sql, &shared_plan)
                .expect("run")
        })
    });
    g.bench_function("id_only_temp", |b| {
        b.iter(|| {
            f.db.query_with_plan(&idonly_sql, &idonly_plan)
                .expect("run")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cross_filtering,
    bench_index_vs_scan,
    bench_verify_source
);
criterion_main!(benches);
