//! EXP-OPS — operator micro-costs backing the cost model: merge
//! intersection, external sort (in-RAM vs spilling), SKT cursor access,
//! climbing probes and temp probes.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghostdb_bench::{medical_fixture, Fixture};
use ghostdb_exec::MergeIntersect;
use ghostdb_flash::{Nand, Volume};
use ghostdb_index::ExternalSorter;
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_types::{collect_ids, DeviceConfig, IdStream, RowId, SimClock, VecIdStream};

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| medical_fixture(20_000).expect("fixture"))
}

fn scratch_volume() -> (Volume, RamScope) {
    let device = DeviceConfig::default_2007();
    let volume = Volume::new(Nand::new(device.flash, SimClock::new()));
    let ram = RamBudget::new(device.ram_bytes);
    (volume, RamScope::new(&ram))
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("op_merge_intersect");
    for &n in &[1_000usize, 10_000] {
        let a: Vec<RowId> = (0..n as u32).map(RowId).collect();
        let b_list: Vec<RowId> = (0..n as u32).filter(|i| i % 3 == 0).map(RowId).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let inputs: Vec<Box<dyn IdStream>> = vec![
                    Box::new(VecIdStream::new(a.clone())),
                    Box::new(VecIdStream::new(b_list.clone())),
                ];
                let mut m = MergeIntersect::new(inputs, SimClock::new(), 200);
                collect_ids(&mut m).expect("merge")
            })
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("op_external_sort");
    g.sample_size(10);
    for &(n, ram) in &[(5_000usize, 64 * 1024usize), (50_000, 8 * 1024)] {
        let label = if n * 4 <= ram { "in_ram" } else { "spilling" };
        g.bench_with_input(BenchmarkId::new(label, n), &(n, ram), |bench, &(n, ram)| {
            bench.iter(|| {
                let (volume, scope) = scratch_volume();
                let mut s: ExternalSorter<u32> =
                    ExternalSorter::new(&volume, &scope, ram).expect("sorter");
                for i in (0..n as u32).rev() {
                    s.push(i.wrapping_mul(2_654_435_761)).expect("push");
                }
                let mut out = s.finish().expect("finish");
                let mut count = 0u64;
                while out.next_rec().expect("rec").is_some() {
                    count += 1;
                }
                count
            })
        });
    }
    g.finish();
}

fn bench_device_ops(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("op_device");
    g.sample_size(20);
    // A hidden-only point query: climbing probe + SKT + hidden project.
    g.bench_function("climb_skt_project", |b| {
        b.iter(|| {
            f.db.query(
                "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre, Visit Vis \
                        WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID",
            )
            .expect("query")
        })
    });
    // Pure hidden scan fallback (no index on FK columns).
    g.bench_function("hidden_scan", |b| {
        b.iter(|| {
            f.db.query("SELECT Pat.PatID FROM Patient Pat WHERE Pat.BodyMassIndex = 30")
                .expect("query")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_merge, bench_sort, bench_device_ops);
criterion_main!(benches);
