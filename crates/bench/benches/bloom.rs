//! EXP-B2 — Bloom filter micro-costs: build and probe throughput at the
//! sizes Post-filtering uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghostdb_bloom::{BloomFilter, CountingBloom};
use ghostdb_ram::{RamBudget, RamScope};

fn bench_bloom(c: &mut Criterion) {
    let ram = RamBudget::new(1 << 20);
    let scope = RamScope::new(&ram);

    let mut g = c.benchmark_group("bloom");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| {
                let mut f = BloomFilter::for_capacity(&scope, n, 0.01).expect("bloom");
                for i in 0..n as u64 {
                    f.insert(i);
                }
                f
            })
        });
        let mut filled = BloomFilter::for_capacity(&scope, n, 0.01).expect("bloom");
        for i in 0..n as u64 {
            filled.insert(i);
        }
        g.bench_with_input(BenchmarkId::new("probe_hit", n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n as u64;
                filled.contains(i)
            })
        });
        g.bench_with_input(BenchmarkId::new("probe_miss", n), &n, |b, &n| {
            let mut i = n as u64;
            b.iter(|| {
                i += 1;
                filled.contains(i)
            })
        });
    }
    // The counting variant's insert/remove overhead (ablation).
    g.bench_function("counting_insert_remove_10k", |b| {
        b.iter(|| {
            let mut f = CountingBloom::with_params(&scope, 16 * 8192, 5).expect("cbf");
            for i in 0..10_000u64 {
                f.insert(i);
            }
            for i in 0..5_000u64 {
                f.remove(i);
            }
            f
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bloom);
criterion_main!(benches);
