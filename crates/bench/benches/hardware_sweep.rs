//! EXP-S3 — hardware sensitivity: the same query on devices whose flash
//! write/read ratio spans the paper's 3–10× envelope, and on the two USB
//! generations §3 discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghostdb_bench::medical_fixture_with;
use ghostdb_types::{BusConfig, DeviceConfig};
use ghostdb_workload::selectivity_query;

const SCALE: usize = 20_000;

fn bench_hardware(c: &mut Criterion) {
    let mut g = c.benchmark_group("hardware");
    g.sample_size(10);
    for ratio in [3.0f64, 10.0] {
        for (link, bus) in [
            ("usb12M", BusConfig::usb_full_speed()),
            ("usb480M", BusConfig::usb_high_speed()),
        ] {
            let mut config = DeviceConfig::default_2007().with_bus(bus);
            config.flash = config.flash.with_write_read_ratio(ratio);
            let f = medical_fixture_with(SCALE, config).expect("fixture");
            let sql = selectivity_query(f.cfg.date_start, f.cfg.date_span_days, 0.5);
            let spec = f.db.bind(&sql).expect("bind");
            let p1 = f.db.plan_pre(&spec);
            let id = format!("ratio{ratio}_{link}");
            g.bench_with_input(BenchmarkId::new("pre_filtering", &id), &sql, |b, sql| {
                b.iter(|| f.db.query_with_plan(sql, &p1).expect("run"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_hardware);
criterion_main!(benches);
