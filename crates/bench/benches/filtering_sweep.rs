//! EXP-D2A — the Pre/Post crossover: both strategies at three visible
//! selectivities (selective, crossover region, unselective).

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghostdb_bench::{medical_fixture, Fixture};
use ghostdb_workload::selectivity_query;

const SCALE: usize = 20_000;

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| medical_fixture(SCALE).expect("fixture"))
}

fn bench_sweep(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("filtering_sweep");
    g.sample_size(10);
    for frac in [0.01f64, 0.10, 0.75] {
        let sql = selectivity_query(f.cfg.date_start, f.cfg.date_span_days, frac);
        let spec = f.db.bind(&sql).expect("bind");
        let p1 = f.db.plan_pre(&spec);
        let p2 = f.db.plan_post(&spec);
        g.bench_with_input(BenchmarkId::new("pre", frac), &sql, |b, sql| {
            b.iter(|| f.db.query_with_plan(sql, &p1).expect("run"))
        });
        g.bench_with_input(BenchmarkId::new("post", frac), &sql, |b, sql| {
            b.iter(|| f.db.query_with_plan(sql, &p2).expect("run"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
