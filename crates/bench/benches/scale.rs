//! EXP-SCALE — the paper query at growing root cardinalities.
//!
//! "How to compute regular SQL queries over arbitrarily large tables
//! under such hardware constraints" (§4): time must track matching
//! volume, not raw cardinality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghostdb_bench::medical_fixture;
use ghostdb_workload::paper_query;

fn bench_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale");
    g.sample_size(10);
    for &n in &[5_000usize, 20_000, 80_000] {
        let f = medical_fixture(n).expect("fixture");
        let sql = paper_query(f.mid_date());
        let best = f.db.plans(&sql).expect("plans").remove(0).plan;
        g.bench_with_input(BenchmarkId::new("paper_query_best", n), &n, |b, _| {
            b.iter(|| f.db.query_with_plan(&sql, &best).expect("run"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
