//! EXP-F6 — Figure 6: the §4 example query under P1 (pre-filtering),
//! P2 (post-filtering, Figure 5) and the optimizer's best plan.
//!
//! Criterion measures host wall time of the full simulation; the
//! deterministic *simulated* times (the paper's metric) are reported by
//! `figures --exp f6` and written as CSV under `results/`.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use ghostdb_bench::{medical_fixture, Fixture};
use ghostdb_workload::paper_query;

const SCALE: usize = 20_000;

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| medical_fixture(SCALE).expect("fixture"))
}

fn bench_f6(c: &mut Criterion) {
    let f = fixture();
    let sql = paper_query(f.mid_date());
    let spec = f.db.bind(&sql).expect("bind");
    let p1 = f.db.plan_pre(&spec);
    let p2 = f.db.plan_post(&spec);
    let best = f.db.plans(&sql).expect("plans").remove(0).plan;

    let mut g = c.benchmark_group("f6_paper_query");
    g.sample_size(10);
    g.bench_function("P1_pre_filtering", |b| {
        b.iter(|| f.db.query_with_plan(&sql, &p1).expect("run"))
    });
    g.bench_function("P2_post_filtering", |b| {
        b.iter(|| f.db.query_with_plan(&sql, &p2).expect("run"))
    });
    g.bench_function("optimizer_best", |b| {
        b.iter(|| f.db.query_with_plan(&sql, &best).expect("run"))
    });
    g.bench_function("optimize_only", |b| {
        b.iter(|| f.db.plans(&sql).expect("plans"))
    });
    g.finish();
}

criterion_group!(benches, bench_f6);
criterion_main!(benches);
