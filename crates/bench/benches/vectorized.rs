//! EXP-V1 — scalar vs blocked pipeline micro-costs: the galloping
//! block merge against the seed's id-at-a-time merge, and the
//! cache-line-blocked Bloom filter against the classic bit array, at
//! 10^4–10^6 ids.
//!
//! The `bench_vectorized` binary measures the same payloads
//! (`ghostdb_bench::vectorized`) and records the speedups in
//! `BENCH_PR1.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghostdb_bench::vectorized::{
    bloom_blocked_filter, bloom_keys, bloom_scalar_filter, bloom_scope, merge_blocked,
    merge_scalar, overlapping_lists, probe_blocked, probe_scalar,
};

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("vectorized_merge");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let (a, b) = overlapping_lists(n, 0.01);
        g.bench_with_input(BenchmarkId::new("scalar", n), &n, |bench, _| {
            bench.iter(|| merge_scalar(&a, &b).expect("merge"))
        });
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| merge_blocked(&a, &b).expect("merge"))
        });
    }
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("vectorized_bloom_probe");
    let scope = bloom_scope();
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let (members, probes) = bloom_keys(n);
        let scalar_f = bloom_scalar_filter(&members, &scope).expect("bloom");
        let blocked_f = bloom_blocked_filter(&members, &scope).expect("bloom");
        let mut hits = Vec::new();
        g.bench_with_input(BenchmarkId::new("scalar", n), &n, |bench, _| {
            bench.iter(|| probe_scalar(&scalar_f, &probes))
        });
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| probe_blocked(&blocked_f, &probes, &mut hits))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merge, bench_bloom);
criterion_main!(benches);
