//! Dying-flash acceptance properties: with bit-rot and grown-bad
//! faults armed — up to the documented single-bit-per-page correction
//! budget and `spare_blocks` retirement budget — the engine answers
//! queries exactly like a fresh load of the same rows and survives a
//! full seal → unplug → mount cycle. Past either budget it fails with
//! a clean diagnostic, never silent corruption.

mod common;

use ghostdb::GhostDb;
use ghostdb_flash::PageAddr;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, TableId, Value};
use proptest::prelude::*;

const DDL: &str = "\
    CREATE TABLE Child (
      cid INTEGER PRIMARY KEY,
      vis INTEGER,
      hid INTEGER HIDDEN,
      tag CHAR(12) HIDDEN);
    CREATE TABLE Root (
      rid INTEGER PRIMARY KEY,
      amt INTEGER HIDDEN,
      cid REFERENCES Child(cid) HIDDEN);";

fn config() -> DeviceConfig {
    let mut config = DeviceConfig::default_2007();
    // Small geometry so faults land often relative to the data volume.
    config.flash.page_size = 256;
    config.flash.pages_per_block = 8;
    config.flash.num_blocks = 512;
    config.flash.meta_slot_blocks = 4;
    config.flash.wal_blocks = 2;
    config.delta_flush_rows = 0;
    config
}

fn child_row(i: i64, next: &mut impl FnMut() -> i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Int(next() % 50),
        Value::Int(next() % 50),
        Value::Text(format!("tag-{}", next().rem_euclid(8))),
    ]
}

fn root_row(i: i64, children: i64, next: &mut impl FnMut() -> i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Int(next() % 50),
        Value::Int(next().rem_euclid(children)),
    ]
}

fn lcg(seed: u64) -> impl FnMut() -> i64 {
    let mut state = seed | 1;
    move || -> i64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Query ≡ fresh-load equivalence and seal → unplug → mount, with
    /// retention flips, read disturb, and grown-bad program/erase
    /// failures armed for the whole run.
    #[test]
    fn faulty_flash_within_budget_is_invisible(
        seed in any::<u64>(),
        base_children in 4usize..16,
        base_roots in 6usize..24,
        ins_children in 1usize..6,
        flip_ppm in 0u32..15_000,
        fail_ppm in 0u32..2_000,
        hidden_cut in 0i64..50,
        tag_pick in 0usize..8,
    ) {
        let mut next = lcg(seed);
        let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
        let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
        let mut base = Dataset::empty(&schema);
        for i in 0..base_children as i64 {
            base.push_row(TableId(0), child_row(i, &mut next)).unwrap();
        }
        for i in 0..base_roots as i64 {
            base.push_row(TableId(1), root_row(i, base_children as i64, &mut next)).unwrap();
        }
        let mut child_batch = Vec::new();
        for i in 0..ins_children as i64 {
            child_batch.push(child_row(base_children as i64 + i, &mut next));
        }

        // The device under test: faults armed right after the load.
        let mut db = GhostDb::create(DDL, config(), &base).unwrap();
        let nand = db.nand().clone();
        nand.arm_bit_rot(seed ^ 0x1, flip_ppm as f64 / 1e6, 97);
        nand.arm_program_failures(seed ^ 0x2, fail_ppm as f64 / 1e6);
        nand.arm_erase_failures(seed ^ 0x3, fail_ppm as f64 / 1e6);
        db.insert_rows(TableId(0), child_batch.clone()).unwrap();
        db.flush_deltas().unwrap();

        // The oracle: the same rows on pristine flash.
        let mut full = base.clone();
        for r in &child_batch {
            full.push_row(TableId(0), r.clone()).unwrap();
        }
        let fresh = GhostDb::create(DDL, config(), &full).unwrap();

        let queries = [
            format!(
                "SELECT Root.rid, Child.tag FROM Root, Child \
                 WHERE Child.tag = 'tag-{tag_pick}' AND Root.cid = Child.cid"
            ),
            format!(
                "SELECT Root.rid, Child.hid FROM Root, Child \
                 WHERE Child.hid >= {hidden_cut} AND Child.vis < 40 \
                   AND Root.cid = Child.cid"
            ),
            "SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-3'".to_string(),
            format!("SELECT Root.rid FROM Root WHERE Root.amt <= {hidden_cut}"),
        ];
        for sql in &queries {
            let expect = fresh.query(sql).unwrap().rows.rows;
            prop_assert_eq!(
                &db.query(sql).unwrap().rows.rows, &expect,
                "pre-seal divergence under faults: {}", sql
            );
        }

        // Seal → unplug → mount, faults still armed throughout.
        db.seal().unwrap();
        let nand2 = db.nand().clone();
        drop(db);
        let db = GhostDb::mount(nand2, config()).unwrap();
        for sql in &queries {
            let expect = fresh.query(sql).unwrap().rows.rows;
            prop_assert_eq!(
                &db.query(sql).unwrap().rows.rows, &expect,
                "post-mount divergence under faults: {}", sql
            );
        }

        // Within budget nothing may be lost, and the budgets hold.
        let rel = db.volume().reliability();
        prop_assert_eq!(rel.uncorrectable, 0, "in-budget rot must never be fatal: {:?}", rel);
        prop_assert!(
            rel.retired_blocks <= rel.spare_blocks,
            "retirement exceeded the spare budget: {:?}", rel
        );
        nand.disarm_bit_rot();
        nand.disarm_block_failures();
    }
}

/// PR 10: the page cache mirrors only *clean* codewords, so a rotting
/// device with the cache on must keep answering exactly like the same
/// device with the cache off — repeated rounds included, which is where
/// a mirror that cached a correctable-but-dirty page (or masked a flip
/// it should have surfaced to the scrubber) would diverge.
#[test]
fn cache_on_and_cache_off_agree_under_armed_rot() {
    let mut next = lcg(42);
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let mut base = Dataset::empty(&schema);
    for i in 0..24i64 {
        base.push_row(TableId(0), child_row(i, &mut next)).unwrap();
    }
    for i in 0..40i64 {
        base.push_row(TableId(1), root_row(i, 24, &mut next))
            .unwrap();
    }

    let mut cfg_off = config();
    cfg_off.flash.page_cache_pages = 0;
    let db_on = GhostDb::create(DDL, config(), &base).unwrap();
    let db_off = GhostDb::create(DDL, cfg_off, &base).unwrap();
    assert!(db_on.volume().page_cache_stats().capacity_pages > 0);
    assert_eq!(db_off.volume().page_cache_stats().capacity_pages, 0);

    // Same rot stream on both parts (identical deterministic layouts).
    db_on.nand().arm_bit_rot(9, 8_000.0 / 1e6, 97);
    db_off.nand().arm_bit_rot(9, 8_000.0 / 1e6, 97);

    let queries = [
        "SELECT Root.rid, Child.tag FROM Root, Child \
         WHERE Child.tag = 'tag-3' AND Root.cid = Child.cid",
        "SELECT Root.rid, Child.hid FROM Root, Child \
         WHERE Child.hid >= 20 AND Child.vis < 40 AND Root.cid = Child.cid",
        "SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-3'",
        "SELECT Root.rid FROM Root WHERE Root.amt <= 25",
    ];
    for round in 0..6 {
        for sql in &queries {
            assert_eq!(
                db_on.query(sql).unwrap().rows.rows,
                db_off.query(sql).unwrap().rows.rows,
                "round {round} divergence under rot: {sql}"
            );
        }
    }
    let stats = db_on.volume().page_cache_stats();
    assert!(stats.hits > 0, "the repeat rounds must exercise the mirror");
    assert_eq!(db_on.volume().reliability().uncorrectable, 0);
    assert_eq!(db_off.volume().reliability().uncorrectable, 0);
    db_on.nand().disarm_bit_rot();
    db_off.nand().disarm_bit_rot();
}

/// Past the single-bit budget the engine reports a clean corrupt error
/// — it must never serve wrong bytes.
#[test]
fn past_budget_rot_is_a_clean_corrupt_error() {
    let mut next = lcg(7);
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let mut base = Dataset::empty(&schema);
    for i in 0..32i64 {
        base.push_row(TableId(0), child_row(i, &mut next)).unwrap();
    }
    for i in 0..12i64 {
        base.push_row(TableId(1), root_row(i, 32, &mut next))
            .unwrap();
    }
    let db = GhostDb::create(DDL, config(), &base).unwrap();
    let nand = db.nand().clone();
    // Two flips per mapped page: every hidden-column page is past the
    // correction budget.
    let ps = nand.config().page_size as u32;
    for phys in db.volume().l2p_snapshot() {
        if phys != u32::MAX {
            nand.corrupt_page(PageAddr(phys), 11).unwrap();
            nand.corrupt_page(PageAddr(phys), ps * 8 - 17).unwrap();
        }
    }
    let err = db
        .query("SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-0'")
        .expect_err("doubly-rotted pages must not answer");
    assert!(
        err.to_string().contains("uncorrectable"),
        "want the uncorrectable diagnostic, got: {err}"
    );
}

/// Past the spare-block budget the engine reports the part worn out —
/// a clean, actionable diagnostic instead of an allocator loop.
#[test]
fn exhausted_spares_are_a_clean_wearout_error() {
    let mut next = lcg(11);
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let mut base = Dataset::empty(&schema);
    for i in 0..24i64 {
        base.push_row(TableId(0), child_row(i, &mut next)).unwrap();
    }
    for i in 0..8i64 {
        base.push_row(TableId(1), root_row(i, 24, &mut next))
            .unwrap();
    }
    let mut cfg = config();
    cfg.flash.spare_blocks = 2;
    let mut db = GhostDb::create(DDL, cfg, &base).unwrap();
    let nand = db.nand().clone();
    nand.arm_program_failures(3, 1.0);
    let mut batch = Vec::new();
    for i in 0..4i64 {
        batch.push(child_row(24 + i, &mut next));
    }
    db.insert_rows(TableId(0), batch).unwrap();
    let err = db
        .flush_deltas()
        .expect_err("every program fails; the part must wear out");
    assert!(
        err.to_string().contains("flash part worn out"),
        "want the wear-out diagnostic, got: {err}"
    );
    nand.disarm_block_failures();
}
