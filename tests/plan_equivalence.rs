//! Every enumerated plan must return exactly the same rows — the
//! property that makes the demo's plan game playable (only *speed*
//! differs) and a strong whole-engine invariant, exercised here both on
//! fixed queries and property-test style on random predicate mixes.

mod common;

use common::{assert_matches_reference, medical_db_with_data};
use ghostdb_types::Date;
use proptest::prelude::*;

#[test]
fn all_plans_agree_on_the_paper_query() {
    let (db, cfg, data) = medical_db_with_data(3_000);
    let cutoff = Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32);
    let sql = ghostdb_workload::paper_query(cutoff);
    let plans = db.plans(&sql).unwrap();
    assert!(
        plans.len() >= 10,
        "the paper promises a large panel of plans; got {}",
        plans.len()
    );
    let mut first = None;
    for cp in &plans {
        let out = db.query_with_plan(&sql, &cp.plan).unwrap();
        match &first {
            None => {
                assert_matches_reference(&db, &data, &sql, &out);
                first = Some(out.rows.rows);
            }
            Some(expect) => assert_eq!(&out.rows.rows, expect, "plan {} disagrees", cp.plan.label),
        }
    }
}

#[test]
fn all_plans_agree_across_selectivities() {
    let (db, cfg, _data) = medical_db_with_data(2_000);
    for frac in [0.001, 0.05, 0.5, 0.95] {
        let sql = ghostdb_workload::selectivity_query(cfg.date_start, cfg.date_span_days, frac);
        let plans = db.plans(&sql).unwrap();
        let mut first: Option<usize> = None;
        for cp in plans.iter() {
            let out = db.query_with_plan(&sql, &cp.plan).unwrap();
            match first {
                None => first = Some(out.rows.len()),
                Some(n) => assert_eq!(out.rows.len(), n, "frac {frac}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs every plan of a query on a real db
        .. ProptestConfig::default()
    })]

    /// Random conjunctive queries over the medical schema: every
    /// enumerated plan agrees with the naive reference engine.
    #[test]
    fn random_queries_all_plans_match_reference(
        quantity in 1i64..10,
        q_op in 0usize..3,
        date_frac in 0.0f64..1.0,
        purpose_sel in prop::sample::select(vec!["Sclerosis", "Checkup", "Diabetes", "Nothing"]),
        use_type in any::<bool>(),
    ) {
        // One shared database per process run would be nicer, but a
        // small one is cheap enough and keeps cases independent.
        let (db, cfg, data) = medical_db_with_data(800);
        let ops = ["=", ">", "<="];
        let cutoff = Date(cfg.date_start.0 + ((cfg.date_span_days as f64) * date_frac) as i32);
        let mut sql = format!(
            "SELECT Pre.PreID, Vis.Purpose, Med.Name \
             FROM Prescription Pre, Visit Vis, Medicine Med \
             WHERE Pre.Quantity {} {} \
               AND Vis.Date > '{}' \
               AND Vis.Purpose = '{}' ",
            ops[q_op], quantity, cutoff, purpose_sel,
        );
        if use_type {
            sql.push_str("AND Med.Type = 'Antibiotic' ");
        }
        sql.push_str("AND Vis.VisID = Pre.VisID AND Med.MedID = Pre.MedID");

        let plans = db.plans(&sql).unwrap();
        prop_assert!(!plans.is_empty());
        let out = db.query_with_plan(&sql, &plans[0].plan).unwrap();
        assert_matches_reference(&db, &data, &sql, &out);
        // Sample a few other plans (first, last, middle) for agreement.
        let picks = [plans.len() / 2, plans.len() - 1];
        for &i in &picks {
            let other = db.query_with_plan(&sql, &plans[i].plan).unwrap();
            prop_assert_eq!(&other.rows.rows, &out.rows.rows, "plan {} disagrees", &plans[i].plan.label);
        }
    }
}
