//! Crash-injection recovery: cut power at **every** program/erase
//! boundary of an insert + flush workload and prove each mount recovers
//! a consistent, batch-atomic state.
//!
//! The harness arms the NAND's power-cut hook to fail after N
//! state-changing operations, for every N from 0 up to the length of
//! the uninterrupted run — first with clean cuts, then with torn final
//! pages (half the interrupted page commits) and torn erases. After
//! each cut the key is "replugged" (`disarm_power_cut`) and mounted;
//! the recovered state must equal a fresh load of the base dataset plus
//! some *prefix of whole batches* — never a partial batch, never a
//! corrupted structure.

use ghostdb::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, TableId, Value};

const DDL: &str = "\
CREATE TABLE Doctor ( \
  DocID INTEGER PRIMARY KEY, \
  Name CHAR(40), \
  Country CHAR(20)); \
CREATE TABLE Visit ( \
  VisID INTEGER PRIMARY KEY, \
  Severity INTEGER, \
  Purpose CHAR(100) HIDDEN, \
  DocID REFERENCES Doctor(DocID) HIDDEN);";

fn config() -> DeviceConfig {
    let mut config = DeviceConfig::default_2007();
    // Small geometry so the op sweep stays cheap; 2-block metadata
    // slots and WAL keep the reserved region tight.
    config.flash.page_size = 256;
    config.flash.pages_per_block = 8;
    config.flash.num_blocks = 512;
    config.flash.meta_slot_blocks = 4;
    config.flash.wal_blocks = 2;
    // The workload controls its flush point explicitly.
    config.delta_flush_rows = 0;
    config
}

fn doctor(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Text(format!("doc{i}")),
        Value::Text(if i % 2 == 0 { "France" } else { "Spain" }.into()),
    ]
}

fn visit(i: i64, doctors: i64) -> Vec<Value> {
    let purposes = ["Checkup", "Sclerosis", "Migraine"];
    vec![
        Value::Int(i),
        Value::Int(i % 8),
        Value::Text(purposes[(i % 3) as usize].into()),
        Value::Int(i % doctors),
    ]
}

const BASE_DOCTORS: i64 = 4;
const BASE_VISITS: i64 = 48;

fn base_dataset(schema: &ghostdb_catalog::Schema) -> Dataset {
    let mut data = Dataset::empty(schema);
    for i in 0..BASE_DOCTORS {
        data.push_row(TableId(0), doctor(i)).unwrap();
    }
    for i in 0..BASE_VISITS {
        data.push_row(TableId(1), visit(i, BASE_DOCTORS)).unwrap();
    }
    data
}

/// The workload's batches, in commit order: one doctor, then visit
/// pairs (some carrying strings outside the base dictionary by way of
/// "Migraine" being new to early prefixes — the delta-dictionary path).
fn batches() -> Vec<(TableId, Vec<Vec<Value>>)> {
    let v = BASE_VISITS;
    let d = BASE_DOCTORS + 1;
    vec![
        (TableId(0), vec![doctor(4)]),
        (TableId(1), vec![visit(v, d), visit(v + 1, d)]),
        (TableId(1), vec![visit(v + 2, d), visit(v + 3, d)]),
        // The flush (a full merge + re-seal) happens after batch 2.
        (TableId(1), vec![visit(v + 4, d), visit(v + 5, d)]),
    ]
}

/// Apply the insert + flush workload; any error (the injected cut)
/// aborts it exactly where a real power loss would.
fn run_workload(db: &mut GhostDb) -> ghostdb_types::Result<()> {
    let batches = batches();
    for (k, (table, rows)) in batches.iter().enumerate() {
        db.insert_rows(*table, rows.clone())?;
        if k == 2 {
            db.flush_deltas()?;
        }
    }
    Ok(())
}

fn build_sealed() -> GhostDb {
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let data = base_dataset(&schema);
    let mut db = GhostDb::create(DDL, config(), &data).unwrap();
    db.seal().unwrap();
    db
}

const PROBES: &[&str] = &[
    "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
     WHERE Vis.Purpose = 'Sclerosis' AND Vis.DocID = Doc.DocID",
    "SELECT Vis.VisID, Vis.Purpose FROM Visit Vis WHERE Vis.Severity >= 3",
    "SELECT Doc.DocID FROM Doctor Doc WHERE Doc.Country = 'Spain'",
];

/// Expected probe results after the first `k` batches committed, from a
/// fresh load of base + prefix.
fn reference_rows(k: usize) -> Vec<Vec<Vec<Value>>> {
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let mut data = base_dataset(&schema);
    for (table, rows) in batches().into_iter().take(k) {
        for r in rows {
            data.push_row(table, r).unwrap();
        }
    }
    let db = GhostDb::create(DDL, config(), &data).unwrap();
    PROBES
        .iter()
        .map(|sql| db.query(sql).unwrap().rows.rows)
        .collect()
}

/// Row counts per table after `k` batches (batch-atomicity check).
fn prefix_counts(k: usize) -> (u64, u64) {
    let mut doctors = BASE_DOCTORS as u64;
    let mut visits = BASE_VISITS as u64;
    for (table, rows) in batches().into_iter().take(k) {
        if table == TableId(0) {
            doctors += rows.len() as u64;
        } else {
            visits += rows.len() as u64;
        }
    }
    (doctors, visits)
}

/// Ops (programs + erases) the uninterrupted post-seal workload issues.
fn workload_ops() -> u64 {
    let mut db = build_sealed();
    let before = db.nand().stats();
    run_workload(&mut db).expect("uninterrupted run");
    let d = db.nand().stats().since(&before);
    d.page_programs + d.block_erases
}

fn sweep(torn: bool) {
    let total = workload_ops();
    assert!(total > 20, "workload too small to be interesting: {total}");
    let references: Vec<_> = (0..=batches().len()).map(reference_rows).collect();
    let mut seen_prefixes = std::collections::HashSet::new();
    for n in 0..total {
        let mut db = build_sealed();
        let nand = db.nand().clone();
        nand.arm_power_cut(n, torn);
        let res = run_workload(&mut db);
        assert!(res.is_err(), "cut at op {n} did not surface");
        assert!(nand.power_cut_tripped());
        drop(db);

        // Power returns; the key is replugged and mounted.
        nand.disarm_power_cut();
        let db = GhostDb::mount(nand, config())
            .unwrap_or_else(|e| panic!("mount after cut at op {n} (torn={torn}): {e}"));

        // Batch atomicity: the recovered cardinalities must match some
        // whole-batch prefix...
        let doctors = db.stats().rows(TableId(0));
        let visits = db.stats().rows(TableId(1));
        let k = (0..=batches().len())
            .find(|&k| prefix_counts(k) == (doctors, visits))
            .unwrap_or_else(|| {
                panic!("cut at op {n} (torn={torn}): ({doctors}, {visits}) is no batch prefix")
            });
        seen_prefixes.insert(k);
        // ...and every probe must answer exactly like a fresh load of
        // that prefix.
        for (sql, expect) in PROBES.iter().zip(&references[k]) {
            let got = db.query(sql).unwrap().rows.rows;
            assert_eq!(&got, expect, "cut at op {n} (torn={torn}): {sql}");
        }
    }
    // The sweep must actually exercise intermediate prefixes, not just
    // all-or-nothing.
    assert!(
        seen_prefixes.len() >= 3,
        "sweep saw only prefixes {seen_prefixes:?}"
    );
}

#[test]
fn power_cut_at_every_boundary_clean() {
    sweep(false);
}

#[test]
fn power_cut_at_every_boundary_torn() {
    sweep(true);
}

/// Sanity: the uninterrupted workload, remounted, equals the full
/// prefix.
#[test]
fn uninterrupted_run_remounts_complete() {
    let mut db = build_sealed();
    run_workload(&mut db).unwrap();
    let nand = db.nand().clone();
    drop(db);
    let db = GhostDb::mount(nand, config()).unwrap();
    let all = batches().len();
    assert_eq!(
        (db.stats().rows(TableId(0)), db.stats().rows(TableId(1))),
        prefix_counts(all)
    );
    for (sql, expect) in PROBES.iter().zip(&reference_rows(all)) {
        assert_eq!(&db.query(sql).unwrap().rows.rows, expect);
    }
}
