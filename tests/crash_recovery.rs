//! Crash-injection recovery: cut power at **every** program/erase
//! boundary of a mixed insert + delete + update + flush workload and
//! prove each mount recovers a consistent, batch-atomic state.
//!
//! The harness arms the NAND's power-cut hook to fail after N
//! state-changing operations, for every N from 0 up to the length of
//! the uninterrupted run — first with clean cuts, then with torn final
//! pages (half the interrupted page commits) and torn erases. After
//! each cut the key is "replugged" (`disarm_power_cut`) and mounted;
//! the recovered state must equal a fresh load of the base dataset plus
//! some *prefix of whole batches* — all three WAL record kinds replay
//! atomically; never a partial batch, never a corrupted structure. The
//! mid-workload flush runs the full compaction (dead rows dropped,
//! survivors renumbered, re-seal), so cuts land inside that too.

use ghostdb::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{ColumnId, DeviceConfig, RowId, TableId, Value};

const DDL: &str = "\
CREATE TABLE Doctor ( \
  DocID INTEGER PRIMARY KEY, \
  Name CHAR(40), \
  Country CHAR(20)); \
CREATE TABLE Visit ( \
  VisID INTEGER PRIMARY KEY, \
  Severity INTEGER, \
  Purpose CHAR(100) HIDDEN, \
  DocID REFERENCES Doctor(DocID) HIDDEN);";

fn config() -> DeviceConfig {
    let mut config = DeviceConfig::default_2007();
    // Small geometry so the op sweep stays cheap; 2-block metadata
    // slots and WAL keep the reserved region tight.
    config.flash.page_size = 256;
    config.flash.pages_per_block = 8;
    config.flash.num_blocks = 512;
    config.flash.meta_slot_blocks = 4;
    config.flash.wal_blocks = 2;
    // The workload controls its flush point explicitly.
    config.delta_flush_rows = 0;
    config
}

fn doctor(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Text(format!("doc{i}")),
        Value::Text(if i % 2 == 0 { "France" } else { "Spain" }.into()),
    ]
}

fn visit(i: i64, doctors: i64) -> Vec<Value> {
    let purposes = ["Checkup", "Sclerosis", "Migraine"];
    vec![
        Value::Int(i),
        Value::Int(i % 8),
        Value::Text(purposes[(i % 3) as usize].into()),
        Value::Int(i % doctors),
    ]
}

const BASE_DOCTORS: i64 = 4;
const BASE_VISITS: i64 = 48;

fn base_dataset(schema: &ghostdb_catalog::Schema) -> Dataset {
    let mut data = Dataset::empty(schema);
    for i in 0..BASE_DOCTORS {
        data.push_row(TableId(0), doctor(i)).unwrap();
    }
    for i in 0..BASE_VISITS {
        data.push_row(TableId(1), visit(i, BASE_DOCTORS)).unwrap();
    }
    data
}

/// One committed workload step (= one WAL record).
#[derive(Clone)]
enum Op {
    Insert(TableId, Vec<Vec<Value>>),
    /// Logical row ids.
    Delete(TableId, Vec<u32>),
    /// Logical row ids + assignments.
    Update(TableId, Vec<u32>, Vec<(ColumnId, Value)>),
}

/// The workload's ops, in commit order: inserts (some carrying strings
/// outside the base dictionary), a delete batch and an update batch
/// before the mid-workload flush (so the compaction renumbers under
/// them), and another delete + update after it (so they replay from the
/// WAL on top of the re-sealed image).
fn ops() -> Vec<Op> {
    let v = BASE_VISITS;
    let d = BASE_DOCTORS + 1;
    vec![
        Op::Insert(TableId(0), vec![doctor(4)]),
        Op::Insert(TableId(1), vec![visit(v, d), visit(v + 1, d)]),
        // Three visits die (logical ids 3, 10, 20).
        Op::Delete(TableId(1), vec![3, 10, 20]),
        Op::Update(
            TableId(1),
            vec![5, 17],
            vec![
                (ColumnId(2), Value::Text("Recovered".into())),
                (ColumnId(1), Value::Int(7)),
            ],
        ),
        // The flush (full compaction + re-seal) happens after op 3.
        Op::Insert(TableId(1), vec![visit(v - 3 + 2, d), visit(v - 3 + 3, d)]),
        Op::Delete(TableId(1), vec![0]),
        Op::Update(TableId(1), vec![8], vec![(ColumnId(1), Value::Int(7))]),
    ]
}

/// Index of the op after which the workload flushes.
const FLUSH_AFTER: usize = 3;

/// Apply the mixed workload; any error (the injected cut) aborts it
/// exactly where a real power loss would.
fn run_workload(db: &mut GhostDb) -> ghostdb_types::Result<()> {
    for (k, op) in ops().into_iter().enumerate() {
        match op {
            Op::Insert(table, rows) => {
                db.insert_rows(table, rows)?;
            }
            Op::Delete(table, rows) => {
                db.delete_rows(table, rows.into_iter().map(RowId).collect())?;
            }
            Op::Update(table, rows, assignments) => {
                db.update_rows(table, rows.into_iter().map(RowId).collect(), assignments)?;
            }
        }
        if k == FLUSH_AFTER {
            db.flush_deltas()?;
        }
    }
    Ok(())
}

fn build_sealed() -> GhostDb {
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let data = base_dataset(&schema);
    let mut db = GhostDb::create(DDL, config(), &data).unwrap();
    db.seal().unwrap();
    db
}

const PROBES: &[&str] = &[
    "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
     WHERE Vis.Purpose = 'Sclerosis' AND Vis.DocID = Doc.DocID",
    "SELECT Vis.VisID, Vis.Purpose FROM Visit Vis WHERE Vis.Severity >= 3",
    "SELECT Doc.DocID FROM Doctor Doc WHERE Doc.Country = 'Spain'",
];

/// Host-side mirror after the first `k` ops, with `Vec::remove`
/// semantics — rows are stored without their primary key, which is the
/// dense position. Only visits are mutated by the workload, and
/// doctors are never deleted, so foreign keys need no renumbering.
fn mirror_after(k: usize) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut docs: Vec<Vec<Value>> = (0..BASE_DOCTORS).map(|i| doctor(i)[1..].to_vec()).collect();
    let mut visits: Vec<Vec<Value>> = (0..BASE_VISITS)
        .map(|i| visit(i, BASE_DOCTORS)[1..].to_vec())
        .collect();
    for op in ops().into_iter().take(k) {
        match op {
            Op::Insert(table, rows) => {
                for r in rows {
                    if table == TableId(0) {
                        docs.push(r[1..].to_vec());
                    } else {
                        visits.push(r[1..].to_vec());
                    }
                }
            }
            Op::Delete(table, ids) => {
                assert_eq!(table, TableId(1), "workload deletes visits only");
                for &i in ids.iter().rev() {
                    visits.remove(i as usize);
                }
            }
            Op::Update(table, ids, assignments) => {
                assert_eq!(table, TableId(1));
                for &i in &ids {
                    for (c, v) in &assignments {
                        visits[i as usize][c.index() - 1] = v.clone();
                    }
                }
            }
        }
    }
    (docs, visits)
}

/// Expected probe results after the first `k` ops committed, from a
/// fresh load of the mirror.
fn reference_rows(k: usize) -> Vec<Vec<Vec<Value>>> {
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let (docs, visits) = mirror_after(k);
    let mut data = Dataset::empty(&schema);
    for (i, r) in docs.into_iter().enumerate() {
        let mut row = vec![Value::Int(i as i64)];
        row.extend(r);
        data.push_row(TableId(0), row).unwrap();
    }
    for (i, r) in visits.into_iter().enumerate() {
        let mut row = vec![Value::Int(i as i64)];
        row.extend(r);
        data.push_row(TableId(1), row).unwrap();
    }
    let db = GhostDb::create(DDL, config(), &data).unwrap();
    PROBES
        .iter()
        .map(|sql| db.query(sql).unwrap().rows.rows)
        .collect()
}

/// Row counts per table after `k` ops (batch-atomicity check).
fn prefix_counts(k: usize) -> (u64, u64) {
    let (docs, visits) = mirror_after(k);
    (docs.len() as u64, visits.len() as u64)
}

/// Ops (programs + erases) the uninterrupted post-seal workload issues.
fn workload_ops() -> u64 {
    let mut db = build_sealed();
    let before = db.nand().stats();
    run_workload(&mut db).expect("uninterrupted run");
    let d = db.nand().stats().since(&before);
    d.page_programs + d.block_erases
}

fn sweep(torn: bool) {
    let total = workload_ops();
    assert!(total > 20, "workload too small to be interesting: {total}");
    let references: Vec<_> = (0..=ops().len()).map(reference_rows).collect();
    let mut seen_prefixes = std::collections::HashSet::new();
    for n in 0..total {
        let mut db = build_sealed();
        let nand = db.nand().clone();
        nand.arm_power_cut(n, torn);
        let res = run_workload(&mut db);
        assert!(res.is_err(), "cut at op {n} did not surface");
        assert!(nand.power_cut_tripped());
        drop(db);

        // Power returns; the key is replugged and mounted.
        nand.disarm_power_cut();
        let db = GhostDb::mount(nand, config())
            .unwrap_or_else(|e| panic!("mount after cut at op {n} (torn={torn}): {e}"));

        // Batch atomicity: the recovered state must be *exactly* some
        // whole-op prefix — cardinalities AND every probe's rows (an
        // update batch leaves counts unchanged, so counts alone cannot
        // identify the prefix).
        let doctors = db.stats().rows(TableId(0));
        let visits = db.stats().rows(TableId(1));
        let probed: Vec<_> = PROBES
            .iter()
            .map(|sql| db.query(sql).unwrap().rows.rows)
            .collect();
        let k = (0..=ops().len())
            .find(|&k| prefix_counts(k) == (doctors, visits) && references[k] == probed)
            .unwrap_or_else(|| {
                panic!(
                    "cut at op {n} (torn={torn}): recovered state \
                     ({doctors} doctors, {visits} visits) matches no whole-op prefix"
                )
            });
        seen_prefixes.insert(k);
    }
    // The sweep must actually exercise intermediate prefixes, not just
    // all-or-nothing.
    assert!(
        seen_prefixes.len() >= 4,
        "sweep saw only prefixes {seen_prefixes:?}"
    );
}

#[test]
fn power_cut_at_every_boundary_clean() {
    sweep(false);
}

#[test]
fn power_cut_at_every_boundary_torn() {
    sweep(true);
}

/// Power cut *and* bit rot in the same run: after a torn cut the key
/// sits unplugged while one bit rots in every seventh programmed page —
/// data, metadata, and WAL pages alike. The mount must still recover a
/// consistent whole-op prefix, repairing single-bit rot as it reads
/// (the torn page itself stays invalid: a flip cannot resurrect it).
#[test]
fn power_cut_plus_rotted_pages_still_recovers() {
    use ghostdb_flash::{PageAddr, PageState};
    let total = workload_ops();
    let references: Vec<_> = (0..=ops().len()).map(reference_rows).collect();
    for n in [1, total / 3, 2 * total / 3, total - 1] {
        let mut db = build_sealed();
        let nand = db.nand().clone();
        nand.arm_power_cut(n, true);
        assert!(run_workload(&mut db).is_err(), "cut at op {n}");
        drop(db);
        nand.disarm_power_cut();

        let cfg = nand.config().clone();
        let pages = cfg.num_blocks * cfg.pages_per_block;
        let mut rotted = 0u32;
        for p in (0..pages).step_by(7) {
            let addr = PageAddr(p as u32);
            if nand.page_state(addr).unwrap() == PageState::Programmed {
                let bit = (p as u32).wrapping_mul(131) % (cfg.page_size as u32 * 8);
                nand.corrupt_page(addr, bit).unwrap();
                rotted += 1;
            }
        }
        assert!(rotted > 0, "nothing was programmed at cut {n}");

        let db = GhostDb::mount(nand, config())
            .unwrap_or_else(|e| panic!("mount after cut at op {n} + {rotted} rotted pages: {e}"));
        let doctors = db.stats().rows(TableId(0));
        let visits = db.stats().rows(TableId(1));
        let probed: Vec<_> = PROBES
            .iter()
            .map(|sql| db.query(sql).unwrap().rows.rows)
            .collect();
        assert!(
            (0..=ops().len())
                .any(|k| prefix_counts(k) == (doctors, visits) && references[k] == probed),
            "cut at op {n} with {rotted} rotted pages: recovered state \
             ({doctors} doctors, {visits} visits) matches no whole-op prefix"
        );
    }
}

/// Sanity: the uninterrupted workload, remounted, equals the full
/// prefix.
#[test]
fn uninterrupted_run_remounts_complete() {
    let mut db = build_sealed();
    run_workload(&mut db).unwrap();
    let nand = db.nand().clone();
    drop(db);
    let db = GhostDb::mount(nand, config()).unwrap();
    let all = ops().len();
    assert_eq!(
        (db.stats().rows(TableId(0)), db.stats().rows(TableId(1))),
        prefix_counts(all)
    );
    for (sql, expect) in PROBES.iter().zip(&reference_rows(all)) {
        assert_eq!(&db.query(sql).unwrap().rows.rows, expect);
    }
}
