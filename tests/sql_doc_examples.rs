//! `docs/SQL.md` is executable: every ` ```sql ` fence in the dialect
//! reference must run green against a database built from the first
//! fence (the document's running DDL example), and every
//! ` ```sql-error ` fence must be rejected. The doc cannot drift from
//! the engine without this test failing.

use ghostdb::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::DeviceConfig;

const DOC: &str = include_str!("../docs/SQL.md");

/// Extract the bodies of fenced code blocks with the exact given info
/// string (e.g. `sql`, `sql-error`), in document order.
fn fences(tag: &str) -> Vec<String> {
    let open = format!("```{tag}");
    let mut out = Vec::new();
    let mut body: Option<String> = None;
    for line in DOC.lines() {
        match &mut body {
            Some(b) => {
                if line.trim_end() == "```" {
                    out.push(body.take().unwrap());
                } else {
                    b.push_str(line);
                    b.push('\n');
                }
            }
            None => {
                if line.trim_end() == open {
                    body = Some(String::new());
                }
            }
        }
    }
    assert!(body.is_none(), "unterminated ```{tag} fence in docs/SQL.md");
    out
}

fn doc_db() -> (GhostDb, Vec<String>) {
    let blocks = fences("sql");
    assert!(
        blocks.len() >= 2,
        "docs/SQL.md needs a DDL fence and at least one statement fence"
    );
    let ddl = &blocks[0];
    let stmts = ghostdb_sql::parse_statements(ddl).expect("doc DDL parses");
    let schema = ghostdb_sql::bind_schema(&stmts).expect("doc DDL binds");
    let data = Dataset::empty(&schema);
    let db = GhostDb::create(ddl, DeviceConfig::default_2007(), &data).expect("doc DDL creates");
    (db, blocks)
}

#[test]
fn every_sql_fence_executes_green() {
    let (mut db, blocks) = doc_db();
    for (i, block) in blocks.iter().enumerate().skip(1) {
        if let Err(e) = db.execute(block) {
            panic!("docs/SQL.md sql fence #{i} failed: {e}\n{block}");
        }
    }
}

#[test]
fn every_sql_error_fence_is_rejected() {
    // Run the document first so the error statements are checked
    // against the same populated state a reader would have.
    let (mut db, blocks) = doc_db();
    for block in blocks.iter().skip(1) {
        db.execute(block).expect("doc sql fence");
    }
    for (i, block) in fences("sql-error").iter().enumerate() {
        match db.execute(block) {
            Ok(_) => panic!("docs/SQL.md sql-error fence #{i} unexpectedly succeeded:\n{block}"),
            Err(e) => {
                // The error must be a rejection the doc describes, not a
                // crash artifact: it should render a message.
                assert!(!e.to_string().is_empty(), "empty error for fence #{i}");
            }
        }
    }
}

#[test]
fn documented_error_messages_are_current() {
    let (mut db, blocks) = doc_db();
    for block in blocks.iter().skip(1) {
        db.execute(block).expect("doc sql fence");
    }
    // (statement fragment, required error substring) — mirrors the table
    // in docs/SQL.md so the prose stays honest about message wording.
    let expect = [
        (
            "SELECT Doc.Name, COUNT(*) FROM Doctor Doc",
            "must appear in GROUP BY",
        ),
        ("SELECT SUM(Doc.Name) FROM Doctor Doc", "INTEGER operand"),
        ("SELECT SUM(*) FROM Visit", "only COUNT(*)"),
        (
            "SELECT Vis.VisID FROM Visit Vis ORDER BY Vis.Severity",
            "not in the SELECT list",
        ),
        ("SELECT Vis.VisID FROM Visit Vis ORDER BY 9", "out of range"),
        (
            "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity > Vis.VisID",
            "only equality joins",
        ),
        ("UPDATE Visit SET VisID = 9", "primary key"),
        ("UPDATE Visit SET DocID = 0", "foreign key"),
    ];
    for (sql, needle) in expect {
        let err = db.execute(sql).expect_err(sql).to_string();
        assert!(
            err.contains(needle),
            "error for {sql:?} no longer matches docs/SQL.md: {err}"
        );
    }
}
