//! Shared helpers for the integration tests.
#![allow(dead_code)] // each test binary uses a different subset

use ghostdb::{GhostDb, QueryOutcome};
use ghostdb_types::{DeviceConfig, Value};
use ghostdb_workload::{generate_medical, MedicalConfig, MEDICAL_DDL};

/// Build a loaded medical GhostDB at the given root cardinality.
pub fn medical_db(prescriptions: usize) -> (GhostDb, MedicalConfig) {
    let cfg = MedicalConfig::scaled(prescriptions);
    let data = generate_medical(&cfg).expect("generate");
    let db = GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data).expect("create db");
    (db, cfg)
}

/// Build a loaded medical GhostDB plus the raw dataset (for reference
/// checks — the dataset never leaves the test harness).
pub fn medical_db_with_data(
    prescriptions: usize,
) -> (GhostDb, MedicalConfig, ghostdb_storage::Dataset) {
    let cfg = MedicalConfig::scaled(prescriptions);
    let data = generate_medical(&cfg).expect("generate");
    let db = GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data).expect("create db");
    (db, cfg, data)
}

/// Compare engine output against the naive reference engine.
pub fn assert_matches_reference(
    db: &GhostDb,
    data: &ghostdb_storage::Dataset,
    sql: &str,
    out: &QueryOutcome,
) {
    let spec = db.bind(sql).expect("bind");
    let base = ghostdb_workload::reference_execute(
        db.schema(),
        db.tree(),
        data,
        spec.anchor,
        &spec.projections,
        &spec.predicates,
    )
    .expect("reference");
    // The reference produces the deduplicated base projections; expand
    // them through the SELECT-list shape (repeated columns re-appear).
    // Aggregating specs have their own oracle (`aggregate_equivalence`).
    let expect: Vec<Vec<Value>> = base
        .into_iter()
        .map(|r| {
            spec.output
                .iter()
                .map(|o| match o {
                    ghostdb_exec::OutputExpr::Column(i) => r[*i].clone(),
                    ghostdb_exec::OutputExpr::Agg { .. } => {
                        panic!("assert_matches_reference cannot check aggregates")
                    }
                })
                .collect()
        })
        .collect();
    assert_eq!(
        out.rows.rows, expect,
        "engine and reference disagree for {sql}"
    );
}

/// Rows as a flat debug string (stable diagnostics).
#[allow(dead_code)]
pub fn rows_digest(rows: &[Vec<Value>]) -> String {
    format!("{rows:?}")
}
