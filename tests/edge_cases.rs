//! Edge cases the demo never shows but a production engine must handle.

mod common;

use common::{assert_matches_reference, medical_db_with_data};
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, TableId, Value};

#[test]
fn predicate_on_hidden_foreign_key_uses_scan_or_verify() {
    // FK columns get no climbing value index (they are key plumbing), so
    // the planner must fall back to scan+translate or hidden-verify —
    // and still be correct.
    let (db, _cfg, data) = medical_db_with_data(1_500);
    let sql = "SELECT Vis.VisID FROM Visit Vis WHERE Vis.DocID = 2";
    let out = db.query(sql).unwrap();
    assert_matches_reference(&db, &data, sql, &out);
    // Every enumerated plan agrees too.
    for cp in db.plans(sql).unwrap() {
        let o = db.query_with_plan(sql, &cp.plan).unwrap();
        assert_eq!(o.rows.rows, out.rows.rows, "plan {}", cp.plan.label);
    }
}

#[test]
fn duplicate_projection_columns() {
    let (db, _cfg, data) = medical_db_with_data(500);
    let sql = "SELECT Vis.Purpose, Vis.Purpose, Vis.VisID FROM Visit Vis \
               WHERE Vis.VisID < 3";
    let out = db.query(sql).unwrap();
    assert_eq!(out.rows.rows.len(), 3);
    for r in &out.rows.rows {
        assert_eq!(r[0], r[1]);
    }
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn predicate_on_primary_key_column() {
    let (db, _cfg, data) = medical_db_with_data(500);
    // Pk columns are visible by construction; selection delegates.
    let sql = "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre \
               WHERE Pre.PreID >= 495";
    let out = db.query(sql).unwrap();
    assert_eq!(out.rows.rows.len(), 5);
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn contradictory_predicates_yield_empty() {
    let (db, _cfg, data) = medical_db_with_data(500);
    let sql = "SELECT Pre.PreID FROM Prescription Pre \
               WHERE Pre.Quantity > 5 AND Pre.Quantity < 3";
    let out = db.query(sql).unwrap();
    assert!(out.rows.is_empty());
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn equality_on_extreme_values() {
    let (db, _cfg, data) = medical_db_with_data(500);
    for sql in [
        "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity = -9223372036854775808",
        "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity >= 9223372036854775807",
        "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity <= -1",
    ] {
        let out = db.query(sql).unwrap();
        assert!(out.rows.is_empty(), "{sql}");
        assert_matches_reference(&db, &data, sql, &out);
    }
}

#[test]
fn single_row_tables() {
    const DDL: &str = "\
        CREATE TABLE Dim (did INTEGER PRIMARY KEY, secret CHAR(8) HIDDEN); \
        CREATE TABLE Fact (fid INTEGER PRIMARY KEY, \
                           val INTEGER, \
                           did REFERENCES Dim(did) HIDDEN);";
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let mut data = Dataset::empty(&schema);
    data.push_row(TableId(0), vec![Value::Int(0), Value::Text("only".into())])
        .unwrap();
    data.push_row(
        TableId(1),
        vec![Value::Int(0), Value::Int(42), Value::Int(0)],
    )
    .unwrap();
    let db = ghostdb::GhostDb::create(DDL, DeviceConfig::default_2007(), &data).unwrap();
    let out = db
        .query(
            "SELECT Fact.fid, Dim.secret FROM Fact, Dim \
             WHERE Dim.secret = 'only' AND Fact.val = 42 AND Fact.did = Dim.did",
        )
        .unwrap();
    assert_eq!(
        out.rows.rows,
        vec![vec![Value::Int(0), Value::Text("only".into())]]
    );
}

#[test]
fn retail_mid_tree_anchor_with_child_predicate() {
    use ghostdb_workload::{generate_retail, RetailConfig, RETAIL_DDL};
    let data = generate_retail(&RetailConfig::scaled(1_000)).unwrap();
    let db = ghostdb::GhostDb::create(RETAIL_DDL, DeviceConfig::default_2007(), &data).unwrap();
    // Anchor at Store (internal, has its own SKT); Region is its child.
    let sql = "SELECT Store.StoreID, Region.Name FROM Store, Region \
               WHERE Region.Climate = 'Alpine' AND Store.Margin >= 20 \
                 AND Store.RegID = Region.RegID";
    let out = db.query(sql).unwrap();
    let spec = db.bind(sql).unwrap();
    let expect = ghostdb_workload::reference_execute(
        db.schema(),
        db.tree(),
        &data,
        spec.anchor,
        &spec.projections,
        &spec.predicates,
    )
    .unwrap();
    assert_eq!(out.rows.rows, expect);
}

#[test]
fn repeated_queries_reuse_the_device_cleanly() {
    // The same db instance serves many different queries back-to-back
    // with no RAM or flash residue between them. The page-cache mirror
    // is the one deliberate resident charge; everything a query
    // allocates on top of it must be released.
    let (db, cfg, _data) = medical_db_with_data(1_000);
    let resident = db.volume().page_cache_stats().charged_bytes;
    let live0 = db.volume().usage().live_pages;
    for frac in [0.05, 0.5, 0.9] {
        let sql = ghostdb_workload::selectivity_query(cfg.date_start, cfg.date_span_days, frac);
        let _ = db.query(&sql).unwrap();
        assert_eq!(db.ram().used(), resident, "RAM residue after frac {frac}");
        assert_eq!(
            db.volume().usage().live_pages,
            live0,
            "flash residue after frac {frac}"
        );
    }
}

#[test]
fn query_on_empty_purpose_string() {
    // Empty strings are legal CHAR values end to end.
    const DDL: &str = "\
        CREATE TABLE T (tid INTEGER PRIMARY KEY, s CHAR(8) HIDDEN);";
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let mut data = Dataset::empty(&schema);
    for (i, s) in ["", "a", "", "b"].iter().enumerate() {
        data.push_row(
            TableId(0),
            vec![Value::Int(i as i64), Value::Text(s.to_string())],
        )
        .unwrap();
    }
    let db = ghostdb::GhostDb::create(DDL, DeviceConfig::default_2007(), &data).unwrap();
    let out = db.query("SELECT T.tid FROM T WHERE T.s = ''").unwrap();
    assert_eq!(
        out.rows.rows,
        vec![vec![Value::Int(0)], vec![Value::Int(2)]]
    );
}
