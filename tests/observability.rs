//! PR 9 observability invariants.
//!
//! (a) **Oracle recount**: the actuals `EXPLAIN ANALYZE` grafts onto the
//! plan tree must equal an independent recount over the raw load-time
//! [`Dataset`] — for *every* enumerated plan, on fixed paper queries and
//! on randomly generated predicate mixes. The recount shares no code
//! with the executor: it climbs foreign keys row by row and re-evaluates
//! each predicate subset with [`ScalarOp::matches`].
//!
//! (b) **Golden skeleton**: `EXPLAIN` and `EXPLAIN ANALYZE` render the
//! same operator names and tree shape; stripping annotations from one
//! recovers the other exactly.

mod common;

use common::medical_db_with_data;
use ghostdb::GhostDb;
use ghostdb_catalog::Predicate;
use ghostdb_exec::{render_plan, Plan, PlanNode, PostStep, QuerySpec};
use ghostdb_storage::Dataset;
use ghostdb_types::{Date, RowId, TableId};
use ghostdb_workload::{game_queries, paper_query, selectivity_query};
use proptest::prelude::*;

/// Resolve the subtree-table row joined to `anchor_row` by walking raw
/// foreign keys (same climb as the reference engine, reimplemented here
/// so the oracle stays independent of library helpers under test).
fn id_of(db: &GhostDb, data: &Dataset, anchor: TableId, anchor_row: u32, table: TableId) -> u32 {
    let tree = db.tree();
    let mut path = vec![table];
    let mut cur = table;
    while cur != anchor {
        let (p, _) = tree.parent(cur).expect("predicate table under anchor");
        path.push(p);
        cur = p;
    }
    let mut id = anchor_row;
    for pair in path.windows(2).rev() {
        let (_, fk_col) = tree.parent(pair[0]).expect("tree edge");
        let v = data.value(pair[1], fk_col.index(), RowId(id));
        id = v.as_int().expect("integer fk") as u32;
    }
    id
}

fn pred_holds(db: &GhostDb, data: &Dataset, anchor: TableId, row: u32, pred: &Predicate) -> bool {
    let t = pred.column.table;
    let id = id_of(db, data, anchor, row, t);
    let v = data.value(t, pred.column.column.index(), RowId(id));
    pred.op.matches(v, &pred.value).expect("comparable pred")
}

/// The oracle: how many anchor rows satisfy the predicate subset `idxs`.
fn recount(db: &GhostDb, data: &Dataset, spec: &QuerySpec, idxs: &[usize]) -> u64 {
    (0..data.row_count(spec.anchor) as u32)
        .filter(|&r| {
            idxs.iter()
                .all(|&i| pred_holds(db, data, spec.anchor, r, &spec.predicates[i]))
        })
        .count() as u64
}

fn actual_rows(node: &PlanNode, what: &str, label: &str) -> u64 {
    node.actual
        .as_ref()
        .unwrap_or_else(|| panic!("{what} node carries no actuals in plan {label}"))
        .rows
}

/// Walk one annotated plan tree top-down alongside the [`Plan`] that
/// produced it and compare every operator's actual row count against
/// the recount oracle:
///
/// * `project` — anchor rows passing **all** predicates (also the
///   result-set size);
/// * each post step, nearest the root last-applied — pre predicates
///   plus the post prefix up to and including that step;
/// * `access-skt` / `anchor-rows` — candidates: all pre predicates;
/// * a single source (or the merge of several) — the same candidate
///   count; with several sources the merge gallops, so an individual
///   source emits somewhere between the intersection and its own match
///   count (bounds-checked, the set-valued nodes stay exact).
fn check_plan_actuals(
    db: &GhostDb,
    data: &Dataset,
    spec: &QuerySpec,
    plan: &Plan,
    tree: &PlanNode,
    result_rows: u64,
) {
    let label = &plan.label;
    let all: Vec<usize> = (0..spec.predicates.len()).collect();
    let pre: Vec<usize> = plan.sources.iter().flat_map(|s| s.preds()).collect();

    assert_eq!(tree.name, "project", "root operator in plan {label}");
    let final_rows = recount(db, data, spec, &all);
    assert_eq!(
        actual_rows(tree, "project", label),
        final_rows,
        "project actuals vs oracle in plan {label}"
    );
    assert_eq!(
        result_rows, final_rows,
        "result set vs oracle in plan {label}"
    );

    // Post chain: the last-applied step renders nearest the root.
    let mut node = &tree.children[0];
    for (i, step) in plan.post.iter().enumerate().rev() {
        let expect_name = match step {
            PostStep::BloomVisible { .. } => "bloom-probe",
            PostStep::HiddenVerify { .. } => "hidden-verify",
        };
        assert_eq!(node.name, expect_name, "post step {i} in plan {label}");
        let mut keep = pre.clone();
        keep.extend(plan.post[..=i].iter().map(|s| s.pred()));
        assert_eq!(
            actual_rows(node, expect_name, label),
            recount(db, data, spec, &keep),
            "{expect_name} actuals vs oracle in plan {label}"
        );
        node = &node.children[0];
    }

    // SKT access over the candidate list.
    assert!(
        node.name == "access-skt" || node.name == "anchor-rows",
        "expected the SKT access, found {} in plan {label}",
        node.name
    );
    let candidates = recount(db, data, spec, &pre);
    assert_eq!(
        actual_rows(node, node.name, label),
        candidates,
        "candidate count vs oracle in plan {label}"
    );

    // The feed: full scan, one source, or a galloping merge.
    let feed = &node.children[0];
    if plan.sources.is_empty() {
        assert_eq!(feed.name, "full-anchor-scan", "feed in plan {label}");
    } else if plan.sources.len() == 1 {
        assert_eq!(
            actual_rows(feed, feed.name, label),
            recount(db, data, spec, &plan.sources[0].preds()),
            "single source actuals vs oracle in plan {label}"
        );
    } else {
        assert_eq!(feed.name, "merge-intersect", "feed in plan {label}");
        assert_eq!(
            actual_rows(feed, "merge-intersect", label),
            candidates,
            "merge actuals vs oracle in plan {label}"
        );
        assert_eq!(feed.children.len(), plan.sources.len());
        for (s, child) in plan.sources.iter().zip(&feed.children) {
            let own = recount(db, data, spec, &s.preds());
            let got = actual_rows(child, child.name, label);
            assert!(
                got >= candidates && got <= own,
                "source {} emitted {got} rows in plan {label}: outside \
                 [{candidates}, {own}] (intersection, own matches)",
                child.name
            );
        }
    }
}

/// Run the oracle over **every** enumerated plan of `sql`.
fn check_all_plans(db: &GhostDb, data: &Dataset, sql: &str) {
    let spec = db.bind(sql).expect("bind");
    let plans = db.plans(sql).expect("plans");
    assert!(!plans.is_empty(), "no plans for {sql}");
    for cp in &plans {
        let (tree, out) = db.analyze_with_plan(&spec, &cp.plan).expect("analyze");
        check_plan_actuals(db, data, &spec, &cp.plan, &tree, out.rows.rows.len() as u64);
    }
}

#[test]
fn explain_analyze_actuals_match_oracle_on_fixed_queries() {
    let (db, cfg, data) = medical_db_with_data(1_500);
    let mid = Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32);
    let mut queries = vec![
        paper_query(mid),
        selectivity_query(cfg.date_start, cfg.date_span_days, 0.05),
        selectivity_query(cfg.date_start, cfg.date_span_days, 0.8),
    ];
    queries.extend(
        game_queries(cfg.date_start, cfg.date_span_days)
            .into_iter()
            .map(|q| q.sql),
    );
    for sql in &queries {
        check_all_plans(&db, &data, sql);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case recounts every plan of a query on a real db
        .. ProptestConfig::default()
    })]

    /// Random conjunctive queries: every plan's `EXPLAIN ANALYZE`
    /// actuals agree with the oracle recount.
    #[test]
    fn explain_analyze_actuals_match_oracle_on_random_queries(
        quantity in 1i64..10,
        q_op in 0usize..3,
        date_frac in 0.0f64..1.0,
        purpose_sel in prop::sample::select(vec!["Sclerosis", "Checkup", "Diabetes", "Nothing"]),
        use_type in any::<bool>(),
    ) {
        let (db, cfg, data) = medical_db_with_data(600);
        let ops = ["=", ">", "<="];
        let cutoff = Date(cfg.date_start.0 + ((cfg.date_span_days as f64) * date_frac) as i32);
        let mut sql = format!(
            "SELECT Pre.PreID, Vis.Purpose, Med.Name \
             FROM Prescription Pre, Visit Vis, Medicine Med \
             WHERE Pre.Quantity {} {} \
               AND Vis.Date > '{}' \
               AND Vis.Purpose = '{}' ",
            ops[q_op], quantity, cutoff, purpose_sel,
        );
        if use_type {
            sql.push_str("AND Med.Type = 'Antibiotic' ");
        }
        sql.push_str("AND Vis.VisID = Pre.VisID AND Med.MedID = Pre.MedID");
        check_all_plans(&db, &data, &sql);
    }
}

/// Strip the trailing `  (annotations)` from every rendered line,
/// leaving the operator skeleton.
fn skeleton(rendered: &str) -> Vec<String> {
    rendered
        .lines()
        .map(|l| l.split("  (").next().unwrap_or(l).to_string())
        .collect()
}

/// Golden test for the unified plan view: `EXPLAIN` prints exactly the
/// operator names and tree shape that `EXPLAIN ANALYZE` renders — the
/// analyzed skeleton of each plan appears verbatim inside the stripped
/// `EXPLAIN` output.
#[test]
fn explain_and_explain_analyze_share_one_skeleton() {
    let (db, cfg, _data) = medical_db_with_data(400);
    let sql = paper_query(Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32));
    let spec = db.bind(&sql).unwrap();
    let stripped_explain = skeleton(&db.explain(&sql).unwrap()).join("\n");
    for cp in db.plans(&sql).unwrap().iter().take(8) {
        let (tree, _) = db.analyze_with_plan(&spec, &cp.plan).unwrap();
        let analyzed = skeleton(&render_plan(&cp.plan.label, &tree)).join("\n");
        assert!(
            stripped_explain.contains(&analyzed),
            "EXPLAIN skeleton drifted from EXPLAIN ANALYZE for plan {}:\n\
             --- analyzed ---\n{analyzed}\n--- explain ---\n{stripped_explain}",
            cp.plan.label
        );
    }
}

/// A fully pinned skeleton for the canonical Post-filtering plan (the
/// hidden predicate stays pre-filtered through its climbing index; the
/// visible one is Bloom-post-filtered): the shape is determined by the
/// query alone, so this golden catches accidental renames or
/// re-parenting in either rendering path.
#[test]
fn post_plan_skeleton_is_golden() {
    let (db, cfg, _data) = medical_db_with_data(300);
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.5);
    let spec = db.bind(&sql).unwrap();
    let plan = db.plan_post(&spec);
    let (tree, _) = db.analyze_with_plan(&spec, &plan).unwrap();
    let names: Vec<(usize, String)> = skeleton(&render_plan(&plan.label, &tree))
        .iter()
        .skip(1) // "plan P2" header
        .filter(|l| !l.is_empty())
        .map(|l| {
            let indent = l.len() - l.trim_start().len();
            let name = l.trim_start().split(" [").next().unwrap_or("");
            (indent / 2, name.to_string())
        })
        .collect();
    let expect: Vec<(usize, String)> = [
        (1, "project"),
        (2, "bloom-probe"),
        (3, "access-skt"),
        (4, "climbing-index"),
    ]
    .into_iter()
    .map(|(d, n)| (d, n.to_string()))
    .collect();
    assert_eq!(names, expect, "the canonical post plan's skeleton changed");
}
