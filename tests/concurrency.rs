//! PR 8 acceptance: snapshot isolation under a live writer.
//!
//! One writer thread owns the `&mut GhostDb` and keeps applying random
//! insert/delete/update batches and delta flushes, mirroring every
//! mutation into the host-side `Vec`-semantics oracle from
//! `properties.rs`. At random points it captures an epoch-stamped
//! [`Snapshot`] together with the mirror's dataset *at that instant*
//! and ships the pair to one of N reader threads. Each reader loads the
//! dataset into a fresh `GhostDb::create` — the ground truth for that
//! epoch — and checks that every query on the snapshot returns exactly
//! what the fresh load returns, while the writer keeps mutating and
//! flushing underneath it. After all readers drain and drop their
//! snapshots, the volume must hold zero snapshot pins (no leaked
//! deferred frees) and the writer's own state must still match the
//! mirror.

use std::sync::mpsc;
use std::thread;

use ghostdb::{GhostDb, Snapshot};
use ghostdb_storage::Dataset;
use ghostdb_types::{ColumnId, DeviceConfig, RowId, TableId, Value};

const DDL: &str = "\
    CREATE TABLE Child (
      cid INTEGER PRIMARY KEY,
      vis INTEGER,
      hid INTEGER HIDDEN,
      tag CHAR(12) HIDDEN);
    CREATE TABLE Root (
      rid INTEGER PRIMARY KEY,
      amt INTEGER HIDDEN,
      cid REFERENCES Child(cid) HIDDEN);";

const QUERIES: &[&str] = &[
    "SELECT Root.rid, Child.tag FROM Root, Child \
     WHERE Child.tag = 'tag-3' AND Root.cid = Child.cid",
    "SELECT Root.rid, Child.hid FROM Root, Child \
     WHERE Child.hid >= 20 AND Child.vis < 40 AND Root.cid = Child.cid",
    "SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-3'",
    "SELECT Root.rid, Root.cid FROM Root WHERE Root.amt <= 25",
];

/// Host-side oracle: plain vectors mutated with `Vec::remove`
/// semantics — the logical view a snapshot of the same instant must
/// expose (same shape as the `properties.rs` mutation oracle).
#[derive(Clone, Default)]
struct Mirror {
    /// (vis, hid, tag) per live child, dense.
    children: Vec<(i64, i64, String)>,
    /// (amt, cid) per live root, dense; cid indexes `children`.
    roots: Vec<(i64, i64)>,
}

impl Mirror {
    fn dataset(&self, schema: &ghostdb_catalog::Schema) -> Dataset {
        let mut d = Dataset::empty(schema);
        for (i, (vis, hid, tag)) in self.children.iter().enumerate() {
            d.push_row(
                TableId(0),
                vec![
                    Value::Int(i as i64),
                    Value::Int(*vis),
                    Value::Int(*hid),
                    Value::Text(tag.clone()),
                ],
            )
            .unwrap();
        }
        for (i, (amt, cid)) in self.roots.iter().enumerate() {
            d.push_row(
                TableId(1),
                vec![Value::Int(i as i64), Value::Int(*amt), Value::Int(*cid)],
            )
            .unwrap();
        }
        d
    }

    fn referenced(&self, cid: i64) -> bool {
        self.roots.iter().any(|(_, c)| *c == cid)
    }
}

/// Apply `steps` random mutation batches to both the engine and the
/// mirror (insert children/roots, delete roots, RESTRICT-safe child
/// deletes, visible + hidden updates).
fn mutate(db: &mut GhostDb, mirror: &mut Mirror, next: &mut impl FnMut() -> i64, steps: usize) {
    for _ in 0..steps {
        match next().rem_euclid(6) {
            0 => {
                let n = 1 + next().rem_euclid(3) as usize;
                let start = mirror.children.len();
                let mut batch = Vec::new();
                for k in 0..n {
                    let (vis, hid) = (next() % 50, next() % 50);
                    let tag = format!("tag-{}", next().rem_euclid(6));
                    batch.push(vec![
                        Value::Int((start + k) as i64),
                        Value::Int(vis),
                        Value::Int(hid),
                        Value::Text(tag.clone()),
                    ]);
                    mirror.children.push((vis, hid, tag));
                }
                db.insert_rows(TableId(0), batch).unwrap();
            }
            1 => {
                if mirror.children.is_empty() {
                    continue;
                }
                let n = 1 + next().rem_euclid(4) as usize;
                let start = mirror.roots.len();
                let mut batch = Vec::new();
                for k in 0..n {
                    let amt = next() % 50;
                    let cid = next().rem_euclid(mirror.children.len() as i64);
                    batch.push(vec![
                        Value::Int((start + k) as i64),
                        Value::Int(amt),
                        Value::Int(cid),
                    ]);
                    mirror.roots.push((amt, cid));
                }
                db.insert_rows(TableId(1), batch).unwrap();
            }
            2 => {
                if mirror.roots.is_empty() {
                    continue;
                }
                let mut picks: Vec<u32> = (0..1 + next().rem_euclid(3))
                    .map(|_| next().rem_euclid(mirror.roots.len() as i64) as u32)
                    .collect();
                picks.sort_unstable();
                picks.dedup();
                db.delete_rows(TableId(1), picks.iter().map(|&r| RowId(r)).collect())
                    .unwrap();
                for &r in picks.iter().rev() {
                    mirror.roots.remove(r as usize);
                }
            }
            3 => {
                let free: Vec<usize> = (0..mirror.children.len())
                    .filter(|&c| !mirror.referenced(c as i64))
                    .collect();
                if free.is_empty() {
                    continue;
                }
                let c = free[next().rem_euclid(free.len() as i64) as usize];
                db.delete_rows(TableId(0), vec![RowId(c as u32)]).unwrap();
                mirror.children.remove(c);
                for (_, cid) in mirror.roots.iter_mut() {
                    if *cid > c as i64 {
                        *cid -= 1;
                    }
                }
            }
            4 => {
                if mirror.children.is_empty() {
                    continue;
                }
                let c = next().rem_euclid(mirror.children.len() as i64) as usize;
                let vis = next() % 50;
                let tag = format!("tag-{}", next().rem_euclid(12));
                db.update_rows(
                    TableId(0),
                    vec![RowId(c as u32)],
                    vec![
                        (ColumnId(1), Value::Int(vis)),
                        (ColumnId(3), Value::Text(tag.clone())),
                    ],
                )
                .unwrap();
                mirror.children[c].0 = vis;
                mirror.children[c].2 = tag;
            }
            _ => {
                if mirror.roots.is_empty() {
                    continue;
                }
                let mut picks: Vec<u32> = (0..1 + next().rem_euclid(2))
                    .map(|_| next().rem_euclid(mirror.roots.len() as i64) as u32)
                    .collect();
                picks.sort_unstable();
                picks.dedup();
                let amt = next() % 50;
                db.update_rows(
                    TableId(1),
                    picks.iter().map(|&r| RowId(r)).collect(),
                    vec![(ColumnId(1), Value::Int(amt))],
                )
                .unwrap();
                for &r in &picks {
                    mirror.roots[r as usize].0 = amt;
                }
            }
        }
    }
}

/// One reader thread: for every (snapshot, dataset, epoch) triple it
/// receives, load the dataset fresh (the epoch's ground truth) and
/// check the snapshot answers every query identically — racing the
/// writer the whole time. Returns how many snapshots it verified.
fn reader(
    rx: mpsc::Receiver<(Snapshot, Dataset, u64)>,
    config: DeviceConfig,
) -> thread::JoinHandle<usize> {
    thread::spawn(move || {
        let mut served = 0usize;
        while let Ok((snap, data, epoch)) = rx.recv() {
            assert_eq!(snap.epoch(), epoch, "snapshot carries its capture epoch");
            assert!(snap.pinned_pages() > 0, "a loaded db pins base segments");
            let oracle = GhostDb::create(DDL, config.clone(), &data).unwrap();
            for sql in QUERIES {
                let got = snap.query(sql).unwrap().rows.rows;
                let want = oracle.query(sql).unwrap().rows.rows;
                assert_eq!(got, want, "epoch {epoch}: {sql}");
            }
            // Explicit plans exercise both pipelines over the snapshot.
            let spec = snap.bind(QUERIES[1]).unwrap();
            let pre = snap
                .query_with_plan(QUERIES[1], &snap.plan_pre(&spec))
                .unwrap();
            let post = snap
                .query_with_plan(QUERIES[1], &snap.plan_post(&spec))
                .unwrap();
            assert_eq!(pre.rows.rows, post.rows.rows, "epoch {epoch}: P1 vs P2");
            let scalar = snap.run_scalar(&spec, &snap.plan_pre(&spec)).unwrap();
            assert_eq!(scalar.rows.rows, pre.rows.rows, "epoch {epoch}: scalar");
            served += 1;
        }
        served
    })
}

#[test]
fn snapshots_stay_isolated_under_a_live_writer() {
    const READERS: usize = 4;
    const ROUNDS: usize = 16;

    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    // A small flush threshold so the writer's batches trip automatic
    // delta flushes (segment rewrites + frees) while snapshots are out.
    let config = DeviceConfig::default_2007().with_delta_flush_rows(24);

    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || -> i64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };

    // Base load.
    let mut mirror = Mirror::default();
    for _ in 0..8 {
        let (vis, hid) = (next() % 50, next() % 50);
        let tag = format!("tag-{}", next().rem_euclid(6));
        mirror.children.push((vis, hid, tag));
    }
    for _ in 0..16 {
        let amt = next() % 50;
        let cid = next().rem_euclid(mirror.children.len() as i64);
        mirror.roots.push((amt, cid));
    }
    let mut db = GhostDb::create(DDL, config.clone(), &mirror.dataset(&schema)).unwrap();

    let mut txs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..READERS {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        handles.push(reader(rx, config.clone()));
    }

    // The writer: mutate, flush, capture, ship — the captured snapshot
    // is verified by a reader thread *while* later rounds mutate and
    // flush the same volume.
    let mut epochs = Vec::new();
    for round in 0..ROUNDS {
        mutate(&mut db, &mut mirror, &mut next, 3);
        if round % 4 == 3 {
            db.flush_deltas().unwrap();
        }
        let snap = db.snapshot().unwrap();
        let epoch = db.epoch();
        assert_eq!(snap.epoch(), epoch);
        epochs.push(epoch);
        txs[round % READERS]
            .send((snap, mirror.dataset(&schema), epoch))
            .unwrap();
    }
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "every round commits mutations, so epochs strictly increase"
    );
    drop(txs);
    let verified: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(verified, ROUNDS, "every shipped snapshot was verified");

    // Leak check: with every snapshot dropped, no snapshot pin (and no
    // deferred-by-pin page) may remain on the volume.
    assert_eq!(db.open_snapshots(), 0, "all sessions deregistered");
    let pins = db.volume().pin_stats();
    assert_eq!(pins.snapshot_pinned, 0, "no leaked snapshot pins");
    assert_eq!(pins.snapshot_deferred, 0, "no leaked deferred frees");

    // And the writer's own state is still exactly the mirror.
    let fresh = GhostDb::create(DDL, config, &mirror.dataset(&schema)).unwrap();
    for sql in QUERIES {
        assert_eq!(
            db.query(sql).unwrap().rows.rows,
            fresh.query(sql).unwrap().rows.rows,
            "writer state after the run: {sql}"
        );
    }
}

/// PR 10: N snapshot readers hammer *overlapping* zipfian payload keys
/// through the shared page cache while the writer inserts, rewrites
/// payloads, and flushes underneath them. Isolation says every reader
/// keeps seeing its frozen epoch (the host-side census of the generated
/// dataset) no matter what the mirror absorbs or invalidates; the
/// shared-cache bookkeeping says the run ends with zero snapshot pins,
/// a hit counter that actually moved (the hot keys collide by
/// construction), and a scrape that agrees with the volume.
#[test]
fn zipfian_readers_share_the_page_cache_under_writer_churn() {
    use ghostdb_workload::{
        generate_scale, scale_point_query, scale_row, ScaleConfig, Zipfian, SCALE_DDL,
    };

    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 120;
    const EVENT: TableId = TableId(0);
    const PAYLOAD: ColumnId = ColumnId(2);

    let cfg = ScaleConfig::scaled(4_000);
    let data = generate_scale(&cfg).unwrap();
    let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
    let mut db = GhostDb::create(SCALE_DDL, config, &data).unwrap();
    assert!(
        db.volume().page_cache_stats().capacity_pages > 0,
        "default config arms the cache"
    );
    let hits_before = db.volume().page_cache_stats().hits;

    // Host-side census of the frozen dataset: rows per payload value.
    let mut census = std::collections::HashMap::new();
    for id in 0..cfg.rows as i64 {
        if let Value::Int(p) = scale_row(&cfg, id)[2] {
            *census.entry(p).or_insert(0usize) += 1;
        }
    }
    let census = std::sync::Arc::new(census);

    // All readers draw from the same zipfian distribution with different
    // seeds: distinct streams, identical hot set — cache-line contention
    // on the pages that hold the popular payload runs.
    let snap_epoch = {
        let mut handles = Vec::new();
        let epoch = db.epoch();
        for r in 0..READERS {
            let snap = db.snapshot().unwrap();
            assert_eq!(snap.epoch(), epoch);
            let census = census.clone();
            let mut zipf = Zipfian::new(
                cfg.payload_cardinality as u64,
                cfg.theta,
                0xd1ce ^ (r as u64) << 8,
            );
            handles.push(thread::spawn(move || {
                for _ in 0..QUERIES_PER_READER {
                    let p = zipf.next() as i64;
                    let got = snap.query(&scale_point_query(p)).unwrap().rows.len();
                    let want = census.get(&p).copied().unwrap_or(0);
                    assert_eq!(got, want, "frozen count for payload {p} drifted");
                }
            }));
        }

        // The writer churns the same table the whole time: appends (new
        // payload runs), payload rewrites (hidden-column updates dirty
        // exactly the pages the readers hammer), and delta flushes
        // (segment rewrites -> cache invalidation storms).
        let mut state = 0xace0_fba5eu64;
        let mut next = move || -> i64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let mut live = cfg.rows as i64;
        for round in 0..8 {
            let batch: Vec<Vec<Value>> = (0..16).map(|k| scale_row(&cfg, live + k)).collect();
            db.insert_rows(EVENT, batch).unwrap();
            live += 16;
            let picks: Vec<RowId> = (0..8)
                .map(|_| RowId(next().rem_euclid(live) as u32))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let fresh = next().rem_euclid(cfg.payload_cardinality as i64);
            db.update_rows(EVENT, picks, vec![(PAYLOAD, Value::Int(fresh))])
                .unwrap();
            if round % 2 == 1 {
                db.flush_deltas().unwrap();
            }
        }

        for h in handles {
            h.join().unwrap();
        }
        epoch
    };
    assert!(db.epoch() > snap_epoch, "the writer committed mutations");

    // Pin ledger: every reader dropped its snapshot on exit.
    assert_eq!(db.open_snapshots(), 0, "all reader sessions deregistered");
    let pins = db.volume().pin_stats();
    assert_eq!(pins.snapshot_pinned, 0, "no leaked snapshot pins");
    assert_eq!(pins.snapshot_deferred, 0, "no leaked deferred frees");

    // Cache sanity: the overlapping hot sets must have produced real
    // sharing, and the scrape must agree with the volume's own ledger.
    let cache = db.volume().page_cache_stats();
    assert!(
        cache.hits > hits_before,
        "overlapping zipfian readers never hit the shared mirror"
    );
    assert!(cache.resident_pages <= cache.capacity_pages);
    let snap_metrics = db.metrics();
    assert_eq!(
        snap_metrics.counter("ghostdb_page_cache_hits_total"),
        cache.hits
    );
    assert_eq!(
        snap_metrics.counter("ghostdb_page_cache_misses_total"),
        cache.misses
    );
    assert!(db.device_report().contains("page cache:"));
}

/// A snapshot captured at epoch E sees exactly epoch-E state even after
/// the writer mutates, flushes, and the volume garbage-collects — and a
/// snapshot captured *after* those mutations sees the new state. The
/// single-threaded distillation of the isolation property.
#[test]
fn snapshot_pins_its_epoch_across_flush_and_gc() {
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let config = DeviceConfig::default_2007().with_delta_flush_rows(0);

    let mut mirror = Mirror::default();
    for i in 0..6 {
        mirror.children.push((i, 10 * i, format!("tag-{i}")));
    }
    for i in 0..12 {
        mirror.roots.push((i, i % 6));
    }
    let mut db = GhostDb::create(DDL, config.clone(), &mirror.dataset(&schema)).unwrap();

    let before = mirror.clone();
    let snap = db.snapshot().unwrap();
    let epoch = db.epoch();

    // Mutate heavily and flush: old segments are freed (deferred by the
    // snapshot's pins), new ones written.
    let mut state = 7u64;
    let mut next = move || -> i64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    mutate(&mut db, &mut mirror, &mut next, 12);
    db.flush_deltas().unwrap();
    assert!(db.epoch() > epoch, "mutations advanced the epoch");

    // The old snapshot still answers with epoch-E state...
    let frozen = GhostDb::create(DDL, config.clone(), &before.dataset(&schema)).unwrap();
    for sql in QUERIES {
        assert_eq!(
            snap.query(sql).unwrap().rows.rows,
            frozen.query(sql).unwrap().rows.rows,
            "epoch {epoch} snapshot after writer moved on: {sql}"
        );
    }
    // ...and a fresh snapshot sees the new state.
    let now = db.snapshot().unwrap();
    let current = GhostDb::create(DDL, config, &mirror.dataset(&schema)).unwrap();
    for sql in QUERIES {
        assert_eq!(
            now.query(sql).unwrap().rows.rows,
            current.query(sql).unwrap().rows.rows,
            "fresh snapshot tracks the writer: {sql}"
        );
    }
    drop(now);
    drop(snap);
    let pins = db.volume().pin_stats();
    assert_eq!((pins.snapshot_pinned, pins.snapshot_deferred), (0, 0));
}
