//! Leak-freedom (the paper's core guarantee): plant unique sentinel
//! values in hidden columns, run a battery of queries, and grep every
//! spy-visible byte for them.

mod common;

use ghostdb::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, TableId, Value};

const DDL: &str = "\
CREATE TABLE Clinic (
  ClinicID INTEGER PRIMARY KEY,
  City CHAR(24));
CREATE TABLE Record (
  RecID INTEGER PRIMARY KEY,
  Vitals INTEGER,
  Diagnosis CHAR(40) HIDDEN,
  SecretScore INTEGER HIDDEN,
  ClinicID REFERENCES Clinic(ClinicID) HIDDEN);";

/// Sentinels that exist nowhere else (neither in query texts nor in
/// visible data).
const SENTINEL_TEXT: &str = "XQZ-SENTINEL-DIAGNOSIS-77319";
const SENTINEL_INT: i64 = -776_655_443_322;

fn build() -> GhostDb {
    let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
    let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
    let mut data = Dataset::empty(&schema);
    for i in 0..5i64 {
        data.push_row(
            TableId(0),
            vec![Value::Int(i), Value::Text(format!("City{i}"))],
        )
        .unwrap();
    }
    for i in 0..400i64 {
        let diag = if i == 137 {
            SENTINEL_TEXT.to_string()
        } else {
            format!("diag-{}", i % 7)
        };
        let score = if i == 201 { SENTINEL_INT } else { i * 3 };
        data.push_row(
            TableId(1),
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Text(diag),
                Value::Int(score),
                Value::Int(i % 5),
            ],
        )
        .unwrap();
    }
    GhostDb::create(DDL, DeviceConfig::default_2007(), &data).unwrap()
}

fn assert_no_sentinel(db: &GhostDb, context: &str) {
    assert!(
        !db.spy_sees_value(&Value::Text(SENTINEL_TEXT.into())),
        "text sentinel leaked during {context}"
    );
    assert!(
        !db.spy_sees_value(&Value::Int(SENTINEL_INT)),
        "int sentinel leaked during {context}"
    );
}

/// The observability surfaces are operator-facing text an admin may
/// paste anywhere, so they get the same bar as the bus: counts, times,
/// and sizes only — zero hidden bytes.
fn assert_surface_clean(surface: &str, name: &str) {
    assert!(
        !surface.contains(SENTINEL_TEXT),
        "text sentinel appeared in {name}:\n{surface}"
    );
    assert!(
        !surface.contains(&SENTINEL_INT.to_string()),
        "int sentinel appeared in {name}:\n{surface}"
    );
}

/// PR 9: statement traces, the metrics expositions (Prometheus text and
/// JSON), `EXPLAIN ANALYZE` output, and `device_report()` must carry
/// zero hidden bytes — under every enumerated plan (the traced query
/// projects both sentinels), and again after mutations churned the
/// deltas and a flush compacted them.
#[test]
fn observability_surfaces_expose_no_hidden_bytes() {
    let mut db = build();
    db.set_tracing(true);
    // Projects both sentinels and selects on a hidden column: the worst
    // case for any surface that leaked operator payloads.
    let sql = "SELECT Rec.Diagnosis, Rec.SecretScore, Clinic.City \
               FROM Record Rec, Clinic \
               WHERE Rec.SecretScore <= 1000000000 \
                 AND Rec.Vitals >= 0 \
                 AND Rec.ClinicID = Clinic.ClinicID";
    let spec = db.bind(sql).unwrap();
    for cp in db.plans(sql).unwrap() {
        let label = &cp.plan.label;
        let (tree, out) = db.analyze_with_plan(&spec, &cp.plan).unwrap();
        assert!(
            out.rows
                .rows
                .iter()
                .any(|r| r[0] == Value::Text(SENTINEL_TEXT.into())),
            "the probe query must surface the sentinel on the display"
        );
        assert_surface_clean(
            &ghostdb_exec::render_plan(label, &tree),
            &format!("EXPLAIN ANALYZE output, plan {label}"),
        );
        assert_surface_clean(
            &out.report.render(),
            &format!("operator report, plan {label}"),
        );
        // The same query through the traced path: the span tree renders
        // names, times and counters only.
        let _ = db.query(sql).unwrap();
        let trace = db.last_trace().expect("tracing is on");
        assert_surface_clean(&trace.render(), &format!("statement trace, plan {label}"));
    }
    assert_surface_clean(&db.explain(sql).unwrap(), "EXPLAIN output");
    assert_surface_clean(&db.metrics_text(), "Prometheus exposition");
    assert_surface_clean(&db.metrics_json(), "JSON exposition");
    assert_surface_clean(&db.device_report(), "device report");

    // Mutations touch the sentinels directly; flush compacts. Every
    // surface stays clean afterwards.
    db.execute("DELETE FROM Record WHERE RecID = 137").unwrap();
    db.execute("UPDATE Record SET Vitals = 555 WHERE RecID = 200")
        .unwrap();
    // PKs are dense logical ids: the delete re-densified 0..=398, so
    // the next insert takes 399.
    db.execute("INSERT INTO Record VALUES (399, 12, 'diag-x', 42, 1)")
        .unwrap();
    db.flush_deltas().unwrap();
    db.seal().unwrap();
    let _ = db.query(sql).unwrap();
    assert_surface_clean(
        &db.last_trace().unwrap().render(),
        "post-mutation statement trace",
    );
    assert_surface_clean(&db.metrics_text(), "post-mutation Prometheus exposition");
    assert_surface_clean(&db.metrics_json(), "post-mutation JSON exposition");
    assert_surface_clean(&db.device_report(), "post-mutation device report");
    assert_surface_clean(
        &db.explain_analyze(sql).unwrap(),
        "post-mutation EXPLAIN ANALYZE",
    );
    // The bus-level guarantee still holds underneath it all.
    assert_no_sentinel(&db, "observability sweep");
}

#[test]
fn sentinels_never_cross_even_when_selected() {
    let db = build();
    db.clear_trace();
    // Query that returns BOTH sentinels to the secure display.
    let out = db
        .query(
            "SELECT Rec.Diagnosis, Rec.SecretScore FROM Record Rec \
             WHERE Rec.RecID >= 0",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 400);
    assert!(out
        .rows
        .rows
        .iter()
        .any(|r| r[0] == Value::Text(SENTINEL_TEXT.into())));
    assert!(out
        .rows
        .rows
        .iter()
        .any(|r| r[1] == Value::Int(SENTINEL_INT)));
    assert_no_sentinel(&db, "full projection of hidden columns");
}

#[test]
fn sentinels_never_cross_under_any_plan() {
    let db = build();
    let sql = "SELECT Rec.RecID, Rec.Diagnosis, Clinic.City \
               FROM Record Rec, Clinic \
               WHERE Rec.Vitals >= 10 \
                 AND Rec.SecretScore >= 0 \
                 AND Rec.ClinicID = Clinic.ClinicID";
    let plans = db.plans(sql).unwrap();
    assert!(plans.len() >= 4);
    for cp in &plans {
        db.clear_trace();
        let _ = db.query_with_plan(sql, &cp.plan).unwrap();
        assert_no_sentinel(&db, &format!("plan {}", cp.plan.label));
    }
}

#[test]
fn predicates_on_hidden_columns_do_not_delegate() {
    let db = build();
    db.clear_trace();
    // Selecting directly on the sentinel value: the predicate constant is
    // part of the (public) query text by the paper's model, but the
    // *evaluation* must stay on-device: no EvalPredicate/FetchColumn for
    // a hidden column may appear in the trace.
    let out = db
        .query(&format!(
            "SELECT Rec.RecID FROM Record Rec WHERE Rec.SecretScore = {SENTINEL_INT}"
        ))
        .unwrap();
    assert_eq!(out.rows.len(), 1);
    for ev in db.trace().spy_frames() {
        if ev.kind == "EvalPredicate" || ev.kind == "FetchColumn" {
            // Any delegated work must be about the visible columns only
            // (c0=RecID pk or c1=Vitals).
            assert!(
                ev.summary.contains("c0") || ev.summary.contains("c1"),
                "hidden column delegated: {}",
                ev.summary
            );
        }
    }
}

#[test]
fn spy_does_see_visible_traffic() {
    // The guarantee is not "nothing crosses" — visible data crosses by
    // design. Verify the spy sees exactly that.
    let db = build();
    db.clear_trace();
    let _ = db
        .query("SELECT Rec.RecID FROM Record Rec WHERE Rec.Vitals = 7")
        .unwrap();
    let frames = db.trace().spy_frames();
    assert!(frames.iter().any(|e| e.kind == "Query"));
    assert!(frames.iter().any(|e| e.kind == "EvalPredicate"));
    assert!(frames.iter().any(|e| e.kind == "IdChunk"));
    // And the spy report renders.
    assert!(db.spy_report().contains("EvalPredicate"));
}

/// Post-load inserts: hidden values ride the device's secure port, so a
/// spy watching the bus sees the visible halves (public by design) but
/// never the hidden ones — before or after the LSM delta flush.
#[test]
fn inserted_hidden_values_never_cross_the_bus() {
    const INS_TEXT: &str = "XQZ-SENTINEL-INSERTED-55107";
    const INS_INT: i64 = -991_188_227_744;
    let mut db = build();
    db.clear_trace();
    db.execute(&format!(
        "INSERT INTO Record VALUES (400, 13, '{INS_TEXT}', {INS_INT}, 2)"
    ))
    .unwrap();
    db.execute("INSERT INTO Clinic VALUES (5, 'City5')")
        .unwrap();
    db.execute(&format!(
        "INSERT INTO Record VALUES (401, 14, 'diag-1', {}, 5)",
        INS_INT + 1
    ))
    .unwrap();

    // The visible half did cross (that is the protocol), the hidden
    // half did not.
    assert!(
        db.spy_sees_value(&Value::Int(13)),
        "visible insert traffic should be spy-visible"
    );
    assert!(
        !db.spy_sees_value(&Value::Text(INS_TEXT.into())),
        "inserted hidden text leaked on append"
    );
    assert!(!db.spy_sees_value(&Value::Int(INS_INT)));

    // Query the inserted sentinels through every plan, un-flushed...
    let sql = "SELECT Rec.Diagnosis, Rec.SecretScore, Clinic.City \
               FROM Record Rec, Clinic \
               WHERE Rec.Vitals >= 13 AND Rec.ClinicID = Clinic.ClinicID";
    for cp in db.plans(sql).unwrap() {
        db.clear_trace();
        let out = db.query_with_plan(sql, &cp.plan).unwrap();
        assert!(out
            .rows
            .rows
            .iter()
            .any(|r| r[0] == Value::Text(INS_TEXT.into())));
        assert!(
            !db.spy_sees_value(&Value::Text(INS_TEXT.into())),
            "inserted hidden text leaked during plan {}",
            cp.plan.label
        );
        assert!(!db.spy_sees_value(&Value::Int(INS_INT)));
        assert_no_sentinel(&db, &format!("insert-phase plan {}", cp.plan.label));
    }
    // ...and again after the delta merge rebuilt the flash segments.
    assert!(db.flush_deltas().unwrap() > 0);
    db.clear_trace();
    let out = db
        .query_with_plan(sql, &db.plans(sql).unwrap()[0].plan)
        .unwrap();
    assert!(out.rows.rows.iter().any(|r| r[1] == Value::Int(INS_INT)));
    assert!(!db.spy_sees_value(&Value::Text(INS_TEXT.into())));
    assert!(!db.spy_sees_value(&Value::Int(INS_INT)));
}

/// The mutation protocol's disclosure set is row **identities** only:
/// delete a row whose hidden half holds a sentinel, overwrite another
/// with a fresh sentinel, flush (physical compaction + PC mirror
/// compaction), seal — at every point the spy trace carries
/// `DeleteRows`/`UpdateVisible`/`CompactRows` frames with ids and
/// visible halves, and zero hidden bytes.
#[test]
fn deleted_hidden_values_never_cross_the_bus() {
    const UPD_TEXT: &str = "XQZ-SENTINEL-UPDATED-31415";
    const UPD_INT: i64 = -227_755_889_911;
    let mut db = build();
    db.clear_trace();

    // Row 137 holds the text sentinel, row 201 the int sentinel.
    db.execute("DELETE FROM Record WHERE RecID = 137").unwrap();
    db.execute(&format!(
        "UPDATE Record SET Diagnosis = '{UPD_TEXT}', SecretScore = {UPD_INT}, \
         Vitals = 999 WHERE RecID = 150"
    ))
    .unwrap();
    db.execute("DELETE FROM Record WHERE Vitals = 20").unwrap();

    // The spy saw the churn (frames with row ids), never the values.
    let kinds: Vec<&str> = db.trace().spy_frames().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"DeleteRows"), "{kinds:?}");
    assert!(kinds.contains(&"UpdateVisible"), "{kinds:?}");
    assert_no_sentinel(&db, "delete/update batches");
    assert!(!db.spy_sees_value(&Value::Text(UPD_TEXT.into())));
    assert!(!db.spy_sees_value(&Value::Int(UPD_INT)));

    // Queries over the tombstone-resident state stay clean on every plan.
    let sql = "SELECT Rec.RecID, Rec.Diagnosis FROM Record Rec WHERE Rec.SecretScore <= -1";
    for cp in db.plans(sql).unwrap() {
        db.clear_trace();
        let out = db.query_with_plan(sql, &cp.plan).unwrap();
        assert!(out
            .rows
            .rows
            .iter()
            .any(|r| r[1] == Value::Text(UPD_TEXT.into())));
        assert_no_sentinel(&db, &format!("tombstone-resident plan {}", cp.plan.label));
        assert!(!db.spy_sees_value(&Value::Text(UPD_TEXT.into())));
    }

    // The merge: dead rows physically dropped, PC compacted in lockstep.
    db.clear_trace();
    assert!(db.flush_deltas().is_ok());
    let kinds: Vec<&str> = db.trace().spy_frames().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"CompactRows"), "{kinds:?}");
    assert_no_sentinel(&db, "post-delete flush");
    assert!(!db.spy_sees_value(&Value::Text(UPD_TEXT.into())));
    assert!(!db.spy_sees_value(&Value::Int(UPD_INT)));

    // Seal after the mutations: still zero hidden bytes on the link.
    db.clear_trace();
    db.seal().unwrap();
    assert_eq!(db.trace().spy_bytes(), 0, "seal is off-bus");
    assert_no_sentinel(&db, "post-mutation seal");

    // And the updated sentinel still answers queries (display only).
    let out = db
        .query(&format!(
            "SELECT Rec.Diagnosis FROM Record Rec WHERE Rec.SecretScore = {UPD_INT}"
        ))
        .unwrap();
    assert_eq!(out.rows.rows.len(), 1);
    assert!(!db.spy_sees_value(&Value::Int(UPD_INT)));
}

/// Durability stays entirely on the device side of the spied link:
/// `seal()` programs the NAND directly (zero bus frames), and a
/// mount's WAL replay re-transmits only the visible halves — the
/// sentinels never appear in either instance's trace.
#[test]
fn seal_mount_and_wal_replay_leak_nothing() {
    const INS_TEXT: &str = "XQZ-SENTINEL-WAL-88403";
    const INS_INT: i64 = -337_799_551_100;
    let mut db = build();
    db.clear_trace();

    // Sealing moves every hidden structure into the image, off-bus.
    db.seal().unwrap();
    assert_no_sentinel(&db, "seal");
    assert_eq!(
        db.trace().spy_bytes(),
        0,
        "seal must not touch the PC \u{2194} device link"
    );

    // Post-seal inserts: hidden halves go to the WAL (device NAND),
    // visible halves cross the bus as usual.
    db.execute(&format!(
        "INSERT INTO Record VALUES (400, 77, '{INS_TEXT}', {INS_INT}, 3)"
    ))
    .unwrap();
    assert!(!db.spy_sees_value(&Value::Text(INS_TEXT.into())));
    assert!(!db.spy_sees_value(&Value::Int(INS_INT)));
    assert!(db.spy_sees_value(&Value::Int(77)), "visible half crosses");

    // Unplug, remount: the replay runs on a fresh bus with an empty
    // trace, so anything hidden it transmitted would be caught here.
    let nand = db.nand().clone();
    let config = db.config().clone();
    drop(db);
    let db = GhostDb::mount(nand, config.clone()).unwrap();
    assert_no_sentinel(&db, "mount + WAL replay");
    assert!(
        !db.spy_sees_value(&Value::Text(INS_TEXT.into())),
        "replayed hidden text leaked"
    );
    assert!(!db.spy_sees_value(&Value::Int(INS_INT)));

    // The replayed hidden data is queryable (secure display only)...
    let sql = "SELECT Rec.Diagnosis, Rec.SecretScore FROM Record Rec \
               WHERE Rec.Vitals = 77";
    for cp in db.plans(sql).unwrap() {
        let out = db.query_with_plan(sql, &cp.plan).unwrap();
        assert_eq!(out.rows.rows.len(), 1);
        assert_eq!(out.rows.rows[0][0], Value::Text(INS_TEXT.into()));
        assert_no_sentinel(&db, &format!("mounted plan {}", cp.plan.label));
        assert!(!db.spy_sees_value(&Value::Text(INS_TEXT.into())));
    }

    // ...and the flush + re-seal + second power cycle stay clean too.
    let mut db = db;
    assert!(db.flush_deltas().unwrap() > 0);
    let nand = db.nand().clone();
    drop(db);
    let db = GhostDb::mount(nand, config).unwrap();
    assert_eq!(
        db.trace().spy_bytes(),
        0,
        "a replay-free mount is entirely off-bus"
    );
    let out = db.query(sql).unwrap();
    assert_eq!(out.rows.rows[0][1], Value::Int(INS_INT));
    assert_no_sentinel(&db, "re-sealed mount");
    assert!(!db.spy_sees_value(&Value::Text(INS_TEXT.into())));
    assert!(!db.spy_sees_value(&Value::Int(INS_INT)));
}

/// The PR's acceptance bar: `SELECT SUM(hidden) … GROUP BY visible`
/// folds the hidden operands inside the device; the bus carries the
/// (public) query text, the visible group keys and nothing else. The
/// MIN lands *on* the text sentinel — the scalar result reaches the
/// secure display and still never crosses the spied link.
#[test]
fn aggregates_over_hidden_keep_operands_off_the_bus() {
    let db = build();
    let sql = "SELECT Rec.Vitals, SUM(Rec.SecretScore), MIN(Rec.Diagnosis), COUNT(*) \
               FROM Record Rec WHERE Rec.RecID >= 0 \
               GROUP BY Rec.Vitals ORDER BY Rec.Vitals";

    // Host-side reference: 8 records per Vitals value (i % 50).
    let mut expect: Vec<Vec<Value>> = Vec::new();
    for v in 0..50i64 {
        let ids: Vec<i64> = (0..8).map(|k| v + 50 * k).collect();
        let sum: i64 = ids
            .iter()
            .map(|&i| if i == 201 { SENTINEL_INT } else { i * 3 })
            .sum();
        let min_diag = ids
            .iter()
            .map(|&i| {
                if i == 137 {
                    SENTINEL_TEXT.to_string()
                } else {
                    format!("diag-{}", i % 7)
                }
            })
            .min()
            .unwrap();
        expect.push(vec![
            Value::Int(v),
            Value::Int(sum),
            Value::Text(min_diag),
            Value::Int(8),
        ]);
    }

    for cp in db.plans(sql).unwrap() {
        db.clear_trace();
        let out = db.query_with_plan(sql, &cp.plan).unwrap();
        assert_eq!(
            out.rows.rows, expect,
            "wrong aggregates under plan {}",
            cp.plan.label
        );
        // Both sentinels are aggregate *operands* here — SENTINEL_INT
        // feeds the SUM of group 1, SENTINEL_TEXT feeds (and wins) the
        // MIN of group 37 — so this single check is the acceptance bar:
        // operands folded device-side, only group keys and totals out.
        assert_no_sentinel(&db, &format!("grouped aggregation, plan {}", cp.plan.label));
    }
    assert!(out_has_sentinel_min(&db, sql));

    // A global aggregate (no GROUP BY) reduces to one scalar row.
    db.clear_trace();
    let out = db
        .query("SELECT COUNT(*), MAX(Rec.SecretScore) FROM Record Rec")
        .unwrap();
    assert_eq!(
        out.rows.rows,
        vec![vec![Value::Int(400), Value::Int(399 * 3)]]
    );
    assert_no_sentinel(&db, "global aggregate");
}

fn out_has_sentinel_min(db: &GhostDb, sql: &str) -> bool {
    db.query(sql)
        .unwrap()
        .rows
        .rows
        .iter()
        .any(|r| r[2] == Value::Text(SENTINEL_TEXT.into()))
}

/// PR 8: the snapshot read path rides the same spied link as the
/// writer handle (clones share the trace), so the leak guarantee must
/// hold for reader sessions too — at capture, through every plan, and
/// from another thread racing the writer's handle.
#[test]
fn snapshot_reads_leak_nothing() {
    let db = build();
    db.clear_trace();
    let snap = db.snapshot().unwrap();
    assert_eq!(
        db.trace().spy_bytes(),
        0,
        "snapshot capture is a device-internal pin, off-bus"
    );

    // Full hidden projection through the snapshot: both sentinels reach
    // the secure display, zero hidden bytes cross the link.
    let out = snap
        .query(
            "SELECT Rec.Diagnosis, Rec.SecretScore FROM Record Rec \
             WHERE Rec.RecID >= 0",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 400);
    assert!(out
        .rows
        .rows
        .iter()
        .any(|r| r[0] == Value::Text(SENTINEL_TEXT.into())));
    assert_no_sentinel(&db, "snapshot projection of hidden columns");

    // Every enumerated plan, both entry points, stays clean.
    let sql = "SELECT Rec.RecID, Rec.Diagnosis, Clinic.City \
               FROM Record Rec, Clinic \
               WHERE Rec.Vitals >= 10 \
                 AND Rec.SecretScore >= 0 \
                 AND Rec.ClinicID = Clinic.ClinicID";
    let spec = snap.bind(sql).unwrap();
    for cp in snap.plans(sql).unwrap() {
        db.clear_trace();
        let _ = snap.query_with_plan(sql, &cp.plan).unwrap();
        let _ = snap.run_scalar(&spec, &cp.plan).unwrap();
        assert_no_sentinel(&db, &format!("snapshot plan {}", cp.plan.label));
    }

    // Cross-thread: the snapshot moves to a reader thread; the shared
    // trace still proves nothing hidden crossed.
    db.clear_trace();
    let handle = std::thread::spawn(move || {
        snap.query("SELECT Rec.Diagnosis FROM Record Rec WHERE Rec.SecretScore <= -1")
            .unwrap()
            .rows
            .rows
            .len()
    });
    assert_eq!(handle.join().unwrap(), 1, "the int-sentinel row");
    assert_no_sentinel(&db, "cross-thread snapshot read");
}

/// PR 10: the page cache mirrors raw NAND pages — including the pages
/// that hold both sentinels — in device RAM. Two obligations follow.
/// The cache must be invisible on the spied link: a hit replaces a
/// device-internal NAND transfer, never a bus frame, so a repeated
/// query produces byte-identical bus traffic whether it faulted or hit.
/// And the cache's observability (the `device_report()` section, the
/// `ghostdb_page_cache_*` counters) must expose counts and sizes only,
/// even while sentinel-bearing pages are resident in the mirror.
#[test]
fn page_cache_exposes_counts_only_and_stays_off_the_bus() {
    let db = build();
    assert!(
        db.volume().page_cache_stats().capacity_pages > 0,
        "default config arms the cache"
    );

    // Cold run faults the sentinel-bearing pages into the mirror.
    let sql = format!("SELECT Rec.RecID FROM Record Rec WHERE Rec.SecretScore = {SENTINEL_INT}");
    db.clear_trace();
    assert_eq!(db.query(&sql).unwrap().rows.len(), 1);
    let cold_frames = db.trace().spy_frames().len();
    let cold_bytes = db.trace().spy_bytes();

    // Warm run: the device answers from the mirror. The bus must look
    // *identical*, not merely sentinel-free — a frame-count or byte
    // delta between hit and miss would itself be a side channel.
    let warm0 = db.volume().page_cache_stats();
    db.clear_trace();
    assert_eq!(db.query(&sql).unwrap().rows.len(), 1);
    let warm1 = db.volume().page_cache_stats();
    assert!(
        warm1.hits > warm0.hits,
        "the repeated probe must hit the mirror ({} -> {} hits)",
        warm0.hits,
        warm1.hits
    );
    assert_eq!(
        db.trace().spy_frames().len(),
        cold_frames,
        "a cache hit altered the bus frame sequence"
    );
    assert_eq!(
        db.trace().spy_bytes(),
        cold_bytes,
        "a cache hit altered the bus byte count"
    );
    assert_no_sentinel(&db, "page-cache warm repeat");

    // Sentinel pages are resident right now; every surface that renders
    // cache state stays counts-and-sizes only.
    assert!(warm1.resident_pages > 0 && warm1.charged_bytes > 0);
    let report = db.device_report();
    assert!(
        report.contains("page cache:"),
        "device report lost its cache section:\n{report}"
    );
    assert_surface_clean(&report, "device report with sentinel pages resident");
    let text = db.metrics_text();
    assert!(text.contains("ghostdb_page_cache_hits_total"));
    assert_surface_clean(&text, "Prometheus exposition with sentinel pages resident");
    assert_surface_clean(
        &db.metrics_json(),
        "JSON exposition with sentinel pages resident",
    );

    // The scrape and the volume agree — the counters are the *only*
    // thing the cache publishes, so they had better be the real ones.
    let snap = db.metrics();
    assert_eq!(snap.counter("ghostdb_page_cache_hits_total"), warm1.hits);
    assert_eq!(
        snap.counter("ghostdb_page_cache_misses_total"),
        warm1.misses
    );
}

#[test]
fn results_only_reach_the_display_channel() {
    let db = build();
    db.clear_trace();
    let _ = db
        .query("SELECT Rec.Diagnosis FROM Record Rec WHERE Rec.Vitals = 1")
        .unwrap();
    let all = db.trace().events();
    let result_frames: Vec<_> = all.iter().filter(|e| e.kind == "Result").collect();
    assert!(!result_frames.is_empty(), "no display delivery recorded");
    for f in result_frames {
        assert!(!f.spy_visible(), "result frame is spy-visible");
        assert!(f.payload.is_none());
    }
}
