//! Flash lifecycle under sustained query churn: temp segments must be
//! reclaimed, the volume must not fill, and wear must stay spread.

mod common;

use ghostdb_types::DeviceConfig;
use ghostdb_workload::{generate_medical, selectivity_query, MedicalConfig, MEDICAL_DDL};

#[test]
fn repeated_spilling_queries_do_not_exhaust_flash() {
    let cfg = MedicalConfig::scaled(3_000);
    let data = generate_medical(&cfg).unwrap();
    // Small-ish flash so leaks would surface quickly (32 MiB) and a
    // tight RAM budget so translations must spill whole blocks of sort
    // runs — the churn that exercises block reclamation.
    let mut device = DeviceConfig::default_2007();
    device.flash.num_blocks = 256;
    device.ram_bytes = 16 * 1024;
    let db = ghostdb::GhostDb::create(MEDICAL_DDL, device, &data).unwrap();

    let live_after_load = db.volume().usage().live_pages;
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.8);
    let spec = db.bind(&sql).unwrap();
    let p1 = db.plan_pre(&spec);
    let p2 = db.plan_post(&spec);
    let mut rows = None;
    for round in 0..30 {
        let plan = if round % 2 == 0 { &p1 } else { &p2 };
        let out = db.run(&spec, plan).unwrap();
        match &rows {
            None => rows = Some(out.rows.rows),
            Some(r) => assert_eq!(r, &out.rows.rows, "round {round} diverged"),
        }
        let live = db.volume().usage().live_pages;
        assert_eq!(
            live, live_after_load,
            "round {round}: temp pages leaked ({live} vs {live_after_load})"
        );
    }
    // Churn produced erases and recycled blocks.
    let stats = db.volume().nand().stats();
    assert!(stats.block_erases > 0, "no block was ever recycled");
    let (min_wear, max_wear) = db.volume().nand().wear_spread();
    assert!(
        max_wear - min_wear <= max_wear.max(4),
        "wear badly skewed: {min_wear}..{max_wear}"
    );
}

#[test]
fn flash_full_is_a_clean_error() {
    // A flash too small for the dataset + indexes must fail with the
    // volume-full error, not corrupt anything.
    let cfg = MedicalConfig::scaled(20_000);
    let data = generate_medical(&cfg).unwrap();
    let mut device = DeviceConfig::default_2007();
    device.flash.num_blocks = 8; // 1 MiB, far below the dataset + indexes
    match ghostdb::GhostDb::create(MEDICAL_DDL, device, &data) {
        Err(e) => assert!(e.to_string().contains("full"), "{e}"),
        Ok(_) => panic!("load cannot fit in 1 MiB"),
    }
}

#[test]
fn simulated_time_is_deterministic() {
    // Two identical databases execute identical queries in *exactly* the
    // same simulated time — the property that makes every experiment in
    // EXPERIMENTS.md reproducible bit-for-bit.
    let cfg = MedicalConfig::scaled(2_000);
    let data = generate_medical(&cfg).unwrap();
    let mk = || ghostdb::GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data).unwrap();
    let db1 = mk();
    let db2 = mk();
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.3);
    let a = db1.query(&sql).unwrap();
    let b = db2.query(&sql).unwrap();
    assert_eq!(a.rows.rows, b.rows.rows);
    assert_eq!(a.report.total_ns, b.report.total_ns);
    assert_eq!(a.report.ram_peak, b.report.ram_peak);
    assert_eq!(a.report.flash.page_reads, b.report.flash.page_reads);
}
