//! Flash lifecycle under sustained query churn: temp segments must be
//! reclaimed, the volume must not fill, and wear must stay spread.

mod common;

use ghostdb_flash::{Nand, Volume};
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_types::{DeviceConfig, FlashConfig, SimClock};
use ghostdb_workload::{generate_medical, selectivity_query, MedicalConfig, MEDICAL_DDL};

#[test]
fn repeated_spilling_queries_do_not_exhaust_flash() {
    let cfg = MedicalConfig::scaled(3_000);
    let data = generate_medical(&cfg).unwrap();
    // Small-ish flash so leaks would surface quickly (32 MiB) and a
    // tight RAM budget so translations must spill whole blocks of sort
    // runs — the churn that exercises block reclamation.
    let mut device = DeviceConfig::default_2007();
    device.flash.num_blocks = 256;
    device.ram_bytes = 16 * 1024;
    let db = ghostdb::GhostDb::create(MEDICAL_DDL, device, &data).unwrap();

    let live_after_load = db.volume().usage().live_pages;
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.8);
    let spec = db.bind(&sql).unwrap();
    let p1 = db.plan_pre(&spec);
    let p2 = db.plan_post(&spec);
    let mut rows = None;
    for round in 0..30 {
        let plan = if round % 2 == 0 { &p1 } else { &p2 };
        let out = db.run(&spec, plan).unwrap();
        match &rows {
            None => rows = Some(out.rows.rows),
            Some(r) => assert_eq!(r, &out.rows.rows, "round {round} diverged"),
        }
        let live = db.volume().usage().live_pages;
        assert_eq!(
            live, live_after_load,
            "round {round}: temp pages leaked ({live} vs {live_after_load})"
        );
    }
    // Churn produced erases and recycled blocks.
    let stats = db.volume().nand().stats();
    assert!(stats.block_erases > 0, "no block was ever recycled");
    let (min_wear, max_wear) = db.volume().nand().wear_spread();
    assert!(
        max_wear - min_wear <= max_wear.max(4),
        "wear badly skewed: {min_wear}..{max_wear}"
    );
}

/// The fragmentation case the garbage collector exists to fix: every
/// erase block ends up holding one long-lived dataset page interleaved
/// with temp-spill pages. Freeing the temps leaves no block fully dead,
/// so the seed's recycler (which only erased all-dead blocks) pinned
/// every block and reported "flash volume full" after ~32 rounds on this
/// geometry. With the GC, the volume must survive arbitrarily many
/// rounds, keep the persistent bytes intact across page migration, stay
/// inside the documented wear bound, and still catch double frees.
#[test]
fn interleaved_persistent_and_temp_churn_survives_gc() {
    // 256-block volume, 8 pages per block, 64 B pages (2 KiB blocks).
    let cfg = FlashConfig {
        page_size: 64,
        pages_per_block: 8,
        num_blocks: 256,
        ..FlashConfig::default_2007()
    };
    let vol = Volume::new(Nand::new(cfg, SimClock::new()));
    let budget = RamBudget::new(64 * 1024);
    let scope = RamScope::new(&budget);

    let mut persistent = Vec::new();
    for round in 0..40u32 {
        let tag = (round % 251) as u8;
        // Two writers share the allocation frontier, so their pages
        // interleave physically: one persistent page, then seven temp
        // pages, repeating — every block gets pinned by a keeper page.
        let mut keeper = vol.writer(&scope).unwrap();
        let mut temp = vol.writer(&scope).unwrap();
        for _ in 0..8 {
            keeper.write(&[tag; 64]).unwrap();
            temp.write(&[0xEE; 64 * 7]).unwrap();
        }
        let kseg = keeper.finish().unwrap();
        let tseg = temp.finish().unwrap();
        vol.free(tseg)
            .unwrap_or_else(|e| panic!("round {round}: temp free failed: {e}"));
        persistent.push((kseg, tag));
    }

    // The GC actually ran and reclaimed fragmented blocks.
    let gc = vol.gc_stats();
    assert!(
        gc.blocks_reclaimed > 0,
        "GC never reclaimed a block: {gc:?}"
    );
    assert!(gc.pages_migrated > 0, "GC never migrated a live page");

    // All persistent data survived page migration bit-for-bit.
    for (seg, tag) in &persistent {
        let mut r = vol.reader(&scope, seg).unwrap();
        let mut back = vec![0u8; seg.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(
            back.iter().all(|b| b == tag),
            "persistent segment corrupted after GC migration"
        );
    }

    // Wear-aware victim/destination selection keeps the spread bounded:
    // max − min erase count stays within 4 under this churn (the bound
    // documented in ROADMAP.md "Storage architecture").
    let (min_wear, max_wear) = vol.nand().wear_spread();
    assert!(
        max_wear - min_wear <= 4,
        "wear spread {min_wear}..{max_wear} exceeds documented bound of 4"
    );

    // Double-free invariant holds across remapping: a segment freed once
    // cannot be freed again, even after its pages were migrated.
    let (seg, _) = persistent.pop().unwrap();
    vol.free(seg.clone()).unwrap();
    let err = vol.free(seg).unwrap_err();
    assert!(err.to_string().contains("double free"), "{err}");
}

/// Churn with the dying-flash fault model armed — retention flips and
/// read disturb on every read path, blocks growing bad mid-program and
/// mid-erase — must stay invisible to the byte stream: reads come back
/// corrected, bad blocks retire with their live pages evacuated, and
/// the reliability counters prove the machinery actually engaged.
#[test]
fn churn_survives_bit_rot_and_grown_bad_blocks() {
    let cfg = FlashConfig {
        page_size: 64,
        pages_per_block: 8,
        num_blocks: 256,
        spare_blocks: 32,
        ..FlashConfig::default_2007()
    };
    let nand = Nand::new(cfg, SimClock::new());
    let vol = Volume::new(nand.clone());
    let budget = RamBudget::new(64 * 1024);
    let scope = RamScope::new(&budget);

    nand.arm_bit_rot(0xC0FFEE, 0.01, 64);
    nand.arm_program_failures(0xBAD, 0.002);
    nand.arm_erase_failures(0xBAD2, 0.002);

    let ps = vol.page_size();
    let mut persistent = Vec::new();
    for round in 0..40u32 {
        let tag = (round % 251) as u8;
        let mut keeper = vol.writer(&scope).unwrap();
        let mut temp = vol.writer(&scope).unwrap();
        for _ in 0..8 {
            keeper.write(&vec![tag; ps]).unwrap();
            temp.write(&vec![0xEE; ps * 7]).unwrap();
        }
        let kseg = keeper.finish().unwrap();
        let tseg = temp.finish().unwrap();
        vol.free(tseg)
            .unwrap_or_else(|e| panic!("round {round}: temp free failed: {e}"));
        persistent.push((kseg, tag));
    }

    // Every byte reads back exactly as written, rot notwithstanding.
    for (seg, tag) in &persistent {
        let mut r = vol.reader(&scope, seg).unwrap();
        let mut back = vec![0u8; seg.len() as usize];
        r.read_exact(&mut back).unwrap();
        assert!(
            back.iter().all(|b| b == tag),
            "persistent segment corrupted under armed faults"
        );
    }
    let rel = vol.reliability();
    assert!(
        rel.corrected > 0,
        "rot was armed; corrections must have happened: {rel:?}"
    );
    assert_eq!(
        rel.uncorrectable, 0,
        "in-budget rot must never surface as data loss: {rel:?}"
    );
    assert!(
        rel.retired_blocks <= rel.spare_blocks,
        "retirement stayed inside the spare budget: {rel:?}"
    );
    nand.disarm_bit_rot();
    nand.disarm_block_failures();
}

#[test]
fn flash_full_is_a_clean_error() {
    // A flash too small for the dataset + indexes must fail with the
    // volume-full error, not corrupt anything.
    let cfg = MedicalConfig::scaled(20_000);
    let data = generate_medical(&cfg).unwrap();
    let mut device = DeviceConfig::default_2007();
    device.flash.num_blocks = 8; // 1 MiB, far below the dataset + indexes
    match ghostdb::GhostDb::create(MEDICAL_DDL, device, &data) {
        Err(e) => assert!(e.to_string().contains("full"), "{e}"),
        Ok(_) => panic!("load cannot fit in 1 MiB"),
    }
}

#[test]
fn simulated_time_is_deterministic() {
    // Two identical databases execute identical queries in *exactly* the
    // same simulated time — the property that makes every experiment in
    // EXPERIMENTS.md reproducible bit-for-bit.
    let cfg = MedicalConfig::scaled(2_000);
    let data = generate_medical(&cfg).unwrap();
    let mk = || ghostdb::GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data).unwrap();
    let db1 = mk();
    let db2 = mk();
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.3);
    let a = db1.query(&sql).unwrap();
    let b = db2.query(&sql).unwrap();
    assert_eq!(a.rows.rows, b.rows.rows);
    assert_eq!(a.report.total_ns, b.report.total_ns);
    assert_eq!(a.report.ram_peak, b.report.ram_peak);
    assert_eq!(a.report.flash.page_reads, b.report.flash.page_reads);
}
