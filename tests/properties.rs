//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, not just the workloads the examples exercise.

mod common;

use ghostdb_bus::Message;
use ghostdb_catalog::TreeSchema;
use ghostdb_flash::{Nand, Volume};
use ghostdb_index::ExternalSorter;
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_types::{
    decode_all, ColumnId, DeviceConfig, RowId, ScalarOp, SimClock, TableId, Value, Wire,
};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1_000_000i32..1_000_000).prop_map(|d| Value::Date(ghostdb_types::Date(d))),
        "[ -~]{0,40}".prop_map(Value::Text),
    ]
}

fn scratch() -> (Volume, RamScope) {
    let device = DeviceConfig::default_2007();
    let volume = Volume::new(Nand::new(device.flash, SimClock::new()));
    let ram = RamBudget::new(device.ram_bytes);
    let scope = RamScope::new(&ram);
    (volume, scope)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The wire codec round-trips arbitrary values.
    #[test]
    fn wire_value_roundtrip(v in value_strategy()) {
        let bytes = v.to_bytes();
        let back: Value = decode_all(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Decoding arbitrary garbage never panics (errors are fine).
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_all::<Value>(&bytes);
        let _ = decode_all::<Message>(&bytes);
        let _ = decode_all::<Vec<RowId>>(&bytes);
        let _ = decode_all::<String>(&bytes);
    }

    /// Bus messages round-trip.
    #[test]
    fn wire_message_roundtrip(
        request in any::<u32>(),
        ids in proptest::collection::vec(any::<u32>(), 0..200),
        done in any::<bool>(),
    ) {
        let m = Message::IdChunk {
            request,
            ids: ids.into_iter().map(RowId).collect(),
            done,
        };
        let back: Message = decode_all(&m.to_bytes()).unwrap();
        prop_assert_eq!(back, m);
    }

    /// The external sorter agrees with std sort at any RAM budget.
    #[test]
    fn external_sort_matches_std(
        mut values in proptest::collection::vec(any::<u32>(), 0..1200),
        sort_ram in 64usize..4096,
    ) {
        let (volume, scope) = scratch();
        let mut sorter: ExternalSorter<u32> =
            ExternalSorter::new(&volume, &scope, sort_ram).unwrap();
        for &v in &values {
            sorter.push(v).unwrap();
        }
        let mut stream = sorter.finish().unwrap();
        let mut got = Vec::new();
        while let Some(v) = stream.next_rec().unwrap() {
            got.push(v);
        }
        values.sort_unstable();
        prop_assert_eq!(got, values);
    }

    /// ScalarOp::matches is consistent with the ordering of order keys
    /// for integers (the property the key-range reduction relies on).
    #[test]
    fn order_keys_agree_with_scalar_ops(a in any::<i64>(), b in any::<i64>()) {
        let ka = Value::Int(a).order_key().unwrap();
        let kb = Value::Int(b).order_key().unwrap();
        for op in [ScalarOp::Eq, ScalarOp::Lt, ScalarOp::Le, ScalarOp::Gt, ScalarOp::Ge] {
            let by_value = op.matches(&Value::Int(a), &Value::Int(b)).unwrap();
            let by_key = match op {
                ScalarOp::Eq => ka == kb,
                ScalarOp::Lt => ka < kb,
                ScalarOp::Le => ka <= kb,
                ScalarOp::Gt => ka > kb,
                ScalarOp::Ge => ka >= kb,
            };
            prop_assert_eq!(by_value, by_key, "op {} on {} {}", op, a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random two-level tree data: the full engine (best plan) agrees
    /// with the naive reference on random range predicates over a hidden
    /// and a visible column.
    #[test]
    fn random_tree_engine_matches_reference(
        seed in any::<u64>(),
        children in 4usize..40,
        fanout in 1usize..8,
        hidden_cut in 0i64..100,
        visible_cut in 0i64..100,
    ) {
        use ghostdb_storage::Dataset;
        const DDL: &str = "\
            CREATE TABLE Child (
              cid INTEGER PRIMARY KEY,
              vis INTEGER,
              hid INTEGER HIDDEN);
            CREATE TABLE Root (
              rid INTEGER PRIMARY KEY,
              amt INTEGER HIDDEN,
              cid REFERENCES Child(cid) HIDDEN);";
        let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
        let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        // Simple deterministic pseudo-random fill from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for i in 0..children as i64 {
            data.push_row(
                TableId(0),
                vec![Value::Int(i), Value::Int(next() % 100), Value::Int(next() % 100)],
            ).unwrap();
        }
        let roots = children * fanout;
        for i in 0..roots as i64 {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(i),
                    Value::Int(next() % 100),
                    Value::Int(next().rem_euclid(children as i64)),
                ],
            ).unwrap();
        }
        let db = ghostdb::GhostDb::create(DDL, DeviceConfig::default_2007(), &data).unwrap();
        let sql = format!(
            "SELECT Root.rid, Child.hid FROM Root, Child \
             WHERE Child.hid >= {hidden_cut} AND Child.vis < {visible_cut} \
               AND Root.cid = Child.cid"
        );
        let out = db.query(&sql).unwrap();
        let spec = db.bind(&sql).unwrap();
        let tree = TreeSchema::analyze(db.schema()).unwrap();
        let expect = ghostdb_workload::reference_execute(
            db.schema(), &tree, &data, spec.anchor, &spec.projections, &spec.predicates,
        ).unwrap();
        prop_assert_eq!(out.rows.rows, expect);
        let _ = ColumnId(0);
    }
}
