//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, not just the workloads the examples exercise.

mod common;

use ghostdb_bus::Message;
use ghostdb_catalog::TreeSchema;
use ghostdb_flash::{Nand, Volume};
use ghostdb_index::ExternalSorter;
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_types::{
    decode_all, ColumnId, DeviceConfig, RowId, ScalarOp, SimClock, TableId, Value, Wire,
};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1_000_000i32..1_000_000).prop_map(|d| Value::Date(ghostdb_types::Date(d))),
        "[ -~]{0,40}".prop_map(Value::Text),
    ]
}

fn scratch() -> (Volume, RamScope) {
    let device = DeviceConfig::default_2007();
    let volume = Volume::new(Nand::new(device.flash, SimClock::new()));
    let ram = RamBudget::new(device.ram_bytes);
    let scope = RamScope::new(&ram);
    (volume, scope)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The wire codec round-trips arbitrary values.
    #[test]
    fn wire_value_roundtrip(v in value_strategy()) {
        let bytes = v.to_bytes();
        let back: Value = decode_all(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Decoding arbitrary garbage never panics (errors are fine).
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_all::<Value>(&bytes);
        let _ = decode_all::<Message>(&bytes);
        let _ = decode_all::<Vec<RowId>>(&bytes);
        let _ = decode_all::<String>(&bytes);
    }

    /// Bus messages round-trip.
    #[test]
    fn wire_message_roundtrip(
        request in any::<u32>(),
        ids in proptest::collection::vec(any::<u32>(), 0..200),
        done in any::<bool>(),
    ) {
        let m = Message::IdChunk {
            request,
            ids: ids.into_iter().map(RowId).collect(),
            done,
        };
        let back: Message = decode_all(&m.to_bytes()).unwrap();
        prop_assert_eq!(back, m);
    }

    /// The external sorter agrees with std sort at any RAM budget.
    #[test]
    fn external_sort_matches_std(
        mut values in proptest::collection::vec(any::<u32>(), 0..1200),
        sort_ram in 64usize..4096,
    ) {
        let (volume, scope) = scratch();
        let mut sorter: ExternalSorter<u32> =
            ExternalSorter::new(&volume, &scope, sort_ram).unwrap();
        for &v in &values {
            sorter.push(v).unwrap();
        }
        let mut stream = sorter.finish().unwrap();
        let mut got = Vec::new();
        while let Some(v) = stream.next_rec().unwrap() {
            got.push(v);
        }
        values.sort_unstable();
        prop_assert_eq!(got, values);
    }

    /// ScalarOp::matches is consistent with the ordering of order keys
    /// for integers (the property the key-range reduction relies on).
    #[test]
    fn order_keys_agree_with_scalar_ops(a in any::<i64>(), b in any::<i64>()) {
        let ka = Value::Int(a).order_key().unwrap();
        let kb = Value::Int(b).order_key().unwrap();
        for op in [ScalarOp::Eq, ScalarOp::Lt, ScalarOp::Le, ScalarOp::Gt, ScalarOp::Ge] {
            let by_value = op.matches(&Value::Int(a), &Value::Int(b)).unwrap();
            let by_key = match op {
                ScalarOp::Eq => ka == kb,
                ScalarOp::Lt => ka < kb,
                ScalarOp::Le => ka <= kb,
                ScalarOp::Gt => ka > kb,
                ScalarOp::Ge => ka >= kb,
            };
            prop_assert_eq!(by_value, by_key, "op {} on {} {}", op, a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The blocked (galloping) merge intersection emits exactly the id
    /// sequence of the scalar id-at-a-time baseline, for arbitrary input
    /// lists.
    #[test]
    fn blocked_merge_matches_scalar(
        lists in proptest::collection::vec(
            proptest::collection::vec(any::<u16>(), 0..400),
            1..4,
        ),
    ) {
        use ghostdb_exec::{MergeIntersect, ScalarMergeIntersect};
        use ghostdb_types::{collect_ids, IdStream, ScalarFallback, VecIdStream};
        let lists: Vec<Vec<RowId>> = lists
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l.into_iter().map(|v| RowId(v as u32)).collect()
            })
            .collect();
        let blocked_inputs: Vec<Box<dyn IdStream>> = lists
            .iter()
            .map(|l| Box::new(VecIdStream::new(l.clone())) as Box<dyn IdStream>)
            .collect();
        let scalar_inputs: Vec<Box<dyn IdStream>> = lists
            .iter()
            .map(|l| {
                Box::new(ScalarFallback(VecIdStream::new(l.clone()))) as Box<dyn IdStream>
            })
            .collect();
        let mut blocked = MergeIntersect::new(blocked_inputs, SimClock::new(), 1);
        let mut scalar = ScalarMergeIntersect::new(scalar_inputs, SimClock::new(), 1);
        prop_assert_eq!(
            collect_ids(&mut blocked).unwrap(),
            collect_ids(&mut scalar).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random two-level tree data: the full engine (best plan) agrees
    /// with the naive reference on random range predicates over a hidden
    /// and a visible column.
    #[test]
    fn random_tree_engine_matches_reference(
        seed in any::<u64>(),
        children in 4usize..40,
        fanout in 1usize..8,
        hidden_cut in 0i64..100,
        visible_cut in 0i64..100,
    ) {
        use ghostdb_storage::Dataset;
        const DDL: &str = "\
            CREATE TABLE Child (
              cid INTEGER PRIMARY KEY,
              vis INTEGER,
              hid INTEGER HIDDEN);
            CREATE TABLE Root (
              rid INTEGER PRIMARY KEY,
              amt INTEGER HIDDEN,
              cid REFERENCES Child(cid) HIDDEN);";
        let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
        let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        // Simple deterministic pseudo-random fill from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for i in 0..children as i64 {
            data.push_row(
                TableId(0),
                vec![Value::Int(i), Value::Int(next() % 100), Value::Int(next() % 100)],
            ).unwrap();
        }
        let roots = children * fanout;
        for i in 0..roots as i64 {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(i),
                    Value::Int(next() % 100),
                    Value::Int(next().rem_euclid(children as i64)),
                ],
            ).unwrap();
        }
        let db = ghostdb::GhostDb::create(DDL, DeviceConfig::default_2007(), &data).unwrap();
        let sql = format!(
            "SELECT Root.rid, Child.hid FROM Root, Child \
             WHERE Child.hid >= {hidden_cut} AND Child.vis < {visible_cut} \
               AND Root.cid = Child.cid"
        );
        let out = db.query(&sql).unwrap();
        let spec = db.bind(&sql).unwrap();
        let tree = TreeSchema::analyze(db.schema()).unwrap();
        let expect = ghostdb_workload::reference_execute(
            db.schema(), &tree, &data, spec.anchor, &spec.projections, &spec.predicates,
        ).unwrap();
        prop_assert_eq!(out.rows.rows, expect);
        let _ = ColumnId(0);
    }
}

mod insert_equivalence {
    //! The write path's ground truth (PR 3 acceptance): a query issued
    //! after N post-load inserts returns exactly the rows the same query
    //! returns on a fresh `GhostDb::create` whose initial dataset
    //! contains those rows — across random insert batches, before and
    //! after a forced delta flush/merge, on every enumerated plan and
    //! both pipeline modes (so the blocked/scalar equivalence is also
    //! proven on datasets containing un-flushed deltas).

    use ghostdb::GhostDb;
    use ghostdb_storage::Dataset;
    use ghostdb_types::{DeviceConfig, TableId, Value};
    use proptest::prelude::*;

    const DDL: &str = "\
        CREATE TABLE Child (
          cid INTEGER PRIMARY KEY,
          vis INTEGER,
          hid INTEGER HIDDEN,
          tag CHAR(12) HIDDEN);
        CREATE TABLE Root (
          rid INTEGER PRIMARY KEY,
          amt INTEGER HIDDEN,
          cid REFERENCES Child(cid) HIDDEN);";

    fn child_row(i: i64, next: &mut impl FnMut() -> i64, tags: usize) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::Int(next() % 50),
            Value::Int(next() % 50),
            // Tag pool size controls how often inserts mint strings the
            // base dictionary has never seen.
            Value::Text(format!("tag-{}", next().rem_euclid(tags as i64))),
        ]
    }

    fn root_row(i: i64, children: i64, next: &mut impl FnMut() -> i64) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::Int(next() % 50),
            Value::Int(next().rem_euclid(children)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        #[test]
        fn inserted_and_fresh_loaded_agree(
            seed in any::<u64>(),
            base_children in 3usize..12,
            base_roots in 5usize..30,
            ins_children in 1usize..6,
            ins_roots in 1usize..12,
            hidden_cut in 0i64..50,
            tag_pick in 0usize..12,
        ) {
            let mut state = seed | 1;
            let mut next = move || -> i64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as i64
            };
            let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
            let schema = ghostdb_sql::bind_schema(&stmts).unwrap();

            // Base load.
            let mut base = Dataset::empty(&schema);
            for i in 0..base_children as i64 {
                base.push_row(TableId(0), child_row(i, &mut next, 6)).unwrap();
            }
            for i in 0..base_roots as i64 {
                base.push_row(TableId(1), root_row(i, base_children as i64, &mut next)).unwrap();
            }
            // Random insert batches (a larger tag pool than the base
            // used, so some strings are outside the base dictionary).
            let mut child_batch = Vec::new();
            for i in 0..ins_children as i64 {
                child_batch.push(child_row(base_children as i64 + i, &mut next, 12));
            }
            let total_children = (base_children + ins_children) as i64;
            let mut root_batch = Vec::new();
            for i in 0..ins_roots as i64 {
                root_batch.push(root_row(base_roots as i64 + i, total_children, &mut next));
            }

            // Post-load inserts (auto-flush disabled: the test forces
            // the flush at a known point instead).
            let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
            let mut db = GhostDb::create(DDL, config.clone(), &base).unwrap();
            db.insert_rows(TableId(0), child_batch.clone()).unwrap();
            db.insert_rows(TableId(1), root_batch.clone()).unwrap();
            prop_assert_eq!(db.delta_rows(), (ins_children + ins_roots) as u64);

            // The same rows in the initial dataset.
            let mut full = base.clone();
            for r in &child_batch {
                full.push_row(TableId(0), r.clone()).unwrap();
            }
            for r in &root_batch {
                full.push_row(TableId(1), r.clone()).unwrap();
            }
            let fresh = GhostDb::create(DDL, config, &full).unwrap();

            let queries = [
                format!(
                    "SELECT Root.rid, Child.tag FROM Root, Child \
                     WHERE Child.tag = 'tag-{tag_pick}' AND Root.cid = Child.cid"
                ),
                format!(
                    "SELECT Root.rid, Child.hid FROM Root, Child \
                     WHERE Child.hid >= {hidden_cut} AND Child.vis < 40 \
                       AND Root.cid = Child.cid"
                ),
                "SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-3'".to_string(),
                format!("SELECT Root.rid FROM Root WHERE Root.amt <= {hidden_cut}"),
            ];
            for phase in ["unflushed", "flushed"] {
                for sql in &queries {
                    let expect = fresh.query(sql).unwrap().rows.rows;
                    let spec = db.bind(sql).unwrap();
                    for cp in db.plans(sql).unwrap() {
                        let blocked = db.run(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &blocked.rows.rows, &expect,
                            "{}/blocked plan {}: {}", phase, cp.plan.label, sql
                        );
                        let scalar = db.run_scalar(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &scalar.rows.rows, &expect,
                            "{}/scalar plan {}: {}", phase, cp.plan.label, sql
                        );
                    }
                }
                if phase == "unflushed" {
                    prop_assert_eq!(
                        db.flush_deltas().unwrap(),
                        (ins_children + ins_roots) as u64
                    );
                    prop_assert_eq!(db.delta_rows(), 0);
                }
            }
        }
    }
}

mod mutation_equivalence {
    //! The full-DML ground truth (PR 5 acceptance): after any random
    //! interleaving of insert/delete/update batches, every enumerated
    //! plan on either pipeline returns exactly what the same query
    //! returns on a fresh `GhostDb::create` of **the surviving rows** —
    //! survivors renumbered dense, foreign keys re-pointed, updated
    //! values in place (`Vec::remove` semantics). Held in three states:
    //! tombstone-resident (before any flush), physically compacted
    //! (after `flush_deltas`), and across a seal → power-cut → mount
    //! (mutations committed after the seal replay from the WAL).

    use ghostdb::GhostDb;
    use ghostdb_storage::Dataset;
    use ghostdb_types::{ColumnId, DeviceConfig, RowId, TableId, Value};
    use proptest::prelude::*;

    const DDL: &str = "\
        CREATE TABLE Child (
          cid INTEGER PRIMARY KEY,
          vis INTEGER,
          hid INTEGER HIDDEN,
          tag CHAR(12) HIDDEN);
        CREATE TABLE Root (
          rid INTEGER PRIMARY KEY,
          amt INTEGER HIDDEN,
          cid REFERENCES Child(cid) HIDDEN);";

    /// Host-side oracle: plain vectors mutated with `Vec::remove`
    /// semantics — exactly the logical view the engine must expose.
    #[derive(Clone, Default)]
    struct Mirror {
        /// (vis, hid, tag) per live child, dense.
        children: Vec<(i64, i64, String)>,
        /// (amt, cid) per live root, dense; cid indexes `children`.
        roots: Vec<(i64, i64)>,
    }

    impl Mirror {
        fn dataset(&self, schema: &ghostdb_catalog::Schema) -> Dataset {
            let mut d = Dataset::empty(schema);
            for (i, (vis, hid, tag)) in self.children.iter().enumerate() {
                d.push_row(
                    TableId(0),
                    vec![
                        Value::Int(i as i64),
                        Value::Int(*vis),
                        Value::Int(*hid),
                        Value::Text(tag.clone()),
                    ],
                )
                .unwrap();
            }
            for (i, (amt, cid)) in self.roots.iter().enumerate() {
                d.push_row(
                    TableId(1),
                    vec![Value::Int(i as i64), Value::Int(*amt), Value::Int(*cid)],
                )
                .unwrap();
            }
            d
        }

        fn referenced(&self, cid: i64) -> bool {
            self.roots.iter().any(|(_, c)| *c == cid)
        }
    }

    /// Apply `steps` random mutation batches to both the engine and the
    /// mirror.
    fn mutate(
        db: &mut GhostDb,
        mirror: &mut Mirror,
        next: &mut impl FnMut() -> i64,
        steps: usize,
        tags: usize,
    ) {
        for _ in 0..steps {
            match next().rem_euclid(6) {
                // Insert children.
                0 => {
                    let n = 1 + next().rem_euclid(3) as usize;
                    let start = mirror.children.len();
                    let mut batch = Vec::new();
                    for k in 0..n {
                        let (vis, hid) = (next() % 50, next() % 50);
                        let tag = format!("tag-{}", next().rem_euclid(tags as i64));
                        batch.push(vec![
                            Value::Int((start + k) as i64),
                            Value::Int(vis),
                            Value::Int(hid),
                            Value::Text(tag.clone()),
                        ]);
                        mirror.children.push((vis, hid, tag));
                    }
                    db.insert_rows(TableId(0), batch).unwrap();
                }
                // Insert roots.
                1 => {
                    if mirror.children.is_empty() {
                        continue;
                    }
                    let n = 1 + next().rem_euclid(4) as usize;
                    let start = mirror.roots.len();
                    let mut batch = Vec::new();
                    for k in 0..n {
                        let amt = next() % 50;
                        let cid = next().rem_euclid(mirror.children.len() as i64);
                        batch.push(vec![
                            Value::Int((start + k) as i64),
                            Value::Int(amt),
                            Value::Int(cid),
                        ]);
                        mirror.roots.push((amt, cid));
                    }
                    db.insert_rows(TableId(1), batch).unwrap();
                }
                // Delete roots (freely: nothing references the root).
                2 => {
                    if mirror.roots.is_empty() {
                        continue;
                    }
                    let mut picks: Vec<u32> = (0..1 + next().rem_euclid(3))
                        .map(|_| next().rem_euclid(mirror.roots.len() as i64) as u32)
                        .collect();
                    picks.sort_unstable();
                    picks.dedup();
                    db.delete_rows(TableId(1), picks.iter().map(|&r| RowId(r)).collect())
                        .unwrap();
                    for &r in picks.iter().rev() {
                        mirror.roots.remove(r as usize);
                    }
                }
                // Delete one unreferenced child (RESTRICT-safe).
                3 => {
                    let free: Vec<usize> = (0..mirror.children.len())
                        .filter(|&c| !mirror.referenced(c as i64))
                        .collect();
                    if free.is_empty() {
                        continue;
                    }
                    let c = free[next().rem_euclid(free.len() as i64) as usize];
                    db.delete_rows(TableId(0), vec![RowId(c as u32)]).unwrap();
                    mirror.children.remove(c);
                    for (_, cid) in mirror.roots.iter_mut() {
                        assert_ne!(*cid, c as i64, "picked a referenced child");
                        if *cid > c as i64 {
                            *cid -= 1;
                        }
                    }
                }
                // Update a child: visible vis + hidden tag (dict strings,
                // sometimes outside every dictionary so far).
                4 => {
                    if mirror.children.is_empty() {
                        continue;
                    }
                    let c = next().rem_euclid(mirror.children.len() as i64) as usize;
                    let vis = next() % 50;
                    let tag = format!("tag-{}", next().rem_euclid((2 * tags) as i64));
                    db.update_rows(
                        TableId(0),
                        vec![RowId(c as u32)],
                        vec![
                            (ColumnId(1), Value::Int(vis)),
                            (ColumnId(3), Value::Text(tag.clone())),
                        ],
                    )
                    .unwrap();
                    mirror.children[c].0 = vis;
                    mirror.children[c].2 = tag;
                }
                // Update hidden integers on a couple of roots.
                _ => {
                    if mirror.roots.is_empty() {
                        continue;
                    }
                    let mut picks: Vec<u32> = (0..1 + next().rem_euclid(2))
                        .map(|_| next().rem_euclid(mirror.roots.len() as i64) as u32)
                        .collect();
                    picks.sort_unstable();
                    picks.dedup();
                    let amt = next() % 50;
                    db.update_rows(
                        TableId(1),
                        picks.iter().map(|&r| RowId(r)).collect(),
                        vec![(ColumnId(1), Value::Int(amt))],
                    )
                    .unwrap();
                    for &r in &picks {
                        mirror.roots[r as usize].0 = amt;
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn mutated_and_fresh_loaded_agree(
            seed in any::<u64>(),
            base_children in 3usize..10,
            base_roots in 6usize..24,
            steps in 4usize..14,
            hidden_cut in 0i64..50,
            tag_pick in 0usize..12,
        ) {
            let mut state = seed | 1;
            let mut next = move || -> i64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as i64
            };
            let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
            let schema = ghostdb_sql::bind_schema(&stmts).unwrap();

            // Base load.
            let mut mirror = Mirror::default();
            for _ in 0..base_children {
                let (vis, hid) = (next() % 50, next() % 50);
                let tag = format!("tag-{}", next().rem_euclid(6));
                mirror.children.push((vis, hid, tag));
            }
            for _ in 0..base_roots {
                let amt = next() % 50;
                let cid = next().rem_euclid(mirror.children.len() as i64);
                mirror.roots.push((amt, cid));
            }
            let base = mirror.dataset(&schema);
            let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
            let mut db = GhostDb::create(DDL, config.clone(), &base).unwrap();

            // Random interleaved mutations.
            mutate(&mut db, &mut mirror, &mut next, steps, 6);

            let queries = [
                format!(
                    "SELECT Root.rid, Child.tag FROM Root, Child \
                     WHERE Child.tag = 'tag-{tag_pick}' AND Root.cid = Child.cid"
                ),
                format!(
                    "SELECT Root.rid, Child.hid FROM Root, Child \
                     WHERE Child.hid >= {hidden_cut} AND Child.vis < 40 \
                       AND Root.cid = Child.cid"
                ),
                "SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-3'".to_string(),
                format!("SELECT Root.rid, Root.cid FROM Root WHERE Root.amt <= {hidden_cut}"),
            ];
            let check = |db: &GhostDb, oracle: &GhostDb, phase: &str| {
                for sql in &queries {
                    let expect = oracle.query(sql).unwrap().rows.rows;
                    let spec = db.bind(sql).unwrap();
                    for cp in db.plans(sql).unwrap() {
                        let blocked = db.run(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &blocked.rows.rows, &expect,
                            "{}/blocked plan {}: {}", phase, cp.plan.label, sql
                        );
                        let scalar = db.run_scalar(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &scalar.rows.rows, &expect,
                            "{}/scalar plan {}: {}", phase, cp.plan.label, sql
                        );
                    }
                }
            };

            // Phase 1: tombstone-resident (no flush has run).
            let fresh = GhostDb::create(DDL, config.clone(), &mirror.dataset(&schema)).unwrap();
            prop_assert_eq!(db.stats().rows(TableId(0)), mirror.children.len() as u64);
            prop_assert_eq!(db.stats().rows(TableId(1)), mirror.roots.len() as u64);
            check(&db, &fresh, "tombstone-resident");

            // Phase 2: physically compacted.
            db.flush_deltas().unwrap();
            prop_assert_eq!(db.delta_rows(), 0);
            check(&db, &fresh, "compacted");

            // Phase 3: seal, mutate again (WAL-resident), power-cut,
            // mount — the replayed state must match the updated mirror.
            db.seal().unwrap();
            mutate(&mut db, &mut mirror, &mut next, steps / 2 + 1, 6);
            let nand = db.nand().clone();
            drop(db);
            let db = GhostDb::mount(nand, config.clone()).unwrap();
            let fresh = GhostDb::create(DDL, config, &mirror.dataset(&schema)).unwrap();
            prop_assert_eq!(db.stats().rows(TableId(0)), mirror.children.len() as u64);
            prop_assert_eq!(db.stats().rows(TableId(1)), mirror.roots.len() as u64);
            check(&db, &fresh, "wal-replayed");
        }
    }
}

mod seal_mount_equivalence {
    //! The durability subsystem's ground truth (PR 4 acceptance): a
    //! database sealed to flash, "unplugged" (dropped), and remounted
    //! from the NAND alone answers every query exactly like a fresh
    //! `GhostDb::create` of the same content — across random insert
    //! batches committed *after* the seal (so they exist only in the
    //! WAL and must replay), every enumerated plan, both pipeline
    //! modes, and again after the replayed deltas are flushed (which
    //! re-seals) and the key is power-cycled a second time.

    use ghostdb::GhostDb;
    use ghostdb_storage::Dataset;
    use ghostdb_types::{DeviceConfig, TableId, Value};
    use proptest::prelude::*;

    const DDL: &str = "\
        CREATE TABLE Child (
          cid INTEGER PRIMARY KEY,
          vis INTEGER,
          hid INTEGER HIDDEN,
          tag CHAR(12) HIDDEN);
        CREATE TABLE Root (
          rid INTEGER PRIMARY KEY,
          amt INTEGER HIDDEN,
          cid REFERENCES Child(cid) HIDDEN);";

    fn child_row(i: i64, next: &mut impl FnMut() -> i64, tags: usize) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::Int(next() % 50),
            Value::Int(next() % 50),
            Value::Text(format!("tag-{}", next().rem_euclid(tags as i64))),
        ]
    }

    fn root_row(i: i64, children: i64, next: &mut impl FnMut() -> i64) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::Int(next() % 50),
            Value::Int(next().rem_euclid(children)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

        #[test]
        fn sealed_mounted_and_fresh_loaded_agree(
            seed in any::<u64>(),
            base_children in 3usize..10,
            base_roots in 5usize..24,
            ins_children in 1usize..5,
            ins_roots in 1usize..8,
            hidden_cut in 0i64..50,
            tag_pick in 0usize..12,
        ) {
            let mut state = seed | 1;
            let mut next = move || -> i64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as i64
            };
            let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
            let schema = ghostdb_sql::bind_schema(&stmts).unwrap();

            let mut base = Dataset::empty(&schema);
            for i in 0..base_children as i64 {
                base.push_row(TableId(0), child_row(i, &mut next, 6)).unwrap();
            }
            for i in 0..base_roots as i64 {
                base.push_row(TableId(1), root_row(i, base_children as i64, &mut next)).unwrap();
            }
            let mut child_batch = Vec::new();
            for i in 0..ins_children as i64 {
                child_batch.push(child_row(base_children as i64 + i, &mut next, 12));
            }
            let total_children = (base_children + ins_children) as i64;
            let mut root_batch = Vec::new();
            for i in 0..ins_roots as i64 {
                root_batch.push(root_row(base_roots as i64 + i, total_children, &mut next));
            }

            // Seal the base, then insert: the batches live only in the
            // flash WAL (and RAM deltas the unplug below discards).
            let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
            let mut db = GhostDb::create(DDL, config.clone(), &base).unwrap();
            db.seal().unwrap();
            db.insert_rows(TableId(0), child_batch.clone()).unwrap();
            db.insert_rows(TableId(1), root_batch.clone()).unwrap();

            // The same content as one initial dataset (the oracle).
            let mut full = base.clone();
            for r in &child_batch {
                full.push_row(TableId(0), r.clone()).unwrap();
            }
            for r in &root_batch {
                full.push_row(TableId(1), r.clone()).unwrap();
            }
            let fresh = GhostDb::create(DDL, config.clone(), &full).unwrap();

            // Unplug and remount: base from metadata segments, inserts
            // from WAL replay.
            let nand = db.nand().clone();
            drop(db);
            let mut db = GhostDb::mount(nand, config.clone()).unwrap();
            prop_assert_eq!(db.delta_rows(), (ins_children + ins_roots) as u64);

            let queries = [
                format!(
                    "SELECT Root.rid, Child.tag FROM Root, Child \
                     WHERE Child.tag = 'tag-{tag_pick}' AND Root.cid = Child.cid"
                ),
                format!(
                    "SELECT Root.rid, Child.hid FROM Root, Child \
                     WHERE Child.hid >= {hidden_cut} AND Child.vis < 40 \
                       AND Root.cid = Child.cid"
                ),
                "SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-3'".to_string(),
                format!("SELECT Root.rid FROM Root WHERE Root.amt <= {hidden_cut}"),
            ];
            let check = |db: &GhostDb, phase: &str| {
                for sql in &queries {
                    let expect = fresh.query(sql).unwrap().rows.rows;
                    let spec = db.bind(sql).unwrap();
                    for cp in db.plans(sql).unwrap() {
                        let blocked = db.run(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &blocked.rows.rows, &expect,
                            "{}/blocked plan {}: {}", phase, cp.plan.label, sql
                        );
                        let scalar = db.run_scalar(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &scalar.rows.rows, &expect,
                            "{}/scalar plan {}: {}", phase, cp.plan.label, sql
                        );
                    }
                }
            };
            check(&db, "wal-replayed");

            // Flush (re-seals under a new epoch), power-cycle again:
            // this time everything mounts from the metadata segments.
            prop_assert_eq!(db.flush_deltas().unwrap(), (ins_children + ins_roots) as u64);
            let nand = db.nand().clone();
            drop(db);
            let db = GhostDb::mount(nand, config).unwrap();
            prop_assert_eq!(db.delta_rows(), 0);
            check(&db, "flushed-resealed");
        }
    }
}

mod aggregate_equivalence {
    //! The analytic surface's ground truth (PR 7 acceptance): random
    //! aggregate/range/ORDER BY/LIMIT queries must agree with a
    //! host-side reference — an independent reimplementation of the
    //! documented epilogue semantics (`docs/SQL.md`: first-seen group
    //! order, stable sort, truncating AVG, COUNT-only zero-group rule)
    //! applied to the rows the *plain* form of the same query returns.
    //! Checked across every enumerated plan, both pipelines, in the
    //! tombstone-resident state after random deletes, and again after
    //! the physical flush.

    use std::cmp::Ordering;
    use std::collections::HashMap;

    use ghostdb::GhostDb;
    use ghostdb_storage::Dataset;
    use ghostdb_types::{DeviceConfig, TableId, Value};
    use proptest::prelude::*;

    const DDL: &str = "\
        CREATE TABLE Child (
          cid INTEGER PRIMARY KEY,
          vis INTEGER,
          hid INTEGER HIDDEN,
          tag CHAR(12) HIDDEN);
        CREATE TABLE Root (
          rid INTEGER PRIMARY KEY,
          amt INTEGER HIDDEN,
          cid REFERENCES Child(cid) HIDDEN);";

    /// One SELECT item of the host reference, indexing the base
    /// (pre-epilogue) projection row.
    #[derive(Clone, Copy)]
    enum Item {
        Col(usize),
        Count,
        Sum(usize),
        Avg(usize),
        Min(usize),
        Max(usize),
    }

    struct Case {
        /// The analytic statement under test.
        analytic: String,
        /// Its plain SPJ core: same FROM/WHERE, projecting the base
        /// columns `Item` indexes refer to — the engine's own (already
        /// reference-proven) row stream defines arrival order.
        base: String,
        output: Vec<Item>,
        group_by: Vec<usize>,
        /// `(output item, desc)` sort keys.
        order_by: Vec<(usize, bool)>,
        limit: Option<usize>,
    }

    /// Host-side reimplementation of the epilogue semantics.
    fn host_epilogue(rows: &[Vec<Value>], case: &Case) -> Vec<Vec<Value>> {
        let has_agg = case.output.iter().any(|i| !matches!(i, Item::Col(_)));
        let mut out: Vec<(Vec<Value>, usize)> = Vec::new();
        if has_agg || !case.group_by.is_empty() {
            let mut idx: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut groups: Vec<Vec<&Vec<Value>>> = Vec::new();
            for r in rows {
                let key: Vec<Value> = case.group_by.iter().map(|&i| r[i].clone()).collect();
                let gi = *idx.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(r);
            }
            if groups.is_empty() && case.group_by.is_empty() {
                if case.output.iter().all(|i| matches!(i, Item::Count)) {
                    out.push((vec![Value::Int(0); case.output.len()], 0));
                }
            } else {
                for (gi, g) in groups.iter().enumerate() {
                    let row = case
                        .output
                        .iter()
                        .map(|item| match item {
                            Item::Col(i) => g[0][*i].clone(),
                            Item::Count => Value::Int(g.len() as i64),
                            Item::Sum(i) => {
                                Value::Int(g.iter().map(|r| r[*i].as_int().unwrap()).sum::<i64>())
                            }
                            Item::Avg(i) => {
                                let s: i128 =
                                    g.iter().map(|r| r[*i].as_int().unwrap() as i128).sum();
                                Value::Int((s / g.len() as i128) as i64)
                            }
                            Item::Min(i) => g
                                .iter()
                                .map(|r| r[*i].clone())
                                .min_by(|a, b| a.cmp_same_type(b).unwrap())
                                .unwrap(),
                            Item::Max(i) => g
                                .iter()
                                .map(|r| r[*i].clone())
                                .max_by(|a, b| a.cmp_same_type(b).unwrap())
                                .unwrap(),
                        })
                        .collect();
                    out.push((row, gi));
                }
            }
        } else {
            for (ri, r) in rows.iter().enumerate() {
                let row = case
                    .output
                    .iter()
                    .map(|item| match item {
                        Item::Col(i) => r[*i].clone(),
                        _ => unreachable!("aggregate without fold"),
                    })
                    .collect();
                out.push((row, ri));
            }
        }
        if !case.order_by.is_empty() {
            out.sort_by(|a, b| {
                for &(i, desc) in &case.order_by {
                    let o = a.0[i].cmp_same_type(&b.0[i]).unwrap();
                    let o = if desc { o.reverse() } else { o };
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.1.cmp(&b.1)
            });
        }
        if let Some(k) = case.limit {
            out.truncate(k);
        }
        out.into_iter().map(|(r, _)| r).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn device_aggregates_match_host_reference(
            seed in any::<u64>(),
            children in 4usize..14,
            roots in 6usize..30,
            lo in 0i64..50,
            span in 0i64..30,
            vcut in 0i64..50,
            k in 1usize..8,
            del_cut in 0i64..25,
        ) {
            let mut state = seed | 1;
            let mut next = move || -> i64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as i64
            };
            let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
            let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
            let mut data = Dataset::empty(&schema);
            for i in 0..children as i64 {
                data.push_row(TableId(0), vec![
                    Value::Int(i),
                    Value::Int(next() % 50),
                    Value::Int(next() % 50),
                    Value::Text(format!("tag-{}", next().rem_euclid(6))),
                ]).unwrap();
            }
            for i in 0..roots as i64 {
                data.push_row(TableId(1), vec![
                    Value::Int(i),
                    Value::Int(next() % 50),
                    Value::Int(next().rem_euclid(children as i64)),
                ]).unwrap();
            }
            let config = DeviceConfig::default_2007().with_delta_flush_rows(0);
            let mut db = GhostDb::create(DDL, config, &data).unwrap();
            let hi = lo + span;

            let cases = [
                // Grouped aggregates over hidden columns, BETWEEN range.
                Case {
                    analytic: format!(
                        "SELECT Child.vis, COUNT(*), SUM(Child.hid), MIN(Child.tag), \
                                MAX(Child.hid) \
                         FROM Child WHERE Child.hid BETWEEN {lo} AND {hi} \
                         GROUP BY Child.vis ORDER BY Child.vis"
                    ),
                    base: format!(
                        "SELECT Child.vis, Child.hid, Child.tag FROM Child \
                         WHERE Child.hid BETWEEN {lo} AND {hi}"
                    ),
                    output: vec![Item::Col(0), Item::Count, Item::Sum(1), Item::Min(2),
                                 Item::Max(1)],
                    group_by: vec![0],
                    order_by: vec![(0, false)],
                    limit: None,
                },
                // Plain top-k: ORDER BY ordinals, DESC, LIMIT.
                Case {
                    analytic: format!(
                        "SELECT Child.cid, Child.hid FROM Child \
                         WHERE Child.vis >= {vcut} ORDER BY 2 DESC, 1 LIMIT {k}"
                    ),
                    base: format!(
                        "SELECT Child.cid, Child.hid FROM Child WHERE Child.vis >= {vcut}"
                    ),
                    output: vec![Item::Col(0), Item::Col(1)],
                    group_by: vec![],
                    order_by: vec![(1, true), (0, false)],
                    limit: Some(k),
                },
                // Global aggregates (possibly over zero rows).
                Case {
                    analytic: format!(
                        "SELECT COUNT(*), AVG(Root.amt) FROM Root \
                         WHERE Root.amt BETWEEN {lo} AND {hi}"
                    ),
                    base: format!(
                        "SELECT Root.amt FROM Root WHERE Root.amt BETWEEN {lo} AND {hi}"
                    ),
                    output: vec![Item::Count, Item::Avg(0)],
                    group_by: vec![],
                    order_by: vec![],
                    limit: None,
                },
                // Join + GROUP BY + ORDER BY an aggregate + LIMIT.
                Case {
                    analytic: format!(
                        "SELECT Child.vis, COUNT(*) FROM Root, Child \
                         WHERE Root.amt >= {vcut} AND Root.cid = Child.cid \
                         GROUP BY Child.vis ORDER BY 2 DESC, 1 LIMIT {k}"
                    ),
                    base: format!(
                        "SELECT Child.vis FROM Root, Child \
                         WHERE Root.amt >= {vcut} AND Root.cid = Child.cid"
                    ),
                    output: vec![Item::Col(0), Item::Count],
                    group_by: vec![0],
                    order_by: vec![(1, true), (0, false)],
                    limit: Some(k),
                },
            ];

            let check = |db: &GhostDb, phase: &str| {
                for case in &cases {
                    let base_rows = db.query(&case.base).unwrap().rows.rows;
                    let expect = host_epilogue(&base_rows, case);
                    let spec = db.bind(&case.analytic).unwrap();
                    for cp in db.plans(&case.analytic).unwrap() {
                        let blocked = db.run(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &blocked.rows.rows, &expect,
                            "{}/blocked plan {}: {}", phase, cp.plan.label, case.analytic
                        );
                        let scalar = db.run_scalar(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &scalar.rows.rows, &expect,
                            "{}/scalar plan {}: {}", phase, cp.plan.label, case.analytic
                        );
                    }
                }
            };

            check(&db, "loaded");
            // Random deletes: aggregates must respect tombstones...
            db.execute(&format!("DELETE FROM Root WHERE amt <= {del_cut}")).unwrap();
            check(&db, "tombstone-resident");
            // ...and survive the physical compaction.
            db.flush_deltas().unwrap();
            check(&db, "compacted");
        }
    }
}

mod pipeline_equivalence {
    //! The batched (blocked) pipeline and the scalar fallback must be
    //! observationally identical: same rows, same per-operator tuple
    //! counts, across random plans. Only simulated timings (and the
    //! amount of data the galloping merge *touches* on its input
    //! streams) may differ.

    use super::common::medical_db;
    use ghostdb_exec::ExecReport;
    use proptest::prelude::*;

    /// The result-bearing operators whose tuple counts are structural:
    /// every id/row that flows through them is part of the query's
    /// semantics. (Source streams are excluded on purpose — the whole
    /// point of `seek_at_least` is that the blocked merge touches fewer
    /// of their ids.)
    const SEMANTIC_OPS: &[&str] = &[
        "merge-intersect",
        "access-skt",
        "anchor-rows",
        "fetch-column",
        "bloom-build",
        "bloom-probe",
        "hidden-verify",
        "project",
    ];

    fn semantic_counts(report: &ExecReport) -> Vec<(String, u64, u64)> {
        report
            .ops
            .iter()
            .filter(|op| SEMANTIC_OPS.contains(&op.name.as_str()))
            .map(|op| (op.name.clone(), op.tuples_in, op.tuples_out))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

        /// Every enumerated plan of a random conjunctive query returns
        /// byte-identical rows and identical semantic tuple counts under
        /// both pipelines.
        #[test]
        fn blocked_and_scalar_pipelines_agree(
            quantity in 1i64..10,
            q_op in 0usize..3,
            date_frac in 0.0f64..1.0,
            purpose in prop::sample::select(vec!["Sclerosis", "Checkup", "Diabetes"]),
            use_type in proptest::any::<bool>(),
        ) {
            let (db, cfg) = medical_db(700);
            let ops = ["=", ">", "<="];
            let cutoff = ghostdb_types::Date(
                cfg.date_start.0 + ((cfg.date_span_days as f64) * date_frac) as i32,
            );
            let mut sql = format!(
                "SELECT Pre.PreID, Vis.Purpose, Med.Name \
                 FROM Prescription Pre, Visit Vis, Medicine Med \
                 WHERE Pre.Quantity {} {} \
                   AND Vis.Date > '{}' \
                   AND Vis.Purpose = '{}' ",
                ops[q_op], quantity, cutoff, purpose,
            );
            if use_type {
                sql.push_str("AND Med.Type = 'Antibiotic' ");
            }
            sql.push_str("AND Vis.VisID = Pre.VisID AND Med.MedID = Pre.MedID");

            let spec = db.bind(&sql).unwrap();
            let plans = db.plans(&sql).unwrap();
            prop_assert!(!plans.is_empty());
            // First, middle, and last plan: the panel spans pure
            // Pre-filtering through Bloom-heavy Post-filtering.
            let picks = [0, plans.len() / 2, plans.len() - 1];
            for &pi in &picks {
                let plan = &plans[pi].plan;
                let blocked = db.run(&spec, plan).unwrap();
                let scalar = db.run_scalar(&spec, plan).unwrap();
                prop_assert_eq!(
                    &blocked.rows.rows, &scalar.rows.rows,
                    "rows diverge for plan {}", plan.label
                );
                prop_assert_eq!(
                    blocked.report.result_rows, scalar.report.result_rows,
                    "result_rows diverge for plan {}", plan.label
                );
                prop_assert_eq!(
                    semantic_counts(&blocked.report),
                    semantic_counts(&scalar.report),
                    "tuple counts diverge for plan {}", plan.label
                );
            }
        }
    }
}

mod cache_equivalence {
    //! The page cache must be invisible: an engine with the default
    //! device-RAM mirror and an engine with `page_cache_pages = 0`
    //! walk through identical mutation histories and must return
    //! identical rows for every enumerated plan on both pipelines — in
    //! the tombstone-resident state, after physical compaction, with
    //! ECC-correctable rot injected underneath (corrected codewords
    //! are never mirrored), and across a seal → power-cut → mount.
    //! The simulated clock keeps its one-sided invariant too: a cache
    //! can only remove NAND transfers, so the cached engine's device
    //! time never exceeds the uncached engine's.

    use ghostdb::GhostDb;
    use ghostdb_flash::PageAddr;
    use ghostdb_storage::Dataset;
    use ghostdb_types::{ColumnId, DeviceConfig, RowId, TableId, Value};
    use proptest::prelude::*;

    const DDL: &str = "\
        CREATE TABLE Child (
          cid INTEGER PRIMARY KEY,
          vis INTEGER,
          hid INTEGER HIDDEN,
          tag CHAR(12) HIDDEN);
        CREATE TABLE Root (
          rid INTEGER PRIMARY KEY,
          amt INTEGER HIDDEN,
          cid REFERENCES Child(cid) HIDDEN);";

    /// One pre-generated mutation batch, replayed verbatim on both
    /// engines.
    #[derive(Clone)]
    enum Step {
        InsertChildren(Vec<Vec<Value>>),
        InsertRoots(Vec<Vec<Value>>),
        DeleteRoots(Vec<RowId>),
        UpdateChild(RowId, i64, String),
        UpdateRoots(Vec<RowId>, i64),
    }

    /// Generate `steps` batches that are valid against the running
    /// (children, roots) cardinalities.
    fn plan_steps(
        next: &mut impl FnMut() -> i64,
        children: &mut usize,
        roots: &mut usize,
        steps: usize,
    ) -> Vec<Step> {
        let mut out = Vec::new();
        for _ in 0..steps {
            match next().rem_euclid(5) {
                0 => {
                    let n = 1 + next().rem_euclid(3) as usize;
                    let batch = (0..n)
                        .map(|k| {
                            vec![
                                Value::Int((*children + k) as i64),
                                Value::Int(next() % 50),
                                Value::Int(next() % 50),
                                Value::Text(format!("tag-{}", next().rem_euclid(8))),
                            ]
                        })
                        .collect();
                    *children += n;
                    out.push(Step::InsertChildren(batch));
                }
                1 => {
                    let n = 1 + next().rem_euclid(4) as usize;
                    let batch = (0..n)
                        .map(|k| {
                            vec![
                                Value::Int((*roots + k) as i64),
                                Value::Int(next() % 50),
                                Value::Int(next().rem_euclid(*children as i64)),
                            ]
                        })
                        .collect();
                    *roots += n;
                    out.push(Step::InsertRoots(batch));
                }
                2 => {
                    if *roots == 0 {
                        continue;
                    }
                    let mut picks: Vec<u32> = (0..1 + next().rem_euclid(3))
                        .map(|_| next().rem_euclid(*roots as i64) as u32)
                        .collect();
                    picks.sort_unstable();
                    picks.dedup();
                    *roots -= picks.len();
                    out.push(Step::DeleteRoots(picks.into_iter().map(RowId).collect()));
                }
                3 => {
                    let c = next().rem_euclid(*children as i64) as u32;
                    out.push(Step::UpdateChild(
                        RowId(c),
                        next() % 50,
                        format!("tag-{}", next().rem_euclid(16)),
                    ));
                }
                _ => {
                    if *roots == 0 {
                        continue;
                    }
                    let mut picks: Vec<u32> = (0..1 + next().rem_euclid(2))
                        .map(|_| next().rem_euclid(*roots as i64) as u32)
                        .collect();
                    picks.sort_unstable();
                    picks.dedup();
                    out.push(Step::UpdateRoots(
                        picks.into_iter().map(RowId).collect(),
                        next() % 50,
                    ));
                }
            }
        }
        out
    }

    fn apply(db: &mut GhostDb, steps: &[Step]) {
        for s in steps {
            match s {
                Step::InsertChildren(b) => {
                    db.insert_rows(TableId(0), b.clone()).unwrap();
                }
                Step::InsertRoots(b) => {
                    db.insert_rows(TableId(1), b.clone()).unwrap();
                }
                Step::DeleteRoots(r) => {
                    db.delete_rows(TableId(1), r.clone()).unwrap();
                }
                Step::UpdateChild(r, vis, tag) => {
                    db.update_rows(
                        TableId(0),
                        vec![*r],
                        vec![
                            (ColumnId(1), Value::Int(*vis)),
                            (ColumnId(3), Value::Text(tag.clone())),
                        ],
                    )
                    .unwrap();
                }
                Step::UpdateRoots(r, amt) => {
                    db.update_rows(TableId(1), r.clone(), vec![(ColumnId(1), Value::Int(*amt))])
                        .unwrap();
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn cached_and_uncached_engines_agree(
            seed in any::<u64>(),
            base_children in 3usize..10,
            base_roots in 6usize..24,
            steps in 4usize..12,
            hidden_cut in 0i64..50,
            tag_pick in 0usize..10,
        ) {
            let mut state = seed | 1;
            let mut next = move || -> i64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as i64
            };
            let stmts = ghostdb_sql::parse_statements(DDL).unwrap();
            let schema = ghostdb_sql::bind_schema(&stmts).unwrap();
            let mut base = Dataset::empty(&schema);
            for i in 0..base_children {
                base.push_row(TableId(0), vec![
                    Value::Int(i as i64),
                    Value::Int(next() % 50),
                    Value::Int(next() % 50),
                    Value::Text(format!("tag-{}", next().rem_euclid(8))),
                ]).unwrap();
            }
            for i in 0..base_roots {
                base.push_row(TableId(1), vec![
                    Value::Int(i as i64),
                    Value::Int(next() % 50),
                    Value::Int(next().rem_euclid(base_children as i64)),
                ]).unwrap();
            }

            let cfg_on = DeviceConfig::default_2007().with_delta_flush_rows(0);
            let mut cfg_off = cfg_on.clone();
            cfg_off.flash.page_cache_pages = 0;
            let mut on = GhostDb::create(DDL, cfg_on.clone(), &base).unwrap();
            let mut off = GhostDb::create(DDL, cfg_off.clone(), &base).unwrap();
            prop_assert!(on.volume().page_cache_stats().capacity_pages > 0);
            prop_assert_eq!(off.volume().page_cache_stats().capacity_pages, 0);

            let (mut children, mut roots) = (base_children, base_roots);
            let plan = plan_steps(&mut next, &mut children, &mut roots, steps);
            apply(&mut on, &plan);
            apply(&mut off, &plan);

            let queries = [
                format!(
                    "SELECT Root.rid, Child.tag FROM Root, Child \
                     WHERE Child.tag = 'tag-{tag_pick}' AND Root.cid = Child.cid"
                ),
                format!(
                    "SELECT Root.rid, Child.hid FROM Root, Child \
                     WHERE Child.hid >= {hidden_cut} AND Child.vis < 40 \
                       AND Root.cid = Child.cid"
                ),
                "SELECT Child.cid, Child.tag FROM Child WHERE Child.tag >= 'tag-3'".to_string(),
                format!("SELECT Root.rid, Root.cid FROM Root WHERE Root.amt <= {hidden_cut}"),
            ];
            let check = |on: &GhostDb, off: &GhostDb, phase: &str| {
                for sql in &queries {
                    let oracle = off.query(sql).unwrap();
                    let cached = on.query(sql).unwrap();
                    prop_assert_eq!(
                        &cached.rows.rows, &oracle.rows.rows,
                        "{}: default plan: {}", phase, sql
                    );
                    // A cache can only remove NAND transfers from the
                    // simulated timeline, never add work to it.
                    prop_assert!(
                        cached.report.total_ns <= oracle.report.total_ns,
                        "{}: cached {} ns > uncached {} ns: {}",
                        phase, cached.report.total_ns, oracle.report.total_ns, sql
                    );
                    let spec = on.bind(sql).unwrap();
                    for cp in on.plans(sql).unwrap() {
                        let blocked = on.run(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &blocked.rows.rows, &oracle.rows.rows,
                            "{}: blocked plan {}: {}", phase, cp.plan.label, sql
                        );
                        let scalar = on.run_scalar(&spec, &cp.plan).unwrap();
                        prop_assert_eq!(
                            &scalar.rows.rows, &oracle.rows.rows,
                            "{}: scalar plan {}: {}", phase, cp.plan.label, sql
                        );
                    }
                }
            };

            // Phase 1: tombstone-resident.
            check(&on, &off, "tombstone-resident");

            // Phase 2: physically compacted.
            on.flush_deltas().unwrap();
            off.flush_deltas().unwrap();
            check(&on, &off, "compacted");

            // Phase 3: ECC-correctable rot injected at the same
            // physical addresses on both parts (creation is
            // deterministic, so the layouts match). Corrected
            // codewords must re-correct on every fault, never be
            // served from the mirror.
            let ppb = cfg_on.flash.pages_per_block as u32;
            for k in 0..6u32 {
                let phys = PageAddr((next().rem_euclid((4 * ppb) as i64)) as u32 + k * ppb);
                let bit = next().rem_euclid(2048 * 8) as u32;
                on.nand().corrupt_page(phys, bit).unwrap();
                off.nand().corrupt_page(phys, bit).unwrap();
            }
            check(&on, &off, "rotted");

            // Phase 4: seal, mutate again (WAL-resident), power-cut,
            // mount with each engine's own cache config.
            on.seal().unwrap();
            off.seal().unwrap();
            let plan = plan_steps(&mut next, &mut children, &mut roots, steps / 2 + 1);
            apply(&mut on, &plan);
            apply(&mut off, &plan);
            let (nand_on, nand_off) = (on.nand().clone(), off.nand().clone());
            drop(on);
            drop(off);
            let on = GhostDb::mount(nand_on, cfg_on).unwrap();
            let off = GhostDb::mount(nand_off, cfg_off).unwrap();
            prop_assert!(on.volume().page_cache_stats().capacity_pages > 0);
            check(&on, &off, "wal-replayed");
        }
    }
}
