//! End-to-end correctness: SQL in, rows out, checked against the naive
//! reference engine on the medical workload.

mod common;

use common::{assert_matches_reference, medical_db_with_data};
use ghostdb_types::Date;
use ghostdb_workload::paper_query;

#[test]
fn paper_example_query_matches_reference() {
    let (db, cfg, data) = medical_db_with_data(4_000);
    let cutoff = Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32);
    let sql = paper_query(cutoff);
    let out = db.query(&sql).unwrap();
    assert_matches_reference(&db, &data, &sql, &out);
}

#[test]
fn hidden_only_query() {
    let (db, _cfg, data) = medical_db_with_data(2_000);
    let sql = "SELECT Vis.VisID, Vis.Purpose FROM Visit Vis \
               WHERE Vis.Purpose = 'Sclerosis'";
    let out = db.query(sql).unwrap();
    assert!(!out.rows.rows.is_empty());
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn visible_only_query() {
    let (db, _cfg, data) = medical_db_with_data(2_000);
    let sql = "SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'Spain'";
    let out = db.query(sql).unwrap();
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn no_predicate_full_join() {
    let (db, _cfg, data) = medical_db_with_data(600);
    let sql = "SELECT Pre.PreID, Med.Name FROM Prescription Pre, Medicine Med \
               WHERE Med.MedID = Pre.MedID";
    let out = db.query(sql).unwrap();
    assert_eq!(out.rows.len(), 600);
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn deep_join_doctor_to_prescription() {
    let (db, _cfg, data) = medical_db_with_data(3_000);
    let sql = "SELECT Pre.PreID, Doc.Country FROM Prescription Pre, Visit Vis, Doctor Doc \
               WHERE Doc.Country = 'France' \
                 AND Vis.Purpose = 'Checkup' \
                 AND Vis.VisID = Pre.VisID \
                 AND Vis.DocID = Doc.DocID";
    let out = db.query(sql).unwrap();
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn range_predicates_on_hidden_columns() {
    let (db, _cfg, data) = medical_db_with_data(2_000);
    for sql in [
        "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity >= 8",
        "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity < 2",
        "SELECT Pat.PatID FROM Patient Pat WHERE Pat.BodyMassIndex > 40",
        "SELECT Pat.PatID, Pat.Name FROM Patient Pat WHERE Pat.Name >= 'z'",
    ] {
        let out = db.query(sql).unwrap();
        assert_matches_reference(&db, &data, sql, &out);
    }
}

#[test]
fn range_predicates_on_hidden_dates() {
    let (db, cfg, data) = medical_db_with_data(2_000);
    let mid = Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32);
    let sql = format!("SELECT Pre.PreID FROM Prescription Pre WHERE Pre.WhenWritten <= '{mid}'");
    let out = db.query(&sql).unwrap();
    assert!(!out.rows.rows.is_empty());
    assert_matches_reference(&db, &data, &sql, &out);
}

#[test]
fn empty_results_are_clean() {
    let (db, _cfg, data) = medical_db_with_data(500);
    let sql = "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'NoSuchPurpose'";
    let out = db.query(sql).unwrap();
    assert!(out.rows.is_empty());
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn projection_mixes_every_kind_of_column() {
    let (db, _cfg, data) = medical_db_with_data(1_000);
    // pk, hidden attr, visible attr, hidden fk, hidden date — all at once.
    let sql = "SELECT Pre.PreID, Pre.Quantity, Pre.Frequency, Pre.MedID, \
                      Pre.WhenWritten, Vis.Date, Vis.Purpose \
               FROM Prescription Pre, Visit Vis \
               WHERE Pre.Quantity = 5 AND Vis.VisID = Pre.VisID";
    let out = db.query(sql).unwrap();
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn retail_schema_end_to_end() {
    use ghostdb_types::DeviceConfig;
    use ghostdb_workload::{generate_retail, RetailConfig, RETAIL_DDL};
    let cfg = RetailConfig::scaled(2_000);
    let data = generate_retail(&cfg).unwrap();
    let db = ghostdb::GhostDb::create(RETAIL_DDL, DeviceConfig::default_2007(), &data).unwrap();
    let sql = "SELECT Sale.SaleID, Store.City, Region.Name \
               FROM Sale, Store, Region \
               WHERE Store.City = 'Rome' \
                 AND Sale.Amount >= 900 \
                 AND Region.Climate = 'Alpine' \
                 AND Sale.StoreID = Store.StoreID \
                 AND Store.RegID = Region.RegID";
    let out = db.query(sql).unwrap();
    let spec = db.bind(sql).unwrap();
    let expect = ghostdb_workload::reference_execute(
        db.schema(),
        db.tree(),
        &data,
        spec.anchor,
        &spec.projections,
        &spec.predicates,
    )
    .unwrap();
    assert_eq!(out.rows.rows, expect);
}

#[test]
fn mid_tree_anchor_query() {
    // Query anchored at Visit (not the root): Doctor joined below it.
    let (db, _cfg, data) = medical_db_with_data(1_000);
    let sql = "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
               WHERE Doc.Country = 'Spain' AND Vis.Purpose = 'Checkup' \
                 AND Vis.DocID = Doc.DocID";
    let out = db.query(sql).unwrap();
    assert_matches_reference(&db, &data, sql, &out);
}

#[test]
fn sql_errors_are_reported() {
    let (db, _cfg) = common::medical_db(200);
    assert!(db.query("SELECT Nope.X FROM Nope").is_err());
    assert!(db
        .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 3")
        .is_err());
    // Missing join condition.
    assert!(db
        .query(
            "SELECT Pre.PreID FROM Prescription Pre, Visit Vis \
                WHERE Vis.Purpose = 'Checkup'"
        )
        .is_err());
}
