//! RAM discipline: queries finish under tight budgets by spilling to
//! flash, the budget is fully returned afterwards, and impossible
//! budgets fail cleanly instead of thrashing.

mod common;

use ghostdb::GhostDb;
use ghostdb_types::{Date, DeviceConfig, GhostError};
use ghostdb_workload::{generate_medical, MedicalConfig, MEDICAL_DDL};

fn db_with_ram(prescriptions: usize, ram: usize) -> GhostDb {
    let cfg = MedicalConfig::scaled(prescriptions);
    let data = generate_medical(&cfg).unwrap();
    GhostDb::create(
        MEDICAL_DDL,
        DeviceConfig::default_2007().with_ram(ram),
        &data,
    )
    .unwrap()
}

#[test]
fn paper_budget_64k_handles_wide_queries() {
    let db = db_with_ram(5_000, 64 * 1024);
    let cfg = MedicalConfig::scaled(5_000);
    let sql = ghostdb_workload::selectivity_query(cfg.date_start, cfg.date_span_days, 0.9);
    let out = db.query(&sql).unwrap();
    assert!(
        out.report.ram_peak <= 64 * 1024,
        "peak {}",
        out.report.ram_peak
    );
    // Only the page-cache mirror (a deliberate device-global charge)
    // may stay resident after the query returns.
    assert_eq!(
        db.ram().used(),
        db.volume().page_cache_stats().charged_bytes,
        "RAM not returned after execution"
    );
}

#[test]
fn tight_budget_forces_spills_but_stays_correct() {
    // 16 KB: translation of a wide visible selection cannot hold its
    // output; the external sorter must spill.
    let roomy = db_with_ram(4_000, 256 * 1024);
    let tight = db_with_ram(4_000, 16 * 1024);
    let cfg = MedicalConfig::scaled(4_000);
    let sql = ghostdb_workload::selectivity_query(cfg.date_start, cfg.date_span_days, 0.8);

    let spec = tight.bind(&sql).unwrap();
    let p1 = tight.plan_pre(&spec);
    let out_tight = tight.run(&spec, &p1).unwrap();
    let spec_r = roomy.bind(&sql).unwrap();
    let p1_r = roomy.plan_pre(&spec_r);
    let out_roomy = roomy.run(&spec_r, &p1_r).unwrap();

    assert_eq!(out_tight.rows.rows, out_roomy.rows.rows);
    assert!(out_tight.report.ram_peak <= 16 * 1024);
    // The tight run had to write spill runs to flash.
    assert!(
        out_tight.report.flash.page_programs > out_roomy.report.flash.page_programs,
        "tight {} vs roomy {}",
        out_tight.report.flash.page_programs,
        out_roomy.report.flash.page_programs
    );
    assert_eq!(
        tight.ram().used(),
        tight.volume().page_cache_stats().charged_bytes,
        "only the page-cache mirror stays resident"
    );
}

#[test]
fn simulated_time_grows_under_pressure() {
    let roomy = db_with_ram(4_000, 256 * 1024);
    let tight = db_with_ram(4_000, 16 * 1024);
    let cfg = MedicalConfig::scaled(4_000);
    let sql = ghostdb_workload::selectivity_query(cfg.date_start, cfg.date_span_days, 0.8);
    let spec_t = tight.bind(&sql).unwrap();
    let pt = tight.plan_pre(&spec_t);
    let spec_r = roomy.bind(&sql).unwrap();
    let pr = roomy.plan_pre(&spec_r);
    let t = tight.run(&spec_t, &pt).unwrap().report.total_ns;
    let r = roomy.run(&spec_r, &pr).unwrap().report.total_ns;
    assert!(t > r, "tight {t} should be slower than roomy {r}");
}

#[test]
fn impossible_budget_fails_cleanly() {
    // Loading needs at least a handful of page buffers; with 1 KB the
    // writer cannot even allocate one 2 KB page buffer.
    let cfg = MedicalConfig::scaled(200);
    let data = generate_medical(&cfg).unwrap();
    let err = match GhostDb::create(
        MEDICAL_DDL,
        DeviceConfig::default_2007().with_ram(1024),
        &data,
    ) {
        Err(e) => e,
        Ok(_) => panic!("load should not fit in 1 KB of device RAM"),
    };
    assert!(matches!(err, GhostError::OutOfDeviceRam { .. }), "{err}");
}

#[test]
fn ram_peak_is_reported_per_query() {
    let db = db_with_ram(2_000, 64 * 1024);
    let out = db
        .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'")
        .unwrap();
    assert!(out.report.ram_peak > 0);
    // Operators report their local RAM too.
    assert!(out.report.ops.iter().any(|o| o.ram_peak > 0));
}

#[test]
fn date_cutoffs_are_inclusive_of_config_range() {
    // Regression guard for the sweep helper: extreme fractions behave.
    let cfg = MedicalConfig::scaled(100);
    let q0 = ghostdb_workload::selectivity_query(cfg.date_start, cfg.date_span_days, 0.0);
    let q1 = ghostdb_workload::selectivity_query(cfg.date_start, cfg.date_span_days, 1.0);
    let db = db_with_ram(100, 64 * 1024);
    let none = db.query(&q0).unwrap();
    let all = db.query(&q1).unwrap();
    assert!(none.rows.len() <= all.rows.len());
    let _ = Date::from_ymd(2006, 1, 1).unwrap();
}
