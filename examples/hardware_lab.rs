//! Hardware lab: replay one query on different device generations and
//! watch the plan trade-offs move (paper §3's sensitivity discussion).
//!
//! Run with: `cargo run --release --example hardware_lab`

use ghostdb::GhostDb;
use ghostdb_types::{format_ns, BusConfig, DeviceConfig, Result};
use ghostdb_workload::{generate_medical, selectivity_query, MedicalConfig, MEDICAL_DDL};

fn main() -> Result<()> {
    let cfg = MedicalConfig::scaled(20_000);
    let data = generate_medical(&cfg)?;
    let sql = selectivity_query(cfg.date_start, cfg.date_span_days, 0.5);
    println!("query:\n  {sql}\n");
    println!("device                              P1(pre)        P2(post)      winner");

    let labs: Vec<(&str, DeviceConfig)> = vec![
        (
            "paper 2007 (64KB, 8.8x, 12Mb/s)",
            DeviceConfig::default_2007(),
        ),
        ("slow flash (write/read = 10x)", {
            let mut d = DeviceConfig::default_2007();
            d.flash = d.flash.with_write_read_ratio(10.0);
            d
        }),
        ("fast flash (write/read = 3x)", {
            let mut d = DeviceConfig::default_2007();
            d.flash = d.flash.with_write_read_ratio(3.0);
            d
        }),
        (
            "future link (USB 480 Mb/s)",
            DeviceConfig::default_2007().with_bus(BusConfig::usb_high_speed()),
        ),
        (
            "big RAM (1 MB secure chip)",
            DeviceConfig::default_2007().with_ram(1024 * 1024),
        ),
        (
            "tiny RAM (16 KB secure chip)",
            DeviceConfig::default_2007().with_ram(16 * 1024),
        ),
    ];

    for (name, device) in labs {
        let db = GhostDb::create(MEDICAL_DDL, device, &data)?;
        let spec = db.bind(&sql)?;
        let p1 = db.run(&spec, &db.plan_pre(&spec))?;
        let p2 = db.run(&spec, &db.plan_post(&spec))?;
        assert_eq!(p1.rows.rows, p2.rows.rows);
        let winner = if p1.report.total_ns <= p2.report.total_ns {
            "pre"
        } else {
            "post"
        };
        println!(
            "{:<35} {:<14} {:<13} {}",
            name,
            format_ns(p1.report.total_ns),
            format_ns(p2.report.total_ns),
            winner
        );
    }
    println!("\nEvery row returned identical results; only the costs move.");
    Ok(())
}
