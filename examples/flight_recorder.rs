//! The flight recorder: per-statement trace spans, `EXPLAIN ANALYZE`,
//! and the engine-wide metrics registry, end to end.
//!
//! Loads the paper's medical workload, runs the §4 example query with
//! tracing on, prints the span tree (parse → bind → plan → execute with
//! per-operator actuals), then the annotated plan `EXPLAIN ANALYZE`
//! renders, a slice of the Prometheus exposition, and the device report
//! built over the same registry.
//!
//! Run with: `cargo run --release --example flight_recorder`

use ghostdb::{ExecOutcome, GhostDb};
use ghostdb_types::{Date, DeviceConfig, Result};
use ghostdb_workload::{generate_medical, MedicalConfig, MEDICAL_DDL};

fn main() -> Result<()> {
    // 1. Secure bulk load of the medical tree (Prescription → Visit,
    //    Medicine, ...).
    let cfg = MedicalConfig::scaled(2_000);
    let data = generate_medical(&cfg)?;
    let mut db = GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data)?;
    // The §4 example query's shape — one hidden and two visible
    // predicates across three tables — with the common 'Checkup'
    // purpose so the result set is visibly non-empty.
    let cutoff = Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32);
    let sql = format!(
        "SELECT Med.Name, Pre.Quantity, Vis.Date \
         FROM Medicine Med, Prescription Pre, Visit Vis \
         WHERE Vis.Date > '{cutoff}' /*VISIBLE*/ \
           AND Vis.Purpose = 'Checkup' /*HIDDEN*/ \
           AND Med.Type = 'Antibiotic' /*VISIBLE*/ \
           AND Med.MedID = Pre.MedID \
           AND Vis.VisID = Pre.VisID;"
    );

    // 2. Every statement is metered whether or not tracing is on; the
    //    recorder itself is an explicit, free-when-off switch.
    db.set_tracing(true);
    let out = db.query(&sql)?;
    println!(
        "query returned {} row(s) in {} simulated ns\n",
        out.rows.len(),
        out.report.total_ns
    );

    // 3. The span tree of that statement: host-clock stage timings at
    //    the top, the executor's per-operator actuals beneath the
    //    execute span. Counts, times and sizes only — never values.
    let trace = db.last_trace().expect("tracing is on");
    println!("== statement trace ==\n{}", trace.render());

    // 4. EXPLAIN ANALYZE through the normal statement path: the chosen
    //    plan, estimated vs. actual cardinalities per operator.
    let outcomes = db.execute(&format!("EXPLAIN ANALYZE {sql}"))?;
    for o in &outcomes {
        if let ExecOutcome::Explain(text) = o {
            println!("== EXPLAIN ANALYZE ==\n{text}");
        }
    }

    // 5. The registry behind it all: every engine counter in one
    //    Prometheus scrape (JSON is one call away: `metrics_json()`).
    let text = db.metrics_text();
    println!("== metrics (statement + bus families) ==");
    for line in text.lines().filter(|l| {
        l.starts_with("ghostdb_statement_latency_ns_count")
            || l.starts_with("ghostdb_bus_")
            || l.starts_with("ghostdb_wal_appends_total")
    }) {
        println!("{line}");
    }

    // 6. The device report reads the same registry — a scrape and the
    //    report can never disagree.
    println!("\n== device report ==\n{}", db.device_report());
    Ok(())
}
