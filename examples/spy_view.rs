//! Demo phase 1 — "Checking security": watch what a Trojan horse on the
//! PC observes while a query that touches hidden data runs, and verify
//! that planted hidden sentinels never cross the bus.
//!
//! Run with: `cargo run --release --example spy_view`

use ghostdb::GhostDb;
use ghostdb_types::{Date, DeviceConfig, Result, Value};
use ghostdb_workload::{generate_medical, MedicalConfig, MEDICAL_DDL};

fn main() -> Result<()> {
    let cfg = MedicalConfig::scaled(5_000);
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data)?;

    let cutoff = Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32);
    let sql = format!(
        "SELECT Pat.Name, Vis.Purpose, Vis.Date \
         FROM Patient Pat, Visit Vis, Prescription Pre \
         WHERE Vis.Date > '{cutoff}' \
           AND Vis.Purpose = 'Sclerosis' \
           AND Vis.PatID = Pat.PatID \
           AND Vis.VisID = Pre.VisID;"
    );
    println!("running:\n  {sql}\n");
    db.clear_trace();
    let out = db.query(&sql)?;

    println!("=== what the SECURE DISPLAY shows (trusted) ===");
    println!("{}", out.rows.render(5));

    println!("=== what the SPY captures on the PC<->device link ===");
    println!("{}", db.spy_report());

    // The spy sees the query text and the visible dates it selects...
    assert!(db.trace().spy_bytes() > 0);
    // ...but no patient name and no purpose, even though both were in
    // the results.
    let mut leaked = 0;
    for row in out.rows.rows.iter().take(50) {
        let name = &row[0];
        let purpose = &row[1];
        if db.spy_sees_value(name) {
            println!("LEAK: {name}");
            leaked += 1;
        }
        if db.spy_sees_value(purpose) {
            // 'Sclerosis' is in the *query text*, which is public by the
            // paper's threat model — exclude the query frame? No: the
            // paper accepts that the query text is observable. What must
            // never appear is a hidden *stored* value that is not part of
            // the query, e.g. patient names.
        }
        let _ = purpose;
    }
    println!("\nhidden result values observed by the spy: {leaked} (must be 0)");
    assert_eq!(leaked, 0);

    // Contrast: the visible constant from the query is of course visible.
    println!(
        "spy saw the public date cutoff {}? {}",
        cutoff,
        db.spy_sees_value(&Value::Date(cutoff))
    );
    Ok(())
}
