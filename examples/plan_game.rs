//! Demo phase 3 — "...and playing a game": find the fastest plan.
//!
//! For each game query the program enumerates the candidate plans,
//! executes every one, and ranks them by measured (simulated) time — so
//! you can check whether the optimizer (or you) picked the winner. The
//! paper: "the rather unusual query execution strategies implemented in
//! GhostDB may generate unexpected results for newcomers."
//!
//! Run with: `cargo run --release --example plan_game [prescriptions]`

use ghostdb::GhostDb;
use ghostdb_types::{format_ns, DeviceConfig, Result};
use ghostdb_workload::{game_queries, generate_medical, MedicalConfig, MEDICAL_DDL};

fn main() -> Result<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let cfg = MedicalConfig::scaled(n);
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data)?;

    let mut optimizer_score = 0usize;
    let queries = game_queries(cfg.date_start, cfg.date_span_days);
    let total = queries.len();
    for gq in queries {
        println!("==================================================");
        println!("{} — {}", gq.name, gq.hint);
        println!("  {}\n", gq.sql.trim());
        let plans = db.plans(&gq.sql)?;
        let mut measured: Vec<(String, u64, f64)> = Vec::new();
        let mut reference_rows = None;
        for cp in &plans {
            let out = db.query_with_plan(&gq.sql, &cp.plan)?;
            if let Some(r) = &reference_rows {
                assert_eq!(r, &out.rows.rows, "plan disagreement!");
            } else {
                reference_rows = Some(out.rows.rows.clone());
            }
            measured.push((cp.plan.label.clone(), out.report.total_ns, cp.est_ns));
        }
        let mut ranked = measured.clone();
        ranked.sort_by_key(|(_, ns, _)| *ns);
        println!("  rank  plan       measured     estimated");
        for (i, (label, ns, est)) in ranked.iter().take(6).enumerate() {
            println!(
                "  {:>4}  {:<9} {:>12} {:>12}",
                i + 1,
                label,
                format_ns(*ns),
                format_ns(*est as u64)
            );
        }
        // The optimizer's pick is plans[0] (cheapest estimate). Did it
        // actually win (or land within 20% of the winner)?
        let picked = &measured[0];
        let winner = &ranked[0];
        let good = picked.1 as f64 <= winner.1 as f64 * 1.2;
        println!(
            "  optimizer picked {} ({}) — winner {} ({}) => {}",
            picked.0,
            format_ns(picked.1),
            winner.0,
            format_ns(winner.1),
            if good { "GOOD PICK" } else { "beaten!" }
        );
        if good {
            optimizer_score += 1;
        }
    }
    println!("==================================================");
    println!("optimizer scored {optimizer_score}/{total} good picks");
    Ok(())
}
