//! Power cycle: the paper's story end to end. Load the hidden database
//! onto the USB key in a secure setting, seal it, insert a few records
//! through the secure port, then **unplug the key** (drop the whole
//! instance — PC state, RAM deltas, everything) and remount from the
//! NAND alone: the sealed image restores the base, the write-ahead log
//! replays the unplugged-away inserts, and the data answers queries as
//! if nothing happened — while the bus spy still sees no hidden value.
//!
//! Run with: `cargo run --release --example power_cycle`

use ghostdb::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(40),
  Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Severity INTEGER,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);";

const PROBE: &str = "SELECT Vis.VisID, Vis.Purpose, Doc.Name \
                     FROM Visit Vis, Doctor Doc \
                     WHERE Vis.Severity >= 6 AND Vis.DocID = Doc.DocID";

fn main() -> Result<()> {
    // 1. Secure bulk load.
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    for (i, (name, country)) in [("Dupont", "France"), ("Garcia", "Spain")]
        .iter()
        .enumerate()
    {
        data.push_row(
            TableId(0),
            vec![
                Value::Int(i as i64),
                Value::Text((*name).into()),
                Value::Text((*country).into()),
            ],
        )?;
    }
    for i in 0..12i64 {
        data.push_row(
            TableId(1),
            vec![
                Value::Int(i),
                Value::Int(i % 8),
                Value::Text(if i % 3 == 0 { "Sclerosis" } else { "Checkup" }.into()),
                Value::Int(i % 2),
            ],
        )?;
    }
    let config = DeviceConfig::default_2007();
    let mut db = GhostDb::create(DDL, config.clone(), &data)?;
    println!("loaded:   {}\n", db.device_report());

    // 2. Seal: the device state becomes a durable on-flash image.
    let seal = db.seal()?;
    println!(
        "sealed:   epoch {}, image {} B ({} delta rows merged)\n",
        seal.epoch, seal.image_bytes, seal.merged_rows
    );

    // 3. Inserts through the secure port. Their hidden halves exist in
    //    RAM and the flash WAL only; "Burnout" is a diagnosis the
    //    sealed dictionary has never seen.
    db.execute(
        "INSERT INTO Visit VALUES (12, 7, 'Burnout', 1), \
         (13, 9, 'Sclerosis', 0)",
    )?;
    println!("inserted: {}\n", db.device_report());
    let before = db.query(PROBE)?;

    // 4. Unplug. Dropping the facade discards the PC, the bus, the RAM
    //    deltas — everything except the NAND part itself.
    let nand = db.nand().clone();
    drop(db);
    println!("-- key unplugged; power gone; only the NAND remains --\n");

    // 5. Remount from the key alone: image + WAL replay.
    let db = GhostDb::mount(nand, config)?;
    println!("mounted:  {}\n", db.device_report());
    let after = db.query(PROBE)?;
    assert_eq!(before.rows.rows, after.rows.rows);

    println!("severe visits, same answer before and after the power cycle:");
    for row in &after.rows.rows {
        println!("  {row:?}");
    }

    // 6. The spy saw the mount's replay traffic — and still no hidden
    //    value crossed.
    assert!(!db.spy_sees_value(&Value::Text("Burnout".into())));
    assert!(!db.spy_sees_value(&Value::Text("Sclerosis".into())));
    println!("\nspy view of the remount + queries:\n{}", db.spy_report());
    Ok(())
}
