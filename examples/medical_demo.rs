//! The paper's demonstration scenario (§5), phase 2: run the §4 example
//! query under Pre-filtering (P1), Post-filtering (P2) and the
//! optimizer's best plan, comparing time, RAM and per-operator stats.
//!
//! Run with: `cargo run --release --example medical_demo [prescriptions]`
//! (default 50,000; the paper's scale is 1,000,000).

use ghostdb::GhostDb;
use ghostdb_types::{format_ns, Date, DeviceConfig, Result};
use ghostdb_workload::{generate_medical, paper_query, MedicalConfig, MEDICAL_DDL};

fn main() -> Result<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let cfg = MedicalConfig::scaled(n);
    println!(
        "generating Figure 3 dataset: {} prescriptions, {} visits, {} doctors ...",
        cfg.prescriptions,
        cfg.visits(),
        cfg.doctors
    );
    let data = generate_medical(&cfg)?;
    let db = GhostDb::create(MEDICAL_DDL, DeviceConfig::default_2007(), &data)?;
    println!("loaded. {}\n", db.device_report());

    // The §4 example query; the date literal lands mid-range (~50%
    // visible selectivity on Vis.Date, as in the paper's Figure 5/6
    // discussion).
    let cutoff = Date(cfg.date_start.0 + (cfg.date_span_days / 2) as i32);
    let sql = paper_query(cutoff);
    println!("query:\n  {sql}\n");

    let spec = db.bind(&sql)?;
    let p1 = db.plan_pre(&spec);
    let p2 = db.plan_post(&spec);

    println!("--- P1: Pre-filtering ---");
    println!("{}", p1.describe(db.schema(), &spec));
    let r1 = db.run(&spec, &p1)?;
    println!("{}", r1.report.render());

    println!("--- P2: Post-filtering (Figure 5) ---");
    println!("{}", p2.describe(db.schema(), &spec));
    let r2 = db.run(&spec, &p2)?;
    println!("{}", r2.report.render());

    assert_eq!(r1.rows.rows, r2.rows.rows, "plans must agree");

    println!("--- optimizer ---");
    let best = db.query(&sql)?;
    println!("{}", best.report.render());
    assert_eq!(best.rows.rows, r1.rows.rows);

    println!(
        "result rows: {}   P1: {}   P2: {}   best: {}",
        r1.rows.len(),
        format_ns(r1.report.total_ns),
        format_ns(r2.report.total_ns),
        format_ns(best.report.total_ns),
    );
    println!("\nsample rows:\n{}", best.rows.render(5));
    Ok(())
}
