//! Concurrent readers: four `std::thread` reader sessions run SELECTs
//! against epoch-stamped [`Snapshot`]s while the main thread keeps
//! inserting, updating, deleting and flushing. Each reader reports its
//! own throughput; every result is verified against the totals the
//! writer knows it shipped, and the final device report shows the
//! session ledger draining back to zero pins.
//!
//! Run with: `cargo run --release --example concurrent_readers`

use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use ghostdb::{GhostDb, Snapshot};
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Sensor (
  SenID INTEGER PRIMARY KEY,
  Site CHAR(20));
CREATE TABLE Reading (
  ReadID INTEGER PRIMARY KEY,
  Hour INTEGER,
  Status CHAR(16) HIDDEN,
  Level INTEGER HIDDEN,
  SenID REFERENCES Sensor(SenID) HIDDEN);";

const READERS: usize = 4;
const ROUNDS: usize = 8;
const QUERIES_PER_SNAPSHOT: usize = 25;

fn main() -> Result<()> {
    // 1. Secure bulk load.
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    for (i, site) in ["roof", "basement"].iter().enumerate() {
        data.push_row(
            TableId(0),
            vec![Value::Int(i as i64), Value::Text((*site).into())],
        )?;
    }
    for i in 0..64i64 {
        data.push_row(
            TableId(1),
            vec![
                Value::Int(i),
                Value::Int(i % 24),
                Value::Text(if i % 7 == 0 { "alert" } else { "nominal" }.into()),
                Value::Int(100 + i),
                Value::Int(i % 2),
            ],
        )?;
    }
    let config = DeviceConfig::default_2007().with_delta_flush_rows(16);
    let mut db = GhostDb::create(DDL, config, &data)?;
    println!("loaded 64 readings; epoch {}\n", db.epoch());

    // 2. Spawn the readers. Each receives (snapshot, expected alert
    //    count) pairs and hammers its snapshot with SELECTs — entirely
    //    off the writer's `&mut GhostDb`.
    let sql = "SELECT Read.ReadID, Read.Level, Sen.Site \
               FROM Reading Read, Sensor Sen \
               WHERE Read.Status = 'alert' AND Read.SenID = Sen.SenID";
    let mut txs = Vec::new();
    let mut handles = Vec::new();
    for r in 0..READERS {
        let (tx, rx) = mpsc::channel::<(Snapshot, usize)>();
        txs.push(tx);
        handles.push(thread::spawn(move || -> (usize, f64) {
            let mut queries = 0usize;
            let t0 = Instant::now();
            while let Ok((snap, expect)) = rx.recv() {
                for _ in 0..QUERIES_PER_SNAPSHOT {
                    let out = snap.query(sql).expect("snapshot query");
                    assert_eq!(
                        out.rows.rows.len(),
                        expect,
                        "reader {r}: epoch {} snapshot must see exactly \
                         {expect} alert(s)",
                        snap.epoch()
                    );
                    queries += 1;
                }
            }
            (queries, t0.elapsed().as_secs_f64())
        }));
    }

    // 3. The writer: each round appends a batch (every third reading an
    //    alert), retires a stale reading, captures a snapshot, and
    //    fans it out — then keeps mutating while the readers are still
    //    mid-flight on the previous epochs.
    let mut next_id = 64i64;
    let mut alerts = 64 / 7 + 1; // load-time alerts: ids 0,7,...,63
    for round in 0..ROUNDS {
        for _ in 0..6 {
            let status = if next_id % 3 == 0 { "alert" } else { "nominal" };
            if next_id % 3 == 0 {
                alerts += 1;
            }
            db.execute(&format!(
                "INSERT INTO Reading VALUES ({next_id}, {}, '{status}', {}, {})",
                next_id % 24,
                200 + next_id,
                next_id % 2
            ))?;
            next_id += 1;
        }
        if round % 3 == 2 {
            db.flush_deltas()?;
        }
        let snap = db.snapshot()?;
        println!(
            "round {round}: epoch {} snapshot ({} page(s) pinned) -> reader {}",
            snap.epoch(),
            snap.pinned_pages(),
            round % READERS
        );
        txs[round % READERS]
            .send((snap, alerts))
            .expect("reader alive");
    }
    println!("\nmid-run {}\n", db.device_report());

    // 4. Drain: close the channels, collect per-thread throughput.
    drop(txs);
    let mut total = 0usize;
    for (r, h) in handles.into_iter().enumerate() {
        let (queries, secs) = h.join().expect("reader panicked");
        total += queries;
        println!(
            "reader {r}: {queries} queries in {secs:.2}s ({:.1} q/s wall)",
            queries as f64 / secs.max(1e-9)
        );
    }
    assert_eq!(
        total,
        ROUNDS * QUERIES_PER_SNAPSHOT,
        "every shipped snapshot served its full query quota"
    );
    println!("verified: {total} queries, all totals exact");

    // 5. Every snapshot dropped: the session ledger and pin table must
    //    be empty again.
    assert_eq!(db.open_snapshots(), 0);
    let pins = db.volume().pin_stats();
    assert_eq!(pins.snapshot_pinned, 0, "no leaked snapshot pins");
    println!("\nfinal {}", db.device_report());
    Ok(())
}
