//! Quickstart: create a GhostDB, load data, run a query that mixes
//! hidden and visible predicates, and inspect what a spy saw.
//!
//! Run with: `cargo run --release --example quickstart`

use ghostdb::GhostDb;
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Team (
  TeamID INTEGER PRIMARY KEY,
  City CHAR(20));
CREATE TABLE Employee (
  EmpID INTEGER PRIMARY KEY,
  Grade INTEGER,
  Salary INTEGER HIDDEN,
  TeamID REFERENCES Team(TeamID) HIDDEN);";

fn main() -> Result<()> {
    // 1. Declare the schema: one HIDDEN keyword per sensitive column is
    //    the only schema change GhostDB needs (paper §2).
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;

    // 2. Build a small dataset (in production this happens once, in a
    //    secure setting).
    let mut data = Dataset::empty(&schema);
    let cities = ["Paris", "Oslo", "Rome"];
    for i in 0..3i64 {
        data.push_row(
            TableId(0),
            vec![Value::Int(i), Value::Text(cities[i as usize].into())],
        )?;
    }
    for i in 0..30i64 {
        data.push_row(
            TableId(1),
            vec![
                Value::Int(i),                  // EmpID
                Value::Int(i % 5),              // Grade (visible)
                Value::Int(40_000 + 1_000 * i), // Salary (hidden!)
                Value::Int(i % 3),              // TeamID (hidden fk)
            ],
        )?;
    }

    // 3. Create the database: visible columns go to the (untrusted) PC,
    //    hidden columns to the simulated smart USB device.
    let db = GhostDb::create(DDL, DeviceConfig::default_2007(), &data)?;
    println!("device: {}\n", db.device_report());

    // 4. Query across the split. Salary is hidden: the selection runs on
    //    the device; Grade is visible: the PC evaluates it and ships row
    //    ids only.
    let sql = "SELECT Emp.EmpID, Emp.Salary, Team.City \
               FROM Employee Emp, Team \
               WHERE Emp.Salary >= 60000 \
                 AND Emp.Grade >= 2 \
                 AND Emp.TeamID = Team.TeamID";
    let out = db.query(sql)?;
    println!("{}", out.rows.render(10));
    println!("{}", out.report.render());

    // 5. The spy's view: the query text and visible data crossed the bus;
    //    salaries did not.
    println!("--- spy view ---\n{}", db.spy_report());
    let secret = Value::Int(65_000);
    println!("spy saw a salary of 65000? {}", db.spy_sees_value(&secret));
    assert!(!db.spy_sees_value(&secret));
    Ok(())
}
