//! Trickle ingest: interleave post-load `INSERT`s — and, since the
//! write layer went full-DML, `UPDATE`s and `DELETE`s — with queries,
//! and let the spy report prove that nothing hidden leaks while the
//! database churns: the scenario GhostDB's write path exists for (an
//! append-heavy log that must stay queryable, *expirable*, and
//! private).
//!
//! Run with: `cargo run --release --example trickle_ingest`

use ghostdb::{ExecOutcome, GhostDb};
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Sensor (
  SenID INTEGER PRIMARY KEY,
  Site CHAR(20));
CREATE TABLE Reading (
  ReadID INTEGER PRIMARY KEY,
  Hour INTEGER,
  Status CHAR(16) HIDDEN,
  Level INTEGER HIDDEN,
  SenID REFERENCES Sensor(SenID) HIDDEN);";

fn main() -> Result<()> {
    // 1. Secure bulk load: two sensors, a day of base readings.
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    for (i, site) in ["roof", "basement"].iter().enumerate() {
        data.push_row(
            TableId(0),
            vec![Value::Int(i as i64), Value::Text((*site).into())],
        )?;
    }
    for i in 0..48i64 {
        data.push_row(
            TableId(1),
            vec![
                Value::Int(i),
                Value::Int(i % 24),
                Value::Text(if i % 7 == 0 { "alert" } else { "nominal" }.into()),
                Value::Int(100 + i),
                Value::Int(i % 2),
            ],
        )?;
    }
    // A low flush threshold so the demo shows a delta merge happening.
    let config = DeviceConfig::default_2007().with_delta_flush_rows(8);
    let mut db = GhostDb::create(DDL, config, &data)?;
    println!("loaded: {}\n", db.device_report());

    // 2. Trickle: readings arrive through the device's secure port while
    //    queries keep running against base + delta. "breach" is a status
    //    string the load-time dictionary has never seen.
    db.clear_trace();
    let sql = "SELECT Read.ReadID, Read.Level, Sen.Site \
               FROM Reading Read, Sensor Sen \
               WHERE Read.Status = 'breach' AND Read.SenID = Sen.SenID";
    for batch in 0..3 {
        for k in 0..3 {
            let id = 48 + batch * 3 + k;
            let status = if k == 1 { "breach" } else { "nominal" };
            let outcomes = db.execute(&format!(
                "INSERT INTO Reading VALUES ({id}, {}, '{status}', {}, {})",
                id % 24,
                200 + id,
                id % 2
            ))?;
            if let Some(ExecOutcome::Insert(r)) = outcomes.first() {
                if r.flushed {
                    println!("insert {id}: delta merged into rebuilt flash segments");
                }
            }
        }
        let out = db.query(sql)?;
        println!(
            "after batch {batch}: {} breach reading(s), {} delta row(s) pending",
            out.rows.rows.len(),
            db.delta_rows()
        );
    }

    // 3. Records change and expire. An UPDATE rewrites hidden cells in
    //    place (resolved breaches stand down); a DELETE retires the
    //    early-morning readings — tombstoned now, physically compacted
    //    away at the next flush. Both statements enter through the
    //    device's secure port: their text (which names hidden values!)
    //    never crosses the bus — the spy sees only the row identities
    //    that churned.
    for outcome in db
        .execute("UPDATE Reading SET Status = 'resolved', Level = 987654 WHERE Status = 'breach'")?
    {
        if let ExecOutcome::Update(r) = outcome {
            println!("\nupdate: {} breach reading(s) resolved", r.rows);
        }
    }
    for outcome in db.execute("DELETE FROM Reading WHERE Hour < 6")? {
        if let ExecOutcome::Delete(r) = outcome {
            println!(
                "delete: {} reading(s) retired{}",
                r.rows,
                if r.flushed {
                    " (tripped the flush: dead rows compacted off flash)"
                } else {
                    ""
                }
            );
        }
    }
    let out = db.query(
        "SELECT Read.ReadID, Read.Hour, Sen.Site FROM Reading Read, Sensor Sen \
         WHERE Read.Status = 'resolved' AND Read.SenID = Sen.SenID",
    )?;
    println!(
        "surviving resolved reading(s): {} (primary keys re-densified: {:?})",
        out.rows.rows.len(),
        out.rows
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect::<Vec<_>>()
    );

    // 4. The pirate's view: the inserts' visible halves, the query
    //    protocol, and the mutation effects (DeleteRows/UpdateVisible/
    //    CompactRows — row ids and public columns only) crossed the bus
    //    — the hidden readings never did. ('breach' and 'resolved' do
    //    each appear once: inside public query *text*, which the
    //    paper's model discloses by design. 'alert' and the rewritten
    //    levels were only ever stored, and stored values must never
    //    cross.)
    println!("\n--- spy report (every byte that crossed the bus) ---");
    println!("{}", db.spy_report());
    assert!(
        !db.spy_sees_value(&Value::Text("alert".into())),
        "hidden status \"alert\" leaked"
    );
    // 'resolved' crossed once — inside the public text of the *query*
    // in step 3 (disclosed by design, like 'breach'); the updated
    // hidden level 987654 was only ever stored and must not have.
    assert!(
        !db.spy_sees_value(&Value::Int(987_654)),
        "updated hidden level leaked"
    );
    println!("spy saw hidden status \"alert\" / updated level 987654: no");
    assert!(
        db.spy_sees_value(&Value::Text("roof".into())),
        "visible site names should be spy-visible"
    );
    println!("spy saw visible site names: yes (public by design)");
    println!("\nfinal: {}", db.device_report());
    Ok(())
}
