//! Trickle ingest: interleave post-load `INSERT`s with queries and let
//! the spy report prove that nothing hidden leaks while the database
//! grows — the scenario GhostDB's write path exists for (an append-heavy
//! log that must stay queryable *and* private).
//!
//! Run with: `cargo run --release --example trickle_ingest`

use ghostdb::{ExecOutcome, GhostDb};
use ghostdb_storage::Dataset;
use ghostdb_types::{DeviceConfig, Result, TableId, Value};

const DDL: &str = "\
CREATE TABLE Sensor (
  SenID INTEGER PRIMARY KEY,
  Site CHAR(20));
CREATE TABLE Reading (
  ReadID INTEGER PRIMARY KEY,
  Hour INTEGER,
  Status CHAR(16) HIDDEN,
  Level INTEGER HIDDEN,
  SenID REFERENCES Sensor(SenID) HIDDEN);";

fn main() -> Result<()> {
    // 1. Secure bulk load: two sensors, a day of base readings.
    let stmts = ghostdb_sql::parse_statements(DDL)?;
    let schema = ghostdb_sql::bind_schema(&stmts)?;
    let mut data = Dataset::empty(&schema);
    for (i, site) in ["roof", "basement"].iter().enumerate() {
        data.push_row(
            TableId(0),
            vec![Value::Int(i as i64), Value::Text((*site).into())],
        )?;
    }
    for i in 0..48i64 {
        data.push_row(
            TableId(1),
            vec![
                Value::Int(i),
                Value::Int(i % 24),
                Value::Text(if i % 7 == 0 { "alert" } else { "nominal" }.into()),
                Value::Int(100 + i),
                Value::Int(i % 2),
            ],
        )?;
    }
    // A low flush threshold so the demo shows a delta merge happening.
    let config = DeviceConfig::default_2007().with_delta_flush_rows(8);
    let mut db = GhostDb::create(DDL, config, &data)?;
    println!("loaded: {}\n", db.device_report());

    // 2. Trickle: readings arrive through the device's secure port while
    //    queries keep running against base + delta. "breach" is a status
    //    string the load-time dictionary has never seen.
    db.clear_trace();
    let sql = "SELECT Read.ReadID, Read.Level, Sen.Site \
               FROM Reading Read, Sensor Sen \
               WHERE Read.Status = 'breach' AND Read.SenID = Sen.SenID";
    for batch in 0..3 {
        for k in 0..3 {
            let id = 48 + batch * 3 + k;
            let status = if k == 1 { "breach" } else { "nominal" };
            let outcomes = db.execute(&format!(
                "INSERT INTO Reading VALUES ({id}, {}, '{status}', {}, {})",
                id % 24,
                200 + id,
                id % 2
            ))?;
            if let Some(ExecOutcome::Insert(r)) = outcomes.first() {
                if r.flushed {
                    println!("insert {id}: delta merged into rebuilt flash segments");
                }
            }
        }
        let out = db.query(sql)?;
        println!(
            "after batch {batch}: {} breach reading(s), {} delta row(s) pending",
            out.rows.rows.len(),
            db.delta_rows()
        );
    }

    // 3. The pirate's view: the inserts' visible halves and the query
    //    protocol crossed the bus — the hidden readings never did.
    //    ('breach' does appear once: inside the public query *text*,
    //    which the paper's model discloses by design. 'alert' was only
    //    ever stored, and stored values must never cross.)
    println!("\n--- spy report (every byte that crossed the bus) ---");
    println!("{}", db.spy_report());
    assert!(
        !db.spy_sees_value(&Value::Text("alert".into())),
        "hidden status \"alert\" leaked"
    );
    println!("spy saw hidden status \"alert\": no");
    assert!(
        db.spy_sees_value(&Value::Text("roof".into())),
        "visible site names should be spy-visible"
    );
    println!("spy saw visible site names: yes (public by design)");
    println!("\nfinal: {}", db.device_report());
    Ok(())
}
