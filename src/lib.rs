//! GhostDB umbrella crate: re-exports the public facade.
pub use ghostdb_core::*;
